//! Columnar batches: typed column vectors with null bitmaps.
//!
//! A [`ColumnBatch`] holds up to `batch_size` rows decomposed into one
//! [`Column`] per output position. Columns are typed vectors (`Vec<i64>`,
//! `Vec<f64>`, …) plus an optional null bitmap, with a [`Column::Mixed`]
//! fallback for the rare heterogeneous column (e.g. a CASE producing both
//! ints and strings). The shape follows the BitVec + typed-buffer design
//! of vectorized engines (SNIPPETS.md §2–3): operators work on whole
//! columns, and filters communicate through *selection vectors* (index
//! lists) rather than copied rows.
//!
//! Per-row access goes through [`ValRef`], a borrowing view whose
//! equality / ordering / hashing mirror [`Datum`]'s **exactly** — this is
//! what lets the columnar kernel reproduce the row kernel's results byte
//! for byte (NULL == NULL as a hash key, cross-type numeric equality,
//! `total_cmp` classes, FNV distribution hashing).

use crate::exec::StreamSet;
use crate::storage::Row;
use orca_common::{ColId, Datum};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A packed bit vector (LSB-first within each 64-bit word), used for
/// null tracking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    pub fn new() -> BitVec {
        BitVec::default()
    }

    /// A bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> BitVec {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` one bits.
    pub fn ones(len: usize) -> BitVec {
        let mut b = BitVec {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.trim_tail();
        b
    }

    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << b;
        }
        self.len += 1;
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Split the bitmap at `at`, keeping the head and returning the tail.
    pub fn split_off(&mut self, at: usize) -> BitVec {
        let mut tail = BitVec::new();
        for i in at..self.len {
            tail.push(self.get(i));
        }
        self.len = at;
        self.words.truncate(at.div_ceil(64));
        self.trim_tail();
        tail
    }

    pub fn extend_from(&mut self, other: &BitVec) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// A borrowed view of one value in a column. Equality, ordering and
/// hashing reproduce [`Datum`]'s semantics bit for bit.
#[derive(Debug, Clone, Copy)]
pub enum ValRef<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Date(i32),
    Str(&'a str),
}

impl<'a> ValRef<'a> {
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, ValRef::Null)
    }

    pub fn to_datum(self) -> Datum {
        match self {
            ValRef::Null => Datum::Null,
            ValRef::Bool(b) => Datum::Bool(b),
            ValRef::Int(i) => Datum::Int(i),
            ValRef::Double(d) => Datum::Double(d),
            ValRef::Date(d) => Datum::Date(d),
            ValRef::Str(s) => Datum::Str(s.to_string()),
        }
    }

    pub fn of(d: &'a Datum) -> ValRef<'a> {
        match d {
            Datum::Null => ValRef::Null,
            Datum::Bool(b) => ValRef::Bool(*b),
            Datum::Int(i) => ValRef::Int(*i),
            Datum::Double(x) => ValRef::Double(*x),
            Datum::Date(x) => ValRef::Date(*x),
            Datum::Str(s) => ValRef::Str(s),
        }
    }

    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValRef::Int(i) => Some(*i as f64),
            ValRef::Double(d) => Some(*d),
            ValRef::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Mirror of `Datum::sql_cmp`: `None` for NULLs and incomparable types.
    pub fn sql_cmp(&self, other: &ValRef<'_>) -> Option<Ordering> {
        match (self, other) {
            (ValRef::Null, _) | (_, ValRef::Null) => None,
            (ValRef::Bool(a), ValRef::Bool(b)) => Some(a.cmp(b)),
            (ValRef::Str(a), ValRef::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Comparison class of `Datum::total_cmp` (NULLs last).
    #[inline]
    fn cmp_class(&self) -> u8 {
        match self {
            ValRef::Bool(_) => 0,
            ValRef::Int(_) | ValRef::Double(_) | ValRef::Date(_) => 1,
            ValRef::Str(_) => 2,
            ValRef::Null => 3,
        }
    }

    /// Mirror of `Datum::total_cmp` (total order used for sorting).
    pub fn total_cmp(&self, other: &ValRef<'_>) -> Ordering {
        let (ca, cb) = (self.cmp_class(), other.cmp_class());
        if ca != cb {
            return ca.cmp(&cb);
        }
        match (self, other) {
            (ValRef::Null, ValRef::Null) => Ordering::Equal,
            (ValRef::Bool(a), ValRef::Bool(b)) => a.cmp(b),
            (ValRef::Str(a), ValRef::Str(b)) => a.cmp(b),
            (a, b) => {
                let (x, y) = (
                    a.as_f64().expect("numeric class"),
                    b.as_f64().expect("numeric class"),
                );
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Mirror of `Datum`'s hash-key equality (NULL == NULL, cross-type
    /// numeric equality).
    pub fn key_eq(&self, other: &ValRef<'_>) -> bool {
        match (self, other) {
            (ValRef::Null, ValRef::Null) => true,
            (ValRef::Null, _) | (_, ValRef::Null) => false,
            (ValRef::Bool(a), ValRef::Bool(b)) => a == b,
            (ValRef::Str(a), ValRef::Str(b)) => a == b,
            (ValRef::Int(a), ValRef::Int(b)) => a == b,
            (ValRef::Date(a), ValRef::Date(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// Mirror of `impl Hash for Datum` — the same writes in the same
    /// order, so `segment_for_key` and key hashing agree with the row
    /// kernel exactly.
    pub fn hash_into<H: Hasher>(&self, state: &mut H) {
        match self {
            ValRef::Null => 0u8.hash(state),
            ValRef::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            ValRef::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            ValRef::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            ValRef::Date(d) => {
                2u8.hash(state);
                (*d as f64).to_bits().hash(state);
            }
            ValRef::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }

    /// Mirror of `Datum::width` (cost model / wire accounting).
    pub fn width(&self) -> u64 {
        match self {
            ValRef::Null => 1,
            ValRef::Bool(_) => 1,
            ValRef::Int(_) | ValRef::Double(_) => 8,
            ValRef::Date(_) => 4,
            ValRef::Str(s) => s.len() as u64 + 4,
        }
    }
}

/// An `Arc`-shared value buffer with copy-on-write mutation.
///
/// Reading derefs to the inner `Vec<T>`; mutating derefs through
/// `Arc::make_mut`, so a uniquely-owned buffer is edited in place while
/// a shared one (e.g. a storage chunk handed out by a zero-copy scan)
/// is cloned first. Cloning a `Buf` is a refcount bump — this is what
/// makes `Column::clone` (and thus batch hand-out from storage, the
/// fragment cache, and Broadcast fan-out) O(1) in the data size.
#[derive(Debug, Clone)]
pub struct Buf<T>(Arc<Vec<T>>);

impl<T> Buf<T> {
    pub fn new(v: Vec<T>) -> Buf<T> {
        Buf(Arc::new(v))
    }

    /// Whether two buffers share the same allocation.
    pub fn ptr_eq(a: &Buf<T>, b: &Buf<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Allocation identity, for charge-once byte accounting.
    pub fn addr(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Empty the buffer without cloning shared contents: a uniquely
    /// owned buffer keeps its capacity, a shared one is replaced.
    pub fn clear_buf(&mut self) {
        match Arc::get_mut(&mut self.0) {
            Some(v) => v.clear(),
            None => self.0 = Arc::new(Vec::new()),
        }
    }
}

impl<T> Default for Buf<T> {
    fn default() -> Buf<T> {
        Buf(Arc::new(Vec::new()))
    }
}

impl<T> Deref for Buf<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.0
    }
}

impl<T> From<Vec<T>> for Buf<T> {
    fn from(v: Vec<T>) -> Buf<T> {
        Buf::new(v)
    }
}

impl<T> FromIterator<T> for Buf<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Buf<T> {
        Buf::new(iter.into_iter().collect())
    }
}

impl<'a, T> IntoIterator for &'a Buf<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.0.iter()
    }
}

impl<T: Clone> DerefMut for Buf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.0)
    }
}

/// One typed column vector. `Null(n)` is an all-NULL column of length
/// `n` (also the empty column); `Dict` is a dictionary-encoded string
/// column (per-chunk sorted dict, so code order ≡ string order);
/// `Mixed` is the heterogeneous fallback. All value buffers are
/// `Arc`-shared [`Buf`]s: clones are refcount bumps and mutation is
/// copy-on-write.
#[derive(Debug, Clone)]
pub enum Column {
    Null(usize),
    Int {
        vals: Buf<i64>,
        nulls: Option<BitVec>,
    },
    Double {
        vals: Buf<f64>,
        nulls: Option<BitVec>,
    },
    Bool {
        vals: Buf<bool>,
        nulls: Option<BitVec>,
    },
    Str {
        vals: Buf<String>,
        nulls: Option<BitVec>,
    },
    Date {
        vals: Buf<i32>,
        nulls: Option<BitVec>,
    },
    /// Dictionary-encoded strings: `dict` is sorted and deduplicated,
    /// `codes[i]` indexes into it (0 for NULL slots, never read).
    /// Sortedness means equality/range predicates can run on the u32
    /// codes with the same outcome as `Datum::sql_cmp` on the strings.
    Dict {
        codes: Buf<u32>,
        dict: Arc<Vec<String>>,
        nulls: Option<BitVec>,
    },
    Mixed(Buf<Datum>),
}

#[inline]
fn null_at(nulls: &Option<BitVec>, i: usize) -> bool {
    nulls.as_ref().is_some_and(|b| b.get(i))
}

fn push_null_bit(nulls: &mut Option<BitVec>, len_before: usize, bit: bool) {
    match nulls {
        Some(b) => b.push(bit),
        None if bit => {
            let mut b = BitVec::zeros(len_before);
            b.push(true);
            *nulls = Some(b);
        }
        None => {}
    }
}

impl Column {
    /// The empty column (typed on first push).
    pub fn new() -> Column {
        Column::Null(0)
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Null(n) => *n,
            Column::Int { vals, .. } => vals.len(),
            Column::Double { vals, .. } => vals.len(),
            Column::Bool { vals, .. } => vals.len(),
            Column::Str { vals, .. } => vals.len(),
            Column::Date { vals, .. } => vals.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Mixed(vals) => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of element `i`.
    #[inline]
    pub fn get_ref(&self, i: usize) -> ValRef<'_> {
        match self {
            Column::Null(_) => ValRef::Null,
            Column::Int { vals, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Int(vals[i])
                }
            }
            Column::Double { vals, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Double(vals[i])
                }
            }
            Column::Bool { vals, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Bool(vals[i])
                }
            }
            Column::Str { vals, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Str(&vals[i])
                }
            }
            Column::Date { vals, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Date(vals[i])
                }
            }
            Column::Dict { codes, dict, nulls } => {
                if null_at(nulls, i) {
                    ValRef::Null
                } else {
                    ValRef::Str(&dict[codes[i] as usize])
                }
            }
            Column::Mixed(vals) => ValRef::of(&vals[i]),
        }
    }

    /// Owned datum at `i` (clones strings).
    pub fn get(&self, i: usize) -> Datum {
        self.get_ref(i).to_datum()
    }

    fn to_datums(&self) -> Vec<Datum> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Append an owned datum, typing / demoting the column as needed: an
    /// untyped (`Null`) column adopts the value's type; a typed column
    /// receiving a mismatched value morphs in place when empty and falls
    /// back to `Mixed` otherwise.
    pub fn push(&mut self, d: Datum) {
        // Dict columns are immutable storage artifacts; materialize
        // before the first row-wise mutation.
        if matches!(self, Column::Dict { .. }) {
            self.undict();
        }
        // Fast same-type paths first.
        match (&mut *self, &d) {
            (Column::Null(n), Datum::Null) => {
                *n += 1;
                return;
            }
            (Column::Int { vals, nulls }, Datum::Int(v)) => {
                push_null_bit(nulls, vals.len(), false);
                vals.push(*v);
                return;
            }
            (Column::Double { vals, nulls }, Datum::Double(v)) => {
                push_null_bit(nulls, vals.len(), false);
                vals.push(*v);
                return;
            }
            (Column::Bool { vals, nulls }, Datum::Bool(v)) => {
                push_null_bit(nulls, vals.len(), false);
                vals.push(*v);
                return;
            }
            (Column::Date { vals, nulls }, Datum::Date(v)) => {
                push_null_bit(nulls, vals.len(), false);
                vals.push(*v);
                return;
            }
            (Column::Mixed(vals), _) => {
                vals.push(d);
                return;
            }
            _ => {}
        }
        if let (Column::Str { vals, nulls }, Datum::Str(_)) = (&mut *self, &d) {
            push_null_bit(nulls, vals.len(), false);
            let Datum::Str(s) = d else { unreachable!() };
            vals.push(s);
            return;
        }
        if d.is_null() {
            // Typed column receiving a NULL: placeholder + null bit.
            match self {
                Column::Int { vals, nulls } => {
                    push_null_bit(nulls, vals.len(), true);
                    vals.push(0);
                }
                Column::Double { vals, nulls } => {
                    push_null_bit(nulls, vals.len(), true);
                    vals.push(0.0);
                }
                Column::Bool { vals, nulls } => {
                    push_null_bit(nulls, vals.len(), true);
                    vals.push(false);
                }
                Column::Str { vals, nulls } => {
                    push_null_bit(nulls, vals.len(), true);
                    vals.push(String::new());
                }
                Column::Date { vals, nulls } => {
                    push_null_bit(nulls, vals.len(), true);
                    vals.push(0);
                }
                Column::Null(_) | Column::Mixed(_) | Column::Dict { .. } => {
                    unreachable!("handled above")
                }
            }
            return;
        }
        // Type mismatch (or first typed value into a Null column).
        if let Column::Null(n) = self {
            let n = *n;
            let mut col = Column::typed_empty(&d);
            for _ in 0..n {
                col.push(Datum::Null);
            }
            col.push(d);
            *self = col;
            return;
        }
        if self.is_empty() {
            *self = Column::typed_empty(&d);
            self.push(d);
            return;
        }
        let mut vals = self.to_datums();
        vals.push(d);
        *self = Column::Mixed(Buf::new(vals));
    }

    fn typed_empty(d: &Datum) -> Column {
        match d {
            Datum::Int(_) => Column::Int {
                vals: Buf::default(),
                nulls: None,
            },
            Datum::Double(_) => Column::Double {
                vals: Buf::default(),
                nulls: None,
            },
            Datum::Bool(_) => Column::Bool {
                vals: Buf::default(),
                nulls: None,
            },
            Datum::Str(_) => Column::Str {
                vals: Buf::default(),
                nulls: None,
            },
            Datum::Date(_) => Column::Date {
                vals: Buf::default(),
                nulls: None,
            },
            Datum::Null => Column::Null(0),
        }
    }

    /// Append element `i` of `other` (typed fast path, `push` fallback).
    pub fn append_from(&mut self, other: &Column, i: usize) {
        match (&mut *self, other) {
            (Column::Null(n), Column::Null(_)) => *n += 1,
            (
                Column::Int { vals, nulls },
                Column::Int {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                push_null_bit(nulls, vals.len(), null_at(on, i));
                vals.push(ov[i]);
            }
            (
                Column::Double { vals, nulls },
                Column::Double {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                push_null_bit(nulls, vals.len(), null_at(on, i));
                vals.push(ov[i]);
            }
            (
                Column::Bool { vals, nulls },
                Column::Bool {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                push_null_bit(nulls, vals.len(), null_at(on, i));
                vals.push(ov[i]);
            }
            (
                Column::Date { vals, nulls },
                Column::Date {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                push_null_bit(nulls, vals.len(), null_at(on, i));
                vals.push(ov[i]);
            }
            (
                Column::Str { vals, nulls },
                Column::Str {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                push_null_bit(nulls, vals.len(), null_at(on, i));
                vals.push(ov[i].clone());
            }
            (
                Column::Dict { codes, dict, nulls },
                Column::Dict {
                    codes: oc,
                    dict: od,
                    nulls: on,
                },
            ) if Arc::ptr_eq(dict, od) => {
                push_null_bit(nulls, codes.len(), null_at(on, i));
                codes.push(oc[i]);
            }
            _ => self.push(other.get(i)),
        }
    }

    /// Bulk-append a whole column (typed extend fast path).
    pub fn extend_from_column(&mut self, other: &Column) {
        match (&mut *self, other) {
            (Column::Null(n), Column::Null(m)) => *n += m,
            (
                Column::Int { vals, nulls },
                Column::Int {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                extend_nulls(nulls, vals.len(), on, ov.len());
                vals.extend_from_slice(ov);
            }
            (
                Column::Double { vals, nulls },
                Column::Double {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                extend_nulls(nulls, vals.len(), on, ov.len());
                vals.extend_from_slice(ov);
            }
            (
                Column::Bool { vals, nulls },
                Column::Bool {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                extend_nulls(nulls, vals.len(), on, ov.len());
                vals.extend_from_slice(ov);
            }
            (
                Column::Date { vals, nulls },
                Column::Date {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                extend_nulls(nulls, vals.len(), on, ov.len());
                vals.extend_from_slice(ov);
            }
            (
                Column::Str { vals, nulls },
                Column::Str {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                extend_nulls(nulls, vals.len(), on, ov.len());
                vals.extend_from_slice(ov);
            }
            (
                Column::Dict { codes, dict, nulls },
                Column::Dict {
                    codes: oc,
                    dict: od,
                    nulls: on,
                },
            ) if Arc::ptr_eq(dict, od) => {
                extend_nulls(nulls, codes.len(), on, oc.len());
                codes.extend_from_slice(oc);
            }
            _ => {
                // An empty untyped target adopts the source wholesale
                // (a refcount bump — this is how Dict columns survive
                // concat and spool copies without decoding).
                if self.is_empty() && matches!(self, Column::Null(_)) {
                    *self = other.clone();
                    return;
                }
                for i in 0..other.len() {
                    self.append_from(other, i);
                }
            }
        }
    }

    /// Gather by selection vector: `u32::MAX` selects NULL (used for the
    /// unmatched side of outer joins).
    pub fn gather(&self, sel: &[u32]) -> Column {
        const NONE: u32 = u32::MAX;
        macro_rules! gather_typed {
            ($variant:ident, $vals:ident, $nulls:ident, $default:expr) => {{
                let mut out_vals = Vec::with_capacity(sel.len());
                let mut out_nulls: Option<BitVec> = None;
                for (k, &i) in sel.iter().enumerate() {
                    if i == NONE || null_at($nulls, i as usize) {
                        push_null_bit(&mut out_nulls, k, true);
                        out_vals.push($default);
                    } else {
                        push_null_bit(&mut out_nulls, k, false);
                        out_vals.push($vals[i as usize].clone());
                    }
                }
                Column::$variant {
                    vals: Buf::new(out_vals),
                    nulls: out_nulls,
                }
            }};
        }
        match self {
            Column::Null(_) => Column::Null(sel.len()),
            Column::Int { vals, nulls } => gather_typed!(Int, vals, nulls, 0i64),
            Column::Double { vals, nulls } => gather_typed!(Double, vals, nulls, 0.0f64),
            Column::Bool { vals, nulls } => gather_typed!(Bool, vals, nulls, false),
            Column::Str { vals, nulls } => gather_typed!(Str, vals, nulls, String::new()),
            Column::Date { vals, nulls } => gather_typed!(Date, vals, nulls, 0i32),
            Column::Dict { codes, dict, nulls } => {
                // Stays dictionary-encoded: gather the codes, share the
                // dict — string filters/joins never copy string bytes.
                let mut out_codes = Vec::with_capacity(sel.len());
                let mut out_nulls: Option<BitVec> = None;
                for (k, &i) in sel.iter().enumerate() {
                    if i == NONE || null_at(nulls, i as usize) {
                        push_null_bit(&mut out_nulls, k, true);
                        out_codes.push(0);
                    } else {
                        push_null_bit(&mut out_nulls, k, false);
                        out_codes.push(codes[i as usize]);
                    }
                }
                Column::Dict {
                    codes: Buf::new(out_codes),
                    dict: dict.clone(),
                    nulls: out_nulls,
                }
            }
            Column::Mixed(vals) => Column::Mixed(Buf::new(
                sel.iter()
                    .map(|&i| {
                        if i == NONE {
                            Datum::Null
                        } else {
                            vals[i as usize].clone()
                        }
                    })
                    .collect(),
            )),
        }
    }

    /// Split at `at`, keeping the head and returning the tail.
    pub fn split_off(&mut self, at: usize) -> Column {
        match self {
            Column::Null(n) => {
                let tail = *n - at;
                *n = at;
                Column::Null(tail)
            }
            Column::Int { vals, nulls } => Column::Int {
                vals: Buf::new(vals.split_off(at)),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Double { vals, nulls } => Column::Double {
                vals: Buf::new(vals.split_off(at)),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Bool { vals, nulls } => Column::Bool {
                vals: Buf::new(vals.split_off(at)),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Str { vals, nulls } => Column::Str {
                vals: Buf::new(vals.split_off(at)),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Date { vals, nulls } => Column::Date {
                vals: Buf::new(vals.split_off(at)),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Dict { codes, dict, nulls } => Column::Dict {
                codes: Buf::new(codes.split_off(at)),
                dict: dict.clone(),
                nulls: nulls.as_mut().map(|b| b.split_off(at)),
            },
            Column::Mixed(vals) => Column::Mixed(Buf::new(vals.split_off(at))),
        }
    }

    /// Empty the column, keeping allocated capacity where possible.
    pub fn clear(&mut self) {
        match self {
            Column::Null(n) => *n = 0,
            Column::Int { vals, nulls } => {
                vals.clear_buf();
                *nulls = None;
            }
            Column::Double { vals, nulls } => {
                vals.clear_buf();
                *nulls = None;
            }
            Column::Bool { vals, nulls } => {
                vals.clear_buf();
                *nulls = None;
            }
            Column::Str { vals, nulls } => {
                vals.clear_buf();
                *nulls = None;
            }
            Column::Date { vals, nulls } => {
                vals.clear_buf();
                *nulls = None;
            }
            // A cleared Dict drops its shared buffers and reverts to
            // the untyped empty column.
            Column::Dict { .. } => *self = Column::Null(0),
            Column::Mixed(vals) => vals.clear_buf(),
        }
    }

    /// A column of `len` copies of `d`.
    pub fn repeat(d: &Datum, len: usize) -> Column {
        if d.is_null() {
            return Column::Null(len);
        }
        let mut col = Column::typed_empty(d);
        match (&mut col, d) {
            (Column::Int { vals, .. }, Datum::Int(v)) => *vals = Buf::new(vec![*v; len]),
            (Column::Double { vals, .. }, Datum::Double(v)) => *vals = Buf::new(vec![*v; len]),
            (Column::Bool { vals, .. }, Datum::Bool(v)) => *vals = Buf::new(vec![*v; len]),
            (Column::Str { vals, .. }, Datum::Str(v)) => *vals = Buf::new(vec![v.clone(); len]),
            (Column::Date { vals, .. }, Datum::Date(v)) => *vals = Buf::new(vec![*v; len]),
            _ => unreachable!(),
        }
        col
    }

    /// Sum of element widths (matches the row kernel's byte accounting).
    /// For `Dict` this is the *logical* width — decoded string widths,
    /// not code widths — so Motion byte accounting is representation
    /// independent.
    pub fn bytes(&self) -> u64 {
        match self {
            // Width depends on nullness for strings; the generic path is
            // exact for every variant.
            Column::Int { nulls: None, vals } => 8 * vals.len() as u64,
            Column::Double { nulls: None, vals } => 8 * vals.len() as u64,
            Column::Bool { nulls: None, vals } => vals.len() as u64,
            Column::Date { nulls: None, vals } => 4 * vals.len() as u64,
            Column::Dict {
                codes,
                dict,
                nulls: None,
            } => codes
                .iter()
                .map(|&c| dict[c as usize].len() as u64 + 4)
                .sum(),
            Column::Null(n) => *n as u64,
            _ => (0..self.len()).map(|i| self.get_ref(i).width()).sum(),
        }
    }

    /// Bytes this column actually holds in memory, charging each shared
    /// allocation once: an allocation already in `seen` costs nothing.
    /// This is the honest budget metric for the fragment cache, where
    /// batches alias storage chunks and each other.
    pub fn physical_bytes(&self, seen: &mut std::collections::HashSet<usize>) -> u64 {
        fn once<T>(seen: &mut std::collections::HashSet<usize>, buf: &Buf<T>, bytes: u64) -> u64 {
            if seen.insert(buf.addr()) {
                bytes
            } else {
                0
            }
        }
        let bitmap =
            |nulls: &Option<BitVec>| nulls.as_ref().map_or(0, |b| (b.len() as u64).div_ceil(8));
        match self {
            Column::Null(_) => 0,
            Column::Int { vals, nulls } => once(seen, vals, 8 * vals.len() as u64) + bitmap(nulls),
            Column::Double { vals, nulls } => {
                once(seen, vals, 8 * vals.len() as u64) + bitmap(nulls)
            }
            Column::Bool { vals, nulls } => once(seen, vals, vals.len() as u64) + bitmap(nulls),
            Column::Date { vals, nulls } => once(seen, vals, 4 * vals.len() as u64) + bitmap(nulls),
            Column::Str { vals, nulls } => {
                let sz = || vals.iter().map(|s| s.len() as u64 + 4).sum::<u64>();
                (if seen.insert(vals.addr()) { sz() } else { 0 }) + bitmap(nulls)
            }
            Column::Dict { codes, dict, nulls } => {
                let codes_b = once(seen, codes, 4 * codes.len() as u64);
                let dict_b = if seen.insert(Arc::as_ptr(dict) as usize) {
                    dict.iter().map(|s| s.len() as u64 + 4).sum::<u64>()
                } else {
                    0
                };
                codes_b + dict_b + bitmap(nulls)
            }
            Column::Mixed(vals) => {
                if seen.insert(vals.addr()) {
                    vals.iter().map(Datum::width).sum()
                } else {
                    0
                }
            }
        }
    }

    /// Decode a `Dict` column in place to a plain `Str` column (NULL
    /// slots become empty-string placeholders under the null bitmap).
    /// No-op for every other variant.
    pub fn undict(&mut self) {
        if let Column::Dict { codes, dict, nulls } = self {
            let vals: Vec<String> = codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if null_at(nulls, i) {
                        String::new()
                    } else {
                        dict[c as usize].clone()
                    }
                })
                .collect();
            *self = Column::Str {
                vals: Buf::new(vals),
                nulls: nulls.take(),
            };
        }
    }

    /// Dictionary-encode a `Str` column: sorted, deduplicated per-chunk
    /// dict so that code order equals `Datum::sql_cmp` string order.
    /// Returns `None` for non-string columns.
    pub fn dict_encoded(&self) -> Option<Column> {
        let Column::Str { vals, nulls } = self else {
            return None;
        };
        let mut uniq: Vec<&String> = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| !null_at(nulls, *i))
            .map(|(_, s)| s)
            .collect();
        uniq.sort();
        uniq.dedup();
        let dict: Vec<String> = uniq.into_iter().cloned().collect();
        let codes: Vec<u32> = vals
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if null_at(nulls, i) {
                    0
                } else {
                    dict.binary_search(s).expect("value in dict") as u32
                }
            })
            .collect();
        Some(Column::Dict {
            codes: Buf::new(codes),
            dict: Arc::new(dict),
            nulls: nulls.clone(),
        })
    }

    /// Borrow the pieces of a `Dict` column, if this is one.
    pub fn dict_parts(&self) -> Option<(&[u32], &[String], Option<&BitVec>)> {
        if let Column::Dict { codes, dict, nulls } = self {
            Some((codes, dict, nulls.as_ref()))
        } else {
            None
        }
    }

    /// Fold every row's value into its per-row hasher state, exactly as
    /// `ValRef::hash_into` would (`states.len() == self.len()`). Typed
    /// inner loops replace the per-row `get_ref` dispatch — this is the
    /// batch-at-a-time half of the vectorized Redistribute fan-out.
    pub fn hash_rows_into<H: Hasher>(&self, states: &mut [H]) {
        debug_assert_eq!(states.len(), self.len());
        match self {
            Column::Null(_) => {
                for st in states.iter_mut() {
                    0u8.hash(st);
                }
            }
            Column::Int { vals, nulls: None } => {
                for (v, st) in vals.iter().zip(states.iter_mut()) {
                    2u8.hash(st);
                    (*v as f64).to_bits().hash(st);
                }
            }
            Column::Double { vals, nulls: None } => {
                for (v, st) in vals.iter().zip(states.iter_mut()) {
                    2u8.hash(st);
                    v.to_bits().hash(st);
                }
            }
            Column::Date { vals, nulls: None } => {
                for (v, st) in vals.iter().zip(states.iter_mut()) {
                    2u8.hash(st);
                    (*v as f64).to_bits().hash(st);
                }
            }
            Column::Bool { vals, nulls: None } => {
                for (v, st) in vals.iter().zip(states.iter_mut()) {
                    1u8.hash(st);
                    v.hash(st);
                }
            }
            Column::Str { vals, nulls: None } => {
                for (v, st) in vals.iter().zip(states.iter_mut()) {
                    4u8.hash(st);
                    v.hash(st);
                }
            }
            Column::Dict {
                codes,
                dict,
                nulls: None,
            } => {
                for (c, st) in codes.iter().zip(states.iter_mut()) {
                    4u8.hash(st);
                    dict[*c as usize].hash(st);
                }
            }
            _ => {
                for (i, st) in states.iter_mut().enumerate() {
                    self.get_ref(i).hash_into(st);
                }
            }
        }
    }

    /// Append the `sel`-selected rows of `other` (typed bulk path; the
    /// scatter half of the vectorized Redistribute). Unlike `gather`,
    /// `u32::MAX` sentinels are not allowed.
    pub fn extend_gather(&mut self, other: &Column, sel: &[u32]) {
        if sel.is_empty() {
            return;
        }
        if self.is_empty() && matches!(self, Column::Null(_)) {
            *self = other.gather(sel);
            return;
        }
        macro_rules! extend_typed {
            ($vals:ident, $nulls:ident, $ov:ident, $on:ident) => {{
                for &i in sel {
                    push_null_bit($nulls, $vals.len(), null_at($on, i as usize));
                    $vals.push($ov[i as usize].clone());
                }
            }};
        }
        match (&mut *self, other) {
            (Column::Null(n), Column::Null(_)) => *n += sel.len(),
            (
                Column::Int { vals, nulls },
                Column::Int {
                    vals: ov,
                    nulls: on,
                },
            ) => extend_typed!(vals, nulls, ov, on),
            (
                Column::Double { vals, nulls },
                Column::Double {
                    vals: ov,
                    nulls: on,
                },
            ) => extend_typed!(vals, nulls, ov, on),
            (
                Column::Bool { vals, nulls },
                Column::Bool {
                    vals: ov,
                    nulls: on,
                },
            ) => extend_typed!(vals, nulls, ov, on),
            (
                Column::Date { vals, nulls },
                Column::Date {
                    vals: ov,
                    nulls: on,
                },
            ) => extend_typed!(vals, nulls, ov, on),
            (
                Column::Str { vals, nulls },
                Column::Str {
                    vals: ov,
                    nulls: on,
                },
            ) => extend_typed!(vals, nulls, ov, on),
            (
                Column::Dict { codes, dict, nulls },
                Column::Dict {
                    codes: oc,
                    dict: od,
                    nulls: on,
                },
            ) if Arc::ptr_eq(dict, od) => {
                for &i in sel {
                    push_null_bit(nulls, codes.len(), null_at(on, i as usize));
                    codes.push(oc[i as usize]);
                }
            }
            _ => {
                for &i in sel {
                    self.append_from(other, i as usize);
                }
            }
        }
    }
}

impl Default for Column {
    fn default() -> Column {
        Column::new()
    }
}

fn extend_nulls(nulls: &mut Option<BitVec>, len_before: usize, other: &Option<BitVec>, n: usize) {
    match (nulls.as_mut(), other) {
        (None, None) => {}
        (Some(b), None) => {
            for _ in 0..n {
                b.push(false);
            }
        }
        (None, Some(o)) => {
            if o.any() {
                let mut b = BitVec::zeros(len_before);
                b.extend_from(o);
                *nulls = Some(b);
            }
        }
        (Some(b), Some(o)) => b.extend_from(o),
    }
}

/// A batch of rows in columnar form: one [`Column`] per position, all of
/// length `len`.
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    pub cols: Vec<Column>,
    pub len: usize,
}

impl ColumnBatch {
    pub fn new(width: usize) -> ColumnBatch {
        ColumnBatch {
            cols: (0..width).map(|_| Column::new()).collect(),
            len: 0,
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn from_rows(rows: &[Row], width: usize) -> ColumnBatch {
        let mut b = ColumnBatch::new(width);
        for row in rows {
            b.push_row(row);
        }
        b
    }

    pub fn push_row(&mut self, row: &Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, d) in self.cols.iter_mut().zip(row.iter()) {
            col.push(d.clone());
        }
        self.len += 1;
    }

    /// Append row `i` of `other` column by column.
    pub fn append_row_from(&mut self, other: &ColumnBatch, i: usize) {
        for (col, ocol) in self.cols.iter_mut().zip(other.cols.iter()) {
            col.append_from(ocol, i);
        }
        self.len += 1;
    }

    /// Bulk-append a whole batch.
    pub fn extend_from_batch(&mut self, other: &ColumnBatch) {
        debug_assert_eq!(self.cols.len(), other.cols.len());
        for (col, ocol) in self.cols.iter_mut().zip(other.cols.iter()) {
            col.extend_from_column(ocol);
        }
        self.len += other.len;
    }

    pub fn row(&self, i: usize) -> Row {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    pub fn to_rows(&self, out: &mut Vec<Row>) {
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.row(i));
        }
    }

    /// Gather rows by selection vector (`u32::MAX` = all-NULL row).
    pub fn select(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch {
            cols: self.cols.iter().map(|c| c.gather(sel)).collect(),
            len: sel.len(),
        }
    }

    /// Bulk-append the `sel`-selected rows of `other` (no `u32::MAX`
    /// sentinels) — the scatter step of vectorized fan-out.
    pub fn extend_select(&mut self, other: &ColumnBatch, sel: &[u32]) {
        debug_assert_eq!(self.cols.len(), other.cols.len());
        for (col, ocol) in self.cols.iter_mut().zip(other.cols.iter()) {
            col.extend_gather(ocol, sel);
        }
        self.len += sel.len();
    }

    /// Resident bytes, charging each shared allocation once across the
    /// whole call sequence threaded through `seen`.
    pub fn physical_bytes(&self, seen: &mut std::collections::HashSet<usize>) -> u64 {
        self.cols.iter().map(|c| c.physical_bytes(seen)).sum()
    }

    pub fn split_off(&mut self, at: usize) -> ColumnBatch {
        let tail_len = self.len - at;
        let cols = self.cols.iter_mut().map(|c| c.split_off(at)).collect();
        self.len = at;
        ColumnBatch {
            cols,
            len: tail_len,
        }
    }

    /// Reset to an empty batch of `width` columns, keeping allocations.
    pub fn reset(&mut self, width: usize) {
        if self.cols.len() != width {
            self.cols.resize_with(width, Column::new);
        }
        for c in self.cols.iter_mut() {
            c.clear();
        }
        self.len = 0;
    }

    pub fn bytes(&self) -> u64 {
        self.cols.iter().map(Column::bytes).sum()
    }

    /// Concatenate batches into one chunk.
    pub fn concat(batches: &[ColumnBatch], width: usize) -> ColumnBatch {
        let mut out = ColumnBatch::new(width);
        for b in batches {
            out.extend_from_batch(b);
        }
        out
    }
}

/// A per-segment columnar stream: the columnar analogue of
/// [`StreamSet`], carrying batch lists instead of row vectors.
#[derive(Debug, Clone)]
pub struct ColStream {
    pub layout: Vec<ColId>,
    pub per_seg: Vec<Vec<ColumnBatch>>,
    /// Simulated completion time of each segment's stream.
    pub avail: Vec<f64>,
    /// Same convention as [`StreamSet::replicated`].
    pub replicated: bool,
}

impl ColStream {
    pub fn empty(layout: Vec<ColId>, segments: usize) -> ColStream {
        ColStream {
            layout,
            per_seg: vec![Vec::new(); segments],
            avail: vec![0.0; segments],
            replicated: false,
        }
    }

    /// Rows in slot `s`.
    pub fn seg_rows(&self, s: usize) -> usize {
        self.per_seg[s].iter().map(|b| b.len).sum()
    }

    pub fn total_rows(&self) -> usize {
        (0..self.per_seg.len()).map(|s| self.seg_rows(s)).sum()
    }

    pub fn total_batches(&self) -> usize {
        self.per_seg.iter().map(Vec::len).sum()
    }

    pub fn elapsed(&self) -> f64 {
        self.avail.iter().copied().fold(0.0, f64::max)
    }

    /// Byte total over all slots (mirrors `StreamSet::bytes`; the sums
    /// are integers, so accumulation order cannot change the result).
    pub fn bytes(&self) -> f64 {
        self.per_seg
            .iter()
            .flatten()
            .map(|b| b.bytes() as f64)
            .sum()
    }

    /// All distinct-copy rows (one copy for replicated streams).
    pub fn gathered_rows(&self) -> Vec<Row> {
        let mut out = Vec::new();
        if self.replicated {
            for b in &self.per_seg[0] {
                b.to_rows(&mut out);
            }
            return out;
        }
        for seg in &self.per_seg {
            for b in seg {
                b.to_rows(&mut out);
            }
        }
        out
    }

    pub fn from_streamset(ss: &StreamSet, batch_size: usize) -> ColStream {
        let batch_size = batch_size.max(1);
        let width = ss.layout.len();
        ColStream {
            layout: ss.layout.clone(),
            per_seg: ss
                .per_seg
                .iter()
                .map(|rows| {
                    rows.chunks(batch_size)
                        .map(|chunk| ColumnBatch::from_rows(chunk, width))
                        .collect()
                })
                .collect(),
            avail: ss.avail.clone(),
            replicated: ss.replicated,
        }
    }

    pub fn to_streamset(&self) -> StreamSet {
        let mut out = StreamSet::empty(self.layout.clone(), self.per_seg.len());
        for (s, batches) in self.per_seg.iter().enumerate() {
            let mut rows = Vec::new();
            for b in batches {
                b.to_rows(&mut rows);
            }
            out.per_seg[s] = rows;
        }
        out.avail = self.avail.clone();
        out.replicated = self.replicated;
        out
    }
}

/// Accumulates appended rows and emits full [`ColumnBatch`]es of at most
/// `cap` rows — the streaming-stage output buffer.
pub struct BatchWriter {
    width: usize,
    cap: usize,
    cur: ColumnBatch,
    out: Vec<ColumnBatch>,
}

impl BatchWriter {
    pub fn new(width: usize, cap: usize) -> BatchWriter {
        BatchWriter {
            width,
            cap: cap.max(1),
            cur: ColumnBatch::new(width),
            out: Vec::new(),
        }
    }

    pub fn append_row_from(&mut self, src: &ColumnBatch, i: usize) {
        self.cur.append_row_from(src, i);
        if self.cur.len >= self.cap {
            self.flush();
        }
    }

    pub fn push_row(&mut self, row: &Row) {
        self.cur.push_row(row);
        if self.cur.len >= self.cap {
            self.flush();
        }
    }

    /// Append a pre-built batch, preserving its boundaries when it fits.
    pub fn push_batch(&mut self, batch: ColumnBatch) {
        if batch.is_empty() {
            return;
        }
        if self.cur.is_empty() && batch.len <= self.cap {
            self.out.push(batch);
            return;
        }
        self.cur.extend_from_batch(&batch);
        while self.cur.len >= self.cap {
            let tail = self.cur.split_off(self.cap.min(self.cur.len));
            let full = std::mem::replace(&mut self.cur, tail);
            self.out.push(full);
        }
    }

    /// Gather `sel` rows of `src` into the accumulating batch, emitting
    /// capacity-sized batches as they fill. Unlike [`BatchWriter::push_batch`]
    /// this never preserves the (possibly tiny) incoming boundary, so
    /// many small selections coalesce instead of fragmenting the output —
    /// the redistribute fan-out depends on this to keep downstream
    /// operators working on full batches.
    pub fn extend_select(&mut self, src: &ColumnBatch, sel: &[u32]) {
        let mut rest = sel;
        while !rest.is_empty() {
            let take = (self.cap - self.cur.len).min(rest.len());
            self.cur.extend_select(src, &rest[..take]);
            rest = &rest[take..];
            if self.cur.len >= self.cap {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        if !self.cur.is_empty() {
            let full = std::mem::replace(&mut self.cur, ColumnBatch::new(self.width));
            self.out.push(full);
        }
    }

    pub fn rows(&self) -> usize {
        self.out.iter().map(|b| b.len).sum::<usize>() + self.cur.len
    }

    pub fn finish(mut self) -> Vec<ColumnBatch> {
        self.flush();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::hash::{segment_for_key, FnvHasher};

    fn mixed_rows() -> Vec<Row> {
        vec![
            vec![Datum::Int(1), Datum::Str("a".into()), Datum::Null],
            vec![Datum::Int(2), Datum::Null, Datum::Double(1.5)],
            vec![Datum::Null, Datum::Str("b".into()), Datum::Bool(true)],
        ]
    }

    #[test]
    fn roundtrip_preserves_exact_datums() {
        let rows = mixed_rows();
        let b = ColumnBatch::from_rows(&rows, 3);
        let mut back = Vec::new();
        b.to_rows(&mut back);
        assert_eq!(format!("{rows:?}"), format!("{back:?}"));
    }

    #[test]
    fn heterogeneous_column_demotes_to_mixed() {
        let mut c = Column::new();
        c.push(Datum::Int(1));
        c.push(Datum::Str("x".into()));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.get(0), Datum::Int(1));
        assert_eq!(c.get(1), Datum::Str("x".into()));
    }

    #[test]
    fn all_null_column_stays_null() {
        let mut c = Column::new();
        c.push(Datum::Null);
        c.push(Datum::Null);
        assert!(matches!(c, Column::Null(2)));
        c.push(Datum::Int(7));
        assert_eq!(c.get(0), Datum::Null);
        assert_eq!(c.get(2), Datum::Int(7));
    }

    #[test]
    fn valref_hash_matches_datum_hash() {
        for d in [
            Datum::Null,
            Datum::Bool(true),
            Datum::Int(42),
            Datum::Double(2.5),
            Datum::Date(100),
            Datum::Str("hello".into()),
        ] {
            let mut h1 = FnvHasher::default();
            d.hash(&mut h1);
            let mut h2 = FnvHasher::default();
            ValRef::of(&d).hash_into(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "hash mismatch for {d:?}");
        }
        // Composite keys agree with segment_for_key.
        let key = vec![Datum::Int(5), Datum::Str("k".into())];
        let mut h = FnvHasher::default();
        for d in &key {
            ValRef::of(d).hash_into(&mut h);
        }
        assert_eq!((h.finish() % 7) as usize, segment_for_key(&key, 7));
    }

    #[test]
    fn valref_semantics_match_datum() {
        let a = Datum::Int(3);
        let b = Datum::Double(3.0);
        assert!(ValRef::of(&a).key_eq(&ValRef::of(&b)));
        assert!(ValRef::of(&Datum::Null).key_eq(&ValRef::of(&Datum::Null)));
        assert!(!ValRef::of(&Datum::Null).key_eq(&ValRef::of(&a)));
        for (x, y) in [
            (Datum::Int(1), Datum::Int(2)),
            (Datum::Int(1), Datum::Null),
            (Datum::Str("a".into()), Datum::Int(1)),
            (Datum::Bool(false), Datum::Bool(true)),
        ] {
            assert_eq!(
                ValRef::of(&x).total_cmp(&ValRef::of(&y)),
                x.total_cmp(&y),
                "total_cmp mismatch {x:?} {y:?}"
            );
            assert_eq!(
                ValRef::of(&x).sql_cmp(&ValRef::of(&y)),
                x.sql_cmp(&y),
                "sql_cmp mismatch {x:?} {y:?}"
            );
            assert_eq!(ValRef::of(&x).width(), x.width());
        }
    }

    #[test]
    fn gather_with_null_sentinel() {
        let rows: Vec<Row> = (0..5).map(|i| vec![Datum::Int(i)]).collect();
        let b = ColumnBatch::from_rows(&rows, 1);
        let sel = [4u32, u32::MAX, 0];
        let g = b.select(&sel);
        assert_eq!(g.row(0), vec![Datum::Int(4)]);
        assert_eq!(g.row(1), vec![Datum::Null]);
        assert_eq!(g.row(2), vec![Datum::Int(0)]);
    }

    #[test]
    fn split_off_and_writer_chunking() {
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    if i % 3 == 0 {
                        Datum::Null
                    } else {
                        Datum::Int(-i)
                    },
                ]
            })
            .collect();
        let mut b = ColumnBatch::from_rows(&rows, 2);
        let tail = b.split_off(4);
        assert_eq!(b.len, 4);
        assert_eq!(tail.len, 6);
        assert_eq!(tail.row(0), rows[4]);
        let mut w = BatchWriter::new(2, 3);
        w.push_batch(b);
        w.push_batch(tail);
        let batches = w.finish();
        assert!(batches.iter().all(|b| b.len <= 3));
        let mut back = Vec::new();
        for batch in &batches {
            batch.to_rows(&mut back);
        }
        assert_eq!(back, rows);
    }

    #[test]
    fn streamset_roundtrip() {
        let mut ss = StreamSet::empty(vec![ColId(0), ColId(1)], 2);
        ss.per_seg[0] = mixed_rows()
            .into_iter()
            .map(|mut r| {
                r.truncate(2);
                r
            })
            .collect();
        ss.avail = vec![1.5, 0.5];
        ss.replicated = false;
        let cs = ColStream::from_streamset(&ss, 2);
        assert_eq!(cs.seg_rows(0), 3);
        assert_eq!(cs.per_seg[0].len(), 2, "chunked at batch_size");
        let back = cs.to_streamset();
        assert_eq!(format!("{:?}", back.per_seg), format!("{:?}", ss.per_seg));
        assert_eq!(back.avail, ss.avail);
        assert_eq!(cs.bytes(), ss_bytes(&ss));
    }

    fn ss_bytes(ss: &StreamSet) -> f64 {
        ss.per_seg
            .iter()
            .flatten()
            .map(|r| r.iter().map(Datum::width).sum::<u64>() as f64)
            .sum()
    }
}

#[cfg(test)]
mod dict_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// Dictionary round-trip: decoding an encoded string column is
        /// the identity (NULLs included), and comparing rows by their
        /// u32 codes agrees with `Datum::sql_cmp` on the decoded
        /// strings — the property the fused scan's code-space conjunct
        /// evaluation relies on.
        #[test]
        fn dict_roundtrip_and_code_order(
            vals in proptest::collection::vec(
                proptest::option::of(proptest::sample::select(vec![
                    String::new(), "a".into(), "ab".into(), "abc".into(),
                    "b".into(), "bb".into(), "c".into(), "cat".into(), "e".into(),
                ])), 1..120),
        ) {
            let mut col = Column::new();
            for v in &vals {
                col.push(match v {
                    Some(s) => Datum::Str(s.clone()),
                    None => Datum::Null,
                });
            }
            // All-NULL inputs never build a `Str` column; nothing to encode.
            let Some(enc) = col.dict_encoded() else { return Ok(()) };
            let (codes, dict, nulls) = enc.dict_parts().expect("encoded to Dict");
            prop_assert!(dict.windows(2).all(|w| w[0] < w[1]), "dict sorted + deduped");
            // Decode ≡ identity, both via `undict` and via `get`.
            let mut dec = enc.clone();
            dec.undict();
            for (i, v) in vals.iter().enumerate() {
                let want = match v {
                    Some(s) => Datum::Str(s.clone()),
                    None => Datum::Null,
                };
                prop_assert_eq!(&dec.get(i), &want);
                prop_assert_eq!(&enc.get(i), &want);
            }
            // Code-space comparison ≡ sql_cmp on the strings.
            for i in 0..vals.len() {
                for j in 0..vals.len() {
                    let (Some(a), Some(b)) = (&vals[i], &vals[j]) else { continue };
                    prop_assert!(
                        !nulls.is_some_and(|nb| nb.get(i))
                            && !nulls.is_some_and(|nb| nb.get(j))
                    );
                    prop_assert_eq!(
                        Some(codes[i].cmp(&codes[j])),
                        Datum::Str(a.clone()).sql_cmp(&Datum::Str(b.clone())),
                        "code order diverged from sql_cmp at ({}, {})", i, j
                    );
                }
            }
        }
    }
}
