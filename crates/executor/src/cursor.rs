//! Streaming cursors over plan execution.
//!
//! [`crate::engine::ExecEngine::run`] buffers the *entire* projected
//! rowset before the caller sees a single row. A [`Cursor`] replaces that
//! contract with incremental delivery: a producer thread runs the plan
//! and hands projected row batches to the consumer through a bounded
//! channel, so
//!
//! * the consumer-side buffer is at most [`CHANNEL_BATCHES`]` + 1`
//!   batches, regardless of result size;
//! * the first batch is available before the producer has finished
//!   projecting the rowset ([`Cursor::producer_finished`] observes the
//!   boundary); and
//! * dropping or [`Cursor::close`]-ing the cursor cancels the plan
//!   mid-flight via the shared [`AbortSignal`] — the kernel checks it at
//!   every operator boundary, and the producer's send loop polls it
//!   whenever the channel is full.
//!
//! Batches, rows, the final simulated time, and every [`ExecStats`]
//! counter are identical to the buffering path — the cursor streams the
//! projection/delivery phase, it does not change what executes.

use crate::columnar::cexec;
use crate::exec::{exec, key_positions, ExecCtx, ExecStats};
use crate::storage::{Database, Row};
use orca_common::{ColId, OrcaError, Result};
use orca_expr::physical::PhysicalPlan;
use orca_gpos::AbortSignal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Batches buffered in the channel before the producer blocks.
const CHANNEL_BATCHES: usize = 2;

/// Abort poll period while the channel is full (the repo-wide ~10ms
/// liveness tick, same as the spool and interconnect waits).
const POLL: Duration = Duration::from_millis(10);

/// Options for [`Cursor::open`].
#[derive(Default)]
pub struct CursorOptions {
    /// Run the vectorized batch kernel instead of the row kernel.
    pub columnar: bool,
    /// Rows per delivered batch; `0` means the cluster's `batch_size`.
    pub batch_rows: usize,
    /// Cross-query fragment cache to attach (columnar runs only).
    pub fragments: Option<Arc<crate::sharing::FragmentCache>>,
    /// Per-query memory grant; `None` = ungoverned.
    pub mem: Option<Arc<crate::memory::MemoryTracker>>,
}

/// Final per-query report, available once the cursor is exhausted.
#[derive(Debug, Clone)]
pub struct CursorSummary {
    /// Deterministic simulated cluster time — identical to
    /// [`crate::engine::ExecResult::sim_seconds`] for the same plan.
    pub sim_seconds: f64,
    pub stats: ExecStats,
    /// Total rows delivered across all batches.
    pub rows_emitted: u64,
}

enum Msg {
    Batch(Vec<Row>),
    Done(Box<CursorSummary>),
    Fail(OrcaError),
}

/// A streaming result handle; see the module docs.
pub struct Cursor {
    rx: Receiver<Msg>,
    abort: Arc<AbortSignal>,
    produced_all: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    summary: Option<CursorSummary>,
    failed: Option<OrcaError>,
    done: bool,
}

impl Cursor {
    /// Start executing `plan` on a producer thread and return immediately.
    ///
    /// Plan errors (including preflight OOM rejections) surface from
    /// [`Cursor::next_batch`], not from `open`.
    pub fn open(
        db: Arc<Database>,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        opts: CursorOptions,
    ) -> Cursor {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Msg>(CHANNEL_BATCHES);
        let abort = Arc::new(AbortSignal::new());
        let produced_all = Arc::new(AtomicBool::new(false));
        let plan = plan.clone();
        let output_cols = output_cols.to_vec();
        let thread_abort = Arc::clone(&abort);
        let thread_flag = Arc::clone(&produced_all);
        let handle = std::thread::spawn(move || {
            produce(db, plan, output_cols, opts, tx, thread_abort, thread_flag);
        });
        Cursor {
            rx,
            abort,
            produced_all,
            handle: Some(handle),
            summary: None,
            failed: None,
            done: false,
        }
    }

    /// The next batch of projected rows, `None` once exhausted. After
    /// `None`, [`Cursor::summary`] is available.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.done {
            return Ok(None);
        }
        match self.rx.recv() {
            Ok(Msg::Batch(b)) => Ok(Some(b)),
            Ok(Msg::Done(s)) => {
                self.summary = Some(*s);
                self.done = true;
                self.join();
                Ok(None)
            }
            Ok(Msg::Fail(e)) => {
                self.failed = Some(e.clone());
                self.done = true;
                self.join();
                Err(e)
            }
            Err(_) => {
                // Producer hung up without a terminal message: it observed
                // an abort mid-send. Surface the recorded reason.
                let e = self.abort.error();
                self.failed = Some(e.clone());
                self.done = true;
                self.join();
                Err(e)
            }
        }
    }

    /// Whether the producer has emitted its last batch (later batches may
    /// still be queued in the channel). While this is `false`, any batch
    /// the consumer already holds was delivered *before* the rowset was
    /// fully materialized on the producer side.
    pub fn producer_finished(&self) -> bool {
        self.produced_all.load(Ordering::SeqCst)
    }

    /// The final report; `Some` only after [`Cursor::next_batch`] returned
    /// `None`.
    pub fn summary(&self) -> Option<&CursorSummary> {
        self.summary.as_ref()
    }

    /// Cancel the query and discard any undelivered batches. Safe to call
    /// at any point; the producer observes the abort at its next operator
    /// boundary or send attempt.
    pub fn close(&mut self) {
        if !self.done {
            self.abort.abort();
            // Drain so a producer blocked on a full channel unblocks.
            while let Ok(msg) = self.rx.recv() {
                if let Msg::Done(s) = msg {
                    self.summary = Some(*s);
                    break;
                }
            }
            self.done = true;
        }
        self.join();
    }

    /// Drain every remaining batch and return (all rows, final summary) —
    /// the buffering-path contract, for callers that do want the full
    /// rowset.
    pub fn collect(mut self) -> Result<(Vec<Row>, CursorSummary)> {
        let mut rows = Vec::new();
        while let Some(b) = self.next_batch()? {
            rows.extend(b);
        }
        let summary = self
            .summary
            .take()
            .expect("cursor summary present after final batch");
        Ok((rows, summary))
    }

    fn join(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Cursor {
    fn drop(&mut self) {
        // Cancel and reap the producer; the abort guarantees it exits at
        // the next operator boundary or send attempt, and dropping `rx`
        // after this function unblocks any in-flight send.
        if !self.done {
            self.abort.abort();
        }
        self.join();
    }
}

/// Producer-side body: run the plan, then stream the projection.
fn produce(
    db: Arc<Database>,
    plan: PhysicalPlan,
    output_cols: Vec<ColId>,
    opts: CursorOptions,
    tx: SyncSender<Msg>,
    abort: Arc<AbortSignal>,
    produced_all: Arc<AtomicBool>,
) {
    let result = run_plan(&db, &plan, &output_cols, &opts, &abort, &tx, &produced_all);
    if let Err(e) = result {
        // Best-effort: the consumer may already be gone.
        let _ = send(&tx, &abort, Msg::Fail(e));
    }
}

fn run_plan(
    db: &Database,
    plan: &PhysicalPlan,
    output_cols: &[ColId],
    opts: &CursorOptions,
    abort: &Arc<AbortSignal>,
    tx: &SyncSender<Msg>,
    produced_all: &AtomicBool,
) -> Result<()> {
    // Same preflight rule as `ExecEngine`: reject provably-oversized
    // plans up front when the cluster cannot spill.
    if !db.cluster.can_spill {
        let budget = opts
            .mem
            .as_ref()
            .map(|m| m.operator_budget(db.cluster.work_mem_bytes))
            .unwrap_or(db.cluster.work_mem_bytes);
        crate::memory::preflight(plan, db, budget)?;
    }
    let mut ctx = ExecCtx::new(db);
    ctx.abort = Some(Arc::clone(abort));
    if let Some(m) = &opts.mem {
        ctx.mem = Arc::clone(m);
    }
    let batch_rows = if opts.batch_rows == 0 {
        db.cluster.batch_size.max(1)
    } else {
        opts.batch_rows
    };
    let mut emitter = Emitter {
        tx,
        abort,
        batch_rows,
        chunk: Vec::new(),
        rows_emitted: 0,
    };
    let sim_seconds;
    if opts.columnar {
        ctx.frag = opts.fragments.clone();
        ctx.pool = Some(Arc::new(crate::parallel::BatchPool::new()));
        let stream = cexec(plan, &mut ctx)?;
        sim_seconds = stream.elapsed();
        let positions = key_positions(&stream.layout, output_cols)?;
        let slots = if stream.replicated {
            &stream.per_seg[..1]
        } else {
            &stream.per_seg[..]
        };
        for batches in slots {
            for b in batches {
                for i in 0..b.len {
                    let row = positions.iter().map(|&p| b.cols[p].get(i)).collect();
                    emitter.push(row)?;
                }
            }
        }
    } else {
        let stream = exec(plan, &mut ctx)?;
        sim_seconds = stream.elapsed();
        let positions = key_positions(&stream.layout, output_cols)?;
        let slots = if stream.replicated {
            &stream.per_seg[..1]
        } else {
            &stream.per_seg[..]
        };
        for rows in slots {
            for row in rows {
                let projected = positions.iter().map(|&p| row[p].clone()).collect();
                emitter.push(projected)?;
            }
        }
    }
    emitter.flush()?;
    let rows_emitted = emitter.rows_emitted;
    // Flag first, then Done: a consumer that received a batch while this
    // is still false got it before full materialization.
    produced_all.store(true, Ordering::SeqCst);
    send(
        tx,
        abort,
        Msg::Done(Box::new(CursorSummary {
            sim_seconds,
            stats: ctx.stats,
            rows_emitted,
        })),
    )?;
    Ok(())
}

/// Accumulates projected rows into `batch_rows`-sized chunks and sends
/// each full chunk downstream.
struct Emitter<'a> {
    tx: &'a SyncSender<Msg>,
    abort: &'a AbortSignal,
    batch_rows: usize,
    chunk: Vec<Row>,
    rows_emitted: u64,
}

impl Emitter<'_> {
    fn push(&mut self, row: Row) -> Result<()> {
        self.chunk.push(row);
        if self.chunk.len() >= self.batch_rows {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        self.rows_emitted += self.chunk.len() as u64;
        let batch = std::mem::take(&mut self.chunk);
        send(self.tx, self.abort, Msg::Batch(batch))
    }
}

/// Bounded send that stays responsive to cancellation: poll the abort
/// flag while the channel is full instead of blocking indefinitely.
fn send(tx: &SyncSender<Msg>, abort: &AbortSignal, msg: Msg) -> Result<()> {
    let mut msg = msg;
    loop {
        abort.check()?;
        match tx.try_send(msg) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(m)) => {
                msg = m;
                std::thread::sleep(POLL);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Consumer dropped the cursor; treat as cancellation.
                return Err(OrcaError::Aborted("cursor closed".into()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecEngine;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, Datum, MdId, SysId};
    use orca_expr::logical::TableRef;
    use orca_expr::physical::{MotionKind, PhysicalOp};

    fn db() -> (Database, TableRef) {
        let mut db = Database::new(orca_common::SegmentConfig::default().with_segments(4));
        let t = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t1",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let rows: Vec<Row> = (0..200)
            .map(|i| vec![Datum::Int(i), Datum::Int(i % 20)])
            .collect();
        db.load_table(t.clone(), rows).unwrap();
        (db, TableRef(t))
    }

    fn gather_scan(t: &TableRef) -> PhysicalPlan {
        PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![PhysicalPlan::leaf(PhysicalOp::TableScan {
                table: t.clone(),
                cols: vec![ColId(0), ColId(1)],
                parts: None,
            })],
        )
    }

    /// Streamed rows, order, sim time, and stats equal the buffering path
    /// in both kernels.
    #[test]
    fn cursor_matches_buffered_run() {
        let (db, t) = db();
        let plan = gather_scan(&t);
        let cols = [ColId(0), ColId(1)];
        let expect = ExecEngine::new(&db).run(&plan, &cols).unwrap();
        let shared = Arc::new(db);
        for columnar in [false, true] {
            let cursor = Cursor::open(
                Arc::clone(&shared),
                &plan,
                &cols,
                CursorOptions {
                    columnar,
                    ..CursorOptions::default()
                },
            );
            let (rows, summary) = cursor.collect().unwrap();
            assert_eq!(rows, expect.rows);
            assert_eq!(
                summary.sim_seconds.to_bits(),
                expect.sim_seconds.to_bits(),
                "columnar={columnar}"
            );
            assert_eq!(summary.rows_emitted, expect.rows.len() as u64);
            assert_eq!(summary.stats.rows_processed, expect.stats.rows_processed);
        }
    }

    /// The first batch arrives while the producer still has batches to
    /// emit — the cursor does not buffer the whole rowset first.
    #[test]
    fn first_batch_before_full_materialization() {
        let (db, t) = db();
        let plan = gather_scan(&t);
        let mut cursor = Cursor::open(
            Arc::new(db),
            &plan,
            &[ColId(0)],
            CursorOptions {
                batch_rows: 8, // 200 rows -> 25 batches >> channel bound
                ..CursorOptions::default()
            },
        );
        let first = cursor.next_batch().unwrap().expect("first batch");
        assert_eq!(first.len(), 8);
        // With 25 batches and a channel bound of 2, the producer cannot
        // have finished when the first batch is consumed.
        assert!(!cursor.producer_finished());
        let (rest, summary) = cursor.collect().unwrap();
        assert_eq!(first.len() + rest.len(), 200);
        assert_eq!(summary.rows_emitted, 200);
    }

    /// Early close cancels the producer without deadlock and without
    /// draining the full result.
    #[test]
    fn close_cancels_producer() {
        let (db, t) = db();
        let plan = gather_scan(&t);
        let mut cursor = Cursor::open(
            Arc::new(db),
            &plan,
            &[ColId(0)],
            CursorOptions {
                batch_rows: 4,
                ..CursorOptions::default()
            },
        );
        let _ = cursor.next_batch().unwrap().expect("first batch");
        cursor.close(); // joins the producer; must not hang
        assert!(cursor.next_batch().unwrap().is_none());
    }

    /// Preflight OOM surfaces from `next_batch` as a typed error.
    #[test]
    fn preflight_oom_surfaces_typed() {
        let (mut db, t) = db();
        db.cluster.work_mem_bytes = 16;
        db.cluster.can_spill = false;
        let plan = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind: orca_expr::JoinKind::Inner,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(2)],
                    residual: None,
                },
                vec![
                    PhysicalPlan::leaf(PhysicalOp::TableScan {
                        table: t.clone(),
                        cols: vec![ColId(0), ColId(1)],
                        parts: None,
                    }),
                    PhysicalPlan::new(
                        PhysicalOp::Motion {
                            kind: MotionKind::Broadcast,
                        },
                        vec![PhysicalPlan::leaf(PhysicalOp::TableScan {
                            table: t.clone(),
                            cols: vec![ColId(2), ColId(3)],
                            parts: None,
                        })],
                    ),
                ],
            )],
        );
        let mut cursor = Cursor::open(Arc::new(db), &plan, &[ColId(0)], CursorOptions::default());
        let err = cursor.next_batch().unwrap_err();
        assert_eq!(err.kind(), "oom", "{err}");
    }
}
