//! Public execution entry point.

use crate::columnar::{cexec, ColStream};
use crate::exec::{exec, ExecCtx, StreamSet};
use crate::storage::{Database, Row};
use orca_common::{ColId, OrcaError, Result};
use orca_expr::physical::PhysicalPlan;

pub use crate::exec::ExecStats;

/// Result of executing one plan.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Final rows, projected to the requested output columns, in stream
    /// order (sorted iff the plan enforced an order).
    pub rows: Vec<Row>,
    /// Deterministic simulated cluster time (seconds) — max over segments
    /// of per-segment work plus interconnect transfers.
    pub sim_seconds: f64,
    pub stats: ExecStats,
}

/// Executes physical plans against a loaded [`Database`].
pub struct ExecEngine<'a> {
    pub db: &'a Database,
    /// Cross-query fragment cache to attach to every run ([`crate::sharing`]).
    pub fragments: Option<std::sync::Arc<crate::sharing::FragmentCache>>,
    /// Per-query memory grant ([`crate::memory`]); `None` = ungoverned.
    pub mem: Option<std::sync::Arc<crate::memory::MemoryTracker>>,
}

impl<'a> ExecEngine<'a> {
    pub fn new(db: &'a Database) -> ExecEngine<'a> {
        ExecEngine {
            db,
            fragments: None,
            mem: None,
        }
    }

    /// Attach a shared fragment cache; subsequent columnar runs probe and
    /// publish scan fragments through it.
    pub fn with_fragments(
        mut self,
        fragments: std::sync::Arc<crate::sharing::FragmentCache>,
    ) -> ExecEngine<'a> {
        self.fragments = Some(fragments);
        self
    }

    /// Attach a per-query memory grant; operators reserve state against
    /// it and spill when they exceed `min(work_mem, per-segment grant)`.
    pub fn with_memory(
        mut self,
        mem: std::sync::Arc<crate::memory::MemoryTracker>,
    ) -> ExecEngine<'a> {
        self.mem = Some(mem);
        self
    }

    /// When the engine cannot spill, reject provably-oversized plans
    /// *before* running anything ([`crate::memory::preflight`]).
    fn preflight(&self, plan: &PhysicalPlan) -> Result<()> {
        if self.db.cluster.can_spill {
            return Ok(());
        }
        let budget = self
            .mem
            .as_ref()
            .map(|m| m.operator_budget(self.db.cluster.work_mem_bytes))
            .unwrap_or(self.db.cluster.work_mem_bytes);
        crate::memory::preflight(plan, self.db, budget)
    }

    fn ctx(&self) -> ExecCtx<'a> {
        let mut ctx = ExecCtx::new(self.db);
        if let Some(m) = &self.mem {
            ctx.mem = std::sync::Arc::clone(m);
        }
        ctx
    }

    /// Run a plan and project its output to `output_cols` (in order).
    pub fn run(&self, plan: &PhysicalPlan, output_cols: &[ColId]) -> Result<ExecResult> {
        self.preflight(plan)?;
        let mut ctx = self.ctx();
        let stream = exec(plan, &mut ctx)?;
        let rows = project_output(&stream, output_cols)?;
        Ok(ExecResult {
            rows,
            sim_seconds: stream.elapsed(),
            stats: ctx.stats,
        })
    }

    /// Like [`ExecEngine::run`] but through the vectorized batch kernel
    /// ([`crate::columnar`]): identical rows, order, simulated time and
    /// counters — less per-row interpretation.
    pub fn run_columnar(&self, plan: &PhysicalPlan, output_cols: &[ColId]) -> Result<ExecResult> {
        self.preflight(plan)?;
        let mut ctx = self.ctx();
        ctx.frag = self.fragments.clone();
        // Sliced scans draw batch shells from a run-local pool instead
        // of fresh allocations.
        ctx.pool = Some(std::sync::Arc::new(crate::parallel::BatchPool::new()));
        let stream = cexec(plan, &mut ctx)?;
        let rows = project_output_col(&stream, output_cols)?;
        Ok(ExecResult {
            rows,
            sim_seconds: stream.elapsed(),
            stats: ctx.stats,
        })
    }
}

pub(crate) fn project_output_col(stream: &ColStream, output_cols: &[ColId]) -> Result<Vec<Row>> {
    let positions: Vec<usize> = output_cols
        .iter()
        .map(|c| {
            stream.layout.iter().position(|x| x == c).ok_or_else(|| {
                OrcaError::Execution(format!("output column {c} missing from plan output"))
            })
        })
        .collect::<Result<_>>()?;
    let slots: &[Vec<crate::columnar::ColumnBatch>] = if stream.replicated {
        &stream.per_seg[..1]
    } else {
        &stream.per_seg[..]
    };
    let mut out = Vec::new();
    for batches in slots {
        for b in batches {
            for i in 0..b.len {
                out.push(positions.iter().map(|&p| b.cols[p].get(i)).collect());
            }
        }
    }
    Ok(out)
}

pub(crate) fn project_output(stream: &StreamSet, output_cols: &[ColId]) -> Result<Vec<Row>> {
    let positions: Vec<usize> = output_cols
        .iter()
        .map(|c| {
            stream.layout.iter().position(|x| x == c).ok_or_else(|| {
                OrcaError::Execution(format!("output column {c} missing from plan output"))
            })
        })
        .collect::<Result<_>>()?;
    Ok(stream
        .gathered()
        .iter()
        .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
        .collect())
}

/// Canonicalize rows for order-insensitive comparison in tests: sort by a
/// total order over all columns.
pub fn sort_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}
