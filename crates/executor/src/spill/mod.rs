//! Spill-to-disk machinery: columnar chunk serialization, Grace-style
//! recursive partitioning, and the row-level spill algorithms shared by
//! the row and columnar kernels.
//!
//! Operators that exceed their memory grant partition state into a
//! per-operator temporary file. Chunks are serialized in the
//! [`ColumnBatch`] wire shape — typed column vectors with null bitmaps,
//! dictionary columns kept encoded (codes + dictionary) rather than
//! materialized — so spilled state round-trips through the same layout
//! the vectorized kernel computes on.
//!
//! **Determinism contract.** Both kernels call the *same* helpers here
//! with the same row streams, so partition routing, spill chunk bytes,
//! and result order are identical by construction:
//!
//! * hash join — build side is partitioned (stable) and re-read one
//!   partition at a time; probe results are collected per original
//!   probe index, so concatenating them reproduces the in-memory
//!   probe-order output byte-for-byte (candidate lists within one
//!   partition preserve global build order, which fixes `LeftSemi`
//!   first-match and `LeftOuter` null-extension decisions).
//! * hash aggregate — input is partitioned by group-key hash with the
//!   global input index riding along as an extra column; every group
//!   lives wholly in one partition, so sorting the collected groups by
//!   first-seen input index restores the in-memory emission order.
//! * external merge sort — consecutive input runs are stable-sorted,
//!   spilled, and k-way merged with ties breaking toward the lowest run
//!   index: exactly a stable sort of the concatenation
//!   ([`crate::merge`]'s documented contract).
//!
//! Skewed partitions (bytes still over budget) are recursively
//! repartitioned with a per-depth hash salt, up to [`MAX_DEPTH`] levels;
//! a partition of one giant duplicate key stops splitting (same hash at
//! every depth) and is processed over-budget — recorded in
//! `peak_mem_bytes` rather than hidden.

use crate::columnar::ColumnBatch;
use crate::eval::{accepts, compare_rows, AggAccumulator, Env};
use crate::merge::{kway_merge, RowSource};
use crate::storage::Row;
use orca_common::hash::{FnvHashMap, FnvHasher};
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::logical::JoinKind;
use orca_expr::props::OrderSpec;
use orca_expr::scalar::ScalarExpr;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{Read as IoRead, Seek, SeekFrom, Write as IoWrite};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// The columnar chunk codec lived here until the wire format needed it
// too; it is now the shared `crate::codec`. Re-exported so spill-side
// callers keep their historical path.
pub use crate::codec::{decode_batch, encode_batch};

/// Recursive repartitioning depth cap (initial pass + 3 rescues).
pub const MAX_DEPTH: u32 = 3;

/// Partition fanout ceiling per level.
const MAX_FANOUT: usize = 64;

/// Per-depth hash salts decorrelating successive partition levels.
const SALTS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
];

/// Counters one spilling operator instance accumulates; folded into
/// [`crate::exec::ExecStats`] by the calling kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillMetrics {
    /// Leaf partitions / sort runs written.
    pub partitions: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    /// Largest operator state resident at once (bytes): the biggest
    /// partition re-read for processing, or the biggest sort run.
    pub peak_state_bytes: u64,
}

impl SpillMetrics {
    fn absorb_io(&mut self, file: &SpillFile) {
        self.bytes_written = file.bytes_written;
        self.bytes_read = file.bytes_read.get();
    }
}

/// Logical width of one row (the same `Datum::width` sum both kernels
/// use for every memory trigger).
pub fn row_bytes(r: &Row) -> u64 {
    r.iter().map(Datum::width).sum()
}

/// FNV-1a over the key datums of `row` (no slice-length prefix, so the
/// stream matches per-position hashing). Returns the hash and whether
/// any key datum is NULL.
pub fn row_key_hash(row: &Row, positions: &[usize]) -> (u64, bool) {
    let mut h = FnvHasher::default();
    let mut has_null = false;
    for &p in positions {
        let d = &row[p];
        has_null |= d.is_null();
        d.hash(&mut h);
    }
    (h.finish(), has_null)
}

/// Partition index of hash `h` at recursion `depth` with `fanout` ways.
/// Each depth applies a distinct salt so a partition that needs rescue
/// splits on fresh bits instead of re-creating itself.
pub fn partition_of(h: u64, depth: u32, fanout: usize) -> usize {
    let salted = (h ^ SALTS[depth as usize % SALTS.len()]).wrapping_mul(0x100_0000_01b3);
    (salted >> 32) as usize % fanout.max(1)
}

/// Initial fanout targeting leaves of roughly half the budget.
fn fanout_for(bytes: u64, budget: u64) -> usize {
    let want = (2 * bytes).div_ceil(budget.max(1)) as usize;
    want.next_power_of_two().clamp(2, MAX_FANOUT)
}

fn io_err(what: &str, e: std::io::Error) -> OrcaError {
    OrcaError::Execution(format!("spill {what}: {e}"))
}

/// Location of one serialized chunk inside a spill file.
#[derive(Debug, Clone, Copy)]
pub struct Chunk {
    pub offset: u64,
    pub len: u32,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// One operator instance's temporary spill file. Unlinked on drop.
#[derive(Debug)]
pub struct SpillFile {
    file: File,
    path: PathBuf,
    write_off: u64,
    bytes_written: u64,
    bytes_read: std::cell::Cell<u64>,
}

impl SpillFile {
    pub fn create() -> Result<SpillFile> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("orca-spill-{}-{}.tmp", std::process::id(), seq));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        Ok(SpillFile {
            file,
            path,
            write_off: 0,
            bytes_written: 0,
            bytes_read: std::cell::Cell::new(0),
        })
    }

    /// Append one serialized batch; returns where it landed.
    pub fn write_batch(&mut self, batch: &ColumnBatch) -> Result<Chunk> {
        let buf = encode_batch(batch);
        self.file
            .seek(SeekFrom::Start(self.write_off))
            .and_then(|_| self.file.write_all(&buf))
            .map_err(|e| io_err("write", e))?;
        let chunk = Chunk {
            offset: self.write_off,
            len: buf.len() as u32,
        };
        self.write_off += buf.len() as u64;
        self.bytes_written += buf.len() as u64;
        Ok(chunk)
    }

    pub fn read_batch(&mut self, chunk: &Chunk) -> Result<ColumnBatch> {
        let mut buf = vec![0u8; chunk.len as usize];
        self.file
            .seek(SeekFrom::Start(chunk.offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| io_err("read", e))?;
        self.bytes_read
            .set(self.bytes_read.get() + buf.len() as u64);
        decode_batch(&buf)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------
// Recursive Grace partitioning.
// ---------------------------------------------------------------------

/// One leaf partition: serialized chunks plus its resident footprint.
struct Leaf {
    chunks: Vec<Chunk>,
    rows: usize,
    bytes: u64,
}

/// Routing trie from hash to leaf index: one level per rescue depth.
enum Route {
    Leaf(usize),
    Split { depth: u32, children: Vec<Route> },
}

impl Route {
    fn leaf_of(&self, h: u64) -> usize {
        match self {
            Route::Leaf(i) => *i,
            Route::Split { depth, children } => {
                children[partition_of(h, *depth, children.len())].leaf_of(h)
            }
        }
    }
}

/// Partition `(hash, row)` pairs into spill-file leaves, recursively
/// rescuing any partition still over `budget` (up to [`MAX_DEPTH`]).
struct PartitionSet {
    file: SpillFile,
    leaves: Vec<Leaf>,
    route: Route,
    width: usize,
    batch_rows: usize,
}

impl PartitionSet {
    fn build(
        rows: Vec<(u64, Row)>,
        width: usize,
        total_bytes: u64,
        budget: u64,
        batch_rows: usize,
    ) -> Result<PartitionSet> {
        let mut set = PartitionSet {
            file: SpillFile::create()?,
            leaves: Vec::new(),
            route: Route::Leaf(0),
            width,
            batch_rows,
        };
        set.route = set.split(rows, total_bytes, budget, 0)?;
        Ok(set)
    }

    fn split(
        &mut self,
        rows: Vec<(u64, Row)>,
        total_bytes: u64,
        budget: u64,
        depth: u32,
    ) -> Result<Route> {
        let fanout = fanout_for(total_bytes, budget);
        let mut parts: Vec<Vec<(u64, Row)>> = (0..fanout).map(|_| Vec::new()).collect();
        let mut part_bytes = vec![0u64; fanout];
        for (h, row) in rows {
            let p = partition_of(h, depth, fanout);
            part_bytes[p] += row_bytes(&row);
            parts[p].push((h, row));
        }
        let mut children = Vec::with_capacity(fanout);
        for (p, part) in parts.into_iter().enumerate() {
            if part_bytes[p] > budget && depth < MAX_DEPTH {
                children.push(self.split(part, part_bytes[p], budget, depth + 1)?);
            } else {
                children.push(Route::Leaf(self.write_leaf(part, part_bytes[p])?));
            }
        }
        Ok(Route::Split { depth, children })
    }

    fn write_leaf(&mut self, part: Vec<(u64, Row)>, bytes: u64) -> Result<usize> {
        let rows: Vec<Row> = part.into_iter().map(|(_, r)| r).collect();
        let mut chunks = Vec::new();
        for chunk_rows in rows.chunks(self.batch_rows.max(1)) {
            let b = ColumnBatch::from_rows(chunk_rows, self.width);
            chunks.push(self.file.write_batch(&b)?);
        }
        self.leaves.push(Leaf {
            chunks,
            rows: rows.len(),
            bytes,
        });
        Ok(self.leaves.len() - 1)
    }

    /// Non-empty leaves, i.e. real spill partitions.
    fn occupied(&self) -> u64 {
        self.leaves.iter().filter(|l| l.rows > 0).count() as u64
    }

    /// Read one leaf back into rows (original relative order).
    fn read_leaf(&mut self, leaf: usize) -> Result<Vec<Row>> {
        let chunks = self.leaves[leaf].chunks.clone();
        let mut rows = Vec::with_capacity(self.leaves[leaf].rows);
        for c in &chunks {
            let b = self.file.read_batch(c)?;
            for i in 0..b.len {
                rows.push(b.row(i));
            }
        }
        Ok(rows)
    }
}

// ---------------------------------------------------------------------
// Spilling operators (shared row-level implementations).
// ---------------------------------------------------------------------

/// Grace hash join: spill-partitioned build side, per-partition probe.
/// Returns the emitted rows *per probe index*; concatenating them in
/// probe order is byte-identical to the in-memory join's output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grace_hash_join(
    build: &[Row],
    probe: &[Row],
    lpos: &[usize],
    rpos: &[usize],
    kind: JoinKind,
    residual: Option<&ScalarExpr>,
    combined_layout: &[ColId],
    right_width: usize,
    env: &Env,
    budget: u64,
    batch_rows: usize,
) -> Result<(Vec<Vec<Row>>, SpillMetrics)> {
    let mut tagged: Vec<(u64, Row)> = Vec::with_capacity(build.len());
    let mut build_bytes = 0u64;
    for row in build {
        let (h, has_null) = row_key_hash(row, rpos);
        if has_null {
            continue; // NULL keys never join; don't spill them.
        }
        build_bytes += row_bytes(row);
        tagged.push((h, row.clone()));
    }
    let mut set = PartitionSet::build(tagged, right_width, build_bytes, budget, batch_rows)?;
    let mut metrics = SpillMetrics {
        partitions: set.occupied().max(1),
        ..SpillMetrics::default()
    };

    // Route probe rows to leaves; NULL-key probes short-circuit.
    let mut per_probe: Vec<Vec<Row>> = vec![Vec::new(); probe.len()];
    let mut probes_for: Vec<Vec<u32>> = (0..set.leaves.len()).map(|_| Vec::new()).collect();
    for (i, lrow) in probe.iter().enumerate() {
        let (h, has_null) = row_key_hash(lrow, lpos);
        if has_null {
            unmatched_output(&mut per_probe[i], lrow, kind, right_width);
        } else {
            probes_for[set.route.leaf_of(h)].push(i as u32);
        }
    }

    for (leaf, probes) in probes_for.iter().enumerate() {
        if probes.is_empty() && set.leaves[leaf].rows == 0 {
            continue;
        }
        let rows = set.read_leaf(leaf)?;
        metrics.peak_state_bytes = metrics.peak_state_bytes.max(set.leaves[leaf].bytes);
        // Rebuild the in-memory table for this partition only; candidate
        // lists keep build order (stable partitioning ⇒ same relative
        // order the unspilled table would have produced).
        let mut table: FnvHashMap<Vec<Datum>, Vec<usize>> = FnvHashMap::default();
        let mut scratch: Vec<Datum> = Vec::with_capacity(rpos.len());
        for (i, row) in rows.iter().enumerate() {
            scratch.clear();
            scratch.extend(rpos.iter().map(|&p| row[p].clone()));
            match table.get_mut(scratch.as_slice()) {
                Some(v) => v.push(i),
                None => {
                    table.insert(scratch.clone(), vec![i]);
                }
            }
        }
        for &pi in probes {
            let lrow = &probe[pi as usize];
            scratch.clear();
            scratch.extend(lpos.iter().map(|&p| lrow[p].clone()));
            let candidates: &[usize] = table
                .get(scratch.as_slice())
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            let out = &mut per_probe[pi as usize];
            let mut matched = false;
            for &ri in candidates {
                let rrow = &rows[ri];
                let joined: Row = lrow.iter().chain(rrow.iter()).cloned().collect();
                let ok = match residual {
                    Some(res) => accepts(res, combined_layout, &joined, env)?,
                    None => true,
                };
                if !ok {
                    continue;
                }
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => out.push(joined),
                    JoinKind::LeftSemi => {
                        out.push(lrow.clone());
                        break;
                    }
                    JoinKind::LeftAntiSemi => break,
                }
            }
            if !matched {
                unmatched_output(out, lrow, kind, right_width);
            }
        }
    }
    metrics.absorb_io(&set.file);
    Ok((per_probe, metrics))
}

fn unmatched_output(out: &mut Vec<Row>, lrow: &Row, kind: JoinKind, right_width: usize) {
    match kind {
        JoinKind::LeftOuter => {
            let mut joined = lrow.clone();
            joined.extend(vec![Datum::Null; right_width]);
            out.push(joined);
        }
        JoinKind::LeftAntiSemi => out.push(lrow.clone()),
        _ => {}
    }
}

/// Grace hash aggregate: input rows are partitioned by group-key hash
/// (the global input index rides along as a trailing `Int` column), each
/// partition is aggregated independently, and the collected groups are
/// re-ordered by first-seen input index — the in-memory emission order.
/// Grace-agg output: the merged (group key, accumulators) pairs plus the
/// spill metrics of the partitioning passes.
type GraceAggResult = Result<(Vec<(Vec<Datum>, Vec<AggAccumulator>)>, SpillMetrics)>;

pub(crate) fn grace_hash_agg(
    input: &[Row],
    gpos: &[usize],
    aggs: &[(ColId, ScalarExpr)],
    layout: &[ColId],
    env: &Env,
    budget: u64,
    batch_rows: usize,
) -> GraceAggResult {
    let width = layout.len() + 1; // + global index column
    let mut tagged: Vec<(u64, Row)> = Vec::with_capacity(input.len());
    let mut total = 0u64;
    for (i, row) in input.iter().enumerate() {
        // NULL group keys hash like any other value (NULL == NULL groups).
        let (h, _) = row_key_hash(row, gpos);
        let mut r = row.clone();
        r.push(Datum::Int(i as i64));
        total += row_bytes(&r);
        tagged.push((h, r));
    }
    let mut set = PartitionSet::build(tagged, width, total, budget, batch_rows)?;
    let mut metrics = SpillMetrics {
        partitions: set.occupied().max(1),
        ..SpillMetrics::default()
    };

    let mut collected: Vec<(i64, Vec<Datum>, Vec<AggAccumulator>)> = Vec::new();
    for leaf in 0..set.leaves.len() {
        if set.leaves[leaf].rows == 0 {
            continue;
        }
        let rows = set.read_leaf(leaf)?;
        metrics.peak_state_bytes = metrics.peak_state_bytes.max(set.leaves[leaf].bytes);
        let mut groups: FnvHashMap<Vec<Datum>, usize> = FnvHashMap::default();
        let mut local: Vec<(i64, Vec<Datum>, Vec<AggAccumulator>)> = Vec::new();
        let mut scratch: Vec<Datum> = Vec::with_capacity(gpos.len());
        for mut row in rows {
            let Some(Datum::Int(idx)) = row.pop() else {
                return Err(OrcaError::Execution(
                    "spill decode: missing agg index column".into(),
                ));
            };
            scratch.clear();
            scratch.extend(gpos.iter().map(|&p| row[p].clone()));
            let gid = match groups.get(scratch.as_slice()) {
                Some(&g) => g,
                None => {
                    let g = local.len();
                    groups.insert(scratch.clone(), g);
                    local.push((
                        idx,
                        scratch.clone(),
                        aggs.iter()
                            .map(|(_, e)| AggAccumulator::from_expr(e))
                            .collect::<Result<_>>()?,
                    ));
                    g
                }
            };
            for acc in local[gid].2.iter_mut() {
                acc.update(layout, &row, env)?;
            }
        }
        collected.extend(local);
    }
    // Restore the global first-seen order. Each group lives wholly in one
    // partition, so its first row there is its global first occurrence.
    collected.sort_by_key(|(first, _, _)| *first);
    metrics.absorb_io(&set.file);
    Ok((
        collected.into_iter().map(|(_, k, a)| (k, a)).collect(),
        metrics,
    ))
}

/// A [`RowSource`] over one spilled sort run: decodes one chunk at a
/// time, so a k-way merge holds at most k chunks resident. The merge
/// needs k sources reading one file; they share the handle through an
/// `Rc<RefCell<..>>` (the merge is single-threaded).
struct SharedRunSource {
    file: std::rc::Rc<std::cell::RefCell<SpillFile>>,
    chunks: std::vec::IntoIter<Chunk>,
    current: std::vec::IntoIter<Row>,
}

impl RowSource for SharedRunSource {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(r) = self.current.next() {
                return Ok(Some(r));
            }
            let Some(c) = self.chunks.next() else {
                return Ok(None);
            };
            let b = self.file.borrow_mut().read_batch(&c)?;
            let rows: Vec<Row> = (0..b.len).map(|i| b.row(i)).collect();
            self.current = rows.into_iter();
        }
    }
}

/// External merge sort: consecutive runs of at most `budget` bytes are
/// stable-sorted, spilled, and k-way merged (ties toward the lowest run
/// index ⇒ byte-identical to a stable sort of the whole input).
pub(crate) fn external_sort(
    rows: Vec<Row>,
    order: &OrderSpec,
    layout: &[ColId],
    budget: u64,
    batch_rows: usize,
) -> Result<(Vec<Row>, SpillMetrics)> {
    let width = layout.len();
    let file = std::rc::Rc::new(std::cell::RefCell::new(SpillFile::create()?));
    let mut runs: Vec<Vec<Chunk>> = Vec::new();
    let mut metrics = SpillMetrics::default();
    let mut run: Vec<Row> = Vec::new();
    let mut run_sz = 0u64;
    let flush = |run: &mut Vec<Row>,
                 run_sz: &mut u64,
                 runs: &mut Vec<Vec<Chunk>>,
                 metrics: &mut SpillMetrics|
     -> Result<()> {
        if run.is_empty() {
            return Ok(());
        }
        run.sort_by(|a, b| compare_rows(a, b, order, layout));
        let mut chunks = Vec::new();
        for part in run.chunks(batch_rows.max(1)) {
            let b = ColumnBatch::from_rows(part, width);
            chunks.push(file.borrow_mut().write_batch(&b)?);
        }
        metrics.peak_state_bytes = metrics.peak_state_bytes.max(*run_sz);
        runs.push(chunks);
        run.clear();
        *run_sz = 0;
        Ok(())
    };
    for row in rows {
        let rb = row_bytes(&row);
        if !run.is_empty() && run_sz + rb > budget {
            flush(&mut run, &mut run_sz, &mut runs, &mut metrics)?;
        }
        run_sz += rb;
        run.push(row);
    }
    flush(&mut run, &mut run_sz, &mut runs, &mut metrics)?;
    metrics.partitions = runs.len() as u64;
    let sources: Vec<SharedRunSource> = runs
        .into_iter()
        .map(|chunks| SharedRunSource {
            file: std::rc::Rc::clone(&file),
            chunks: chunks.into_iter(),
            current: Vec::new().into_iter(),
        })
        .collect();
    let merged = kway_merge(sources, order, layout)?;
    {
        let f = file.borrow();
        metrics.bytes_written = f.bytes_written;
        metrics.bytes_read = f.bytes_read.get();
    }
    Ok((merged, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(rows: &[Row], width: usize) -> ColumnBatch {
        ColumnBatch::from_rows(rows, width)
    }

    #[test]
    fn spill_file_round_trips_chunks() {
        let mut f = SpillFile::create().unwrap();
        let a = batch_of(&[vec![Datum::Int(1)], vec![Datum::Int(2)]], 1);
        let b = batch_of(&[vec![Datum::Str("q".into())]], 1);
        let ca = f.write_batch(&a).unwrap();
        let cb = f.write_batch(&b).unwrap();
        assert_eq!(
            f.read_batch(&cb).unwrap().row(0),
            vec![Datum::Str("q".into())]
        );
        assert_eq!(f.read_batch(&ca).unwrap().row(1), vec![Datum::Int(2)]);
        assert!(f.bytes_written > 0 && f.bytes_read.get() > 0);
    }

    #[test]
    fn external_sort_is_stable_sort_of_input() {
        let order = OrderSpec::by(&[ColId(0)]);
        let layout = vec![ColId(0), ColId(1)];
        let rows: Vec<Row> = (0..200)
            .map(|i| vec![Datum::Int((i * 7) % 13), Datum::Int(i)])
            .collect();
        let mut expected = rows.clone();
        expected.sort_by(|a, b| compare_rows(a, b, &order, &layout));
        // 64-byte budget forces many tiny runs.
        let (got, m) = external_sort(rows, &order, &layout, 64, 8).unwrap();
        assert_eq!(got, expected);
        assert!(m.partitions > 1);
        assert!(m.bytes_written > 0);
        assert_eq!(m.bytes_read, m.bytes_written);
        assert!(m.peak_state_bytes <= 64);
    }

    #[test]
    fn grace_agg_preserves_first_seen_order() {
        let layout = vec![ColId(0), ColId(1)];
        let env = Env::default();
        let aggs = vec![(
            ColId(2),
            ScalarExpr::Agg {
                func: orca_expr::scalar::AggFunc::Sum,
                arg: Some(Box::new(ScalarExpr::ColRef(ColId(1)))),
                distinct: false,
            },
        )];
        let input: Vec<Row> = (0..100)
            .map(|i| vec![Datum::Int((i * 11) % 7), Datum::Int(i)])
            .collect();
        let (groups, m) = grace_hash_agg(&input, &[0], &aggs, &layout, &env, 48, 4).unwrap();
        assert!(m.partitions > 1);
        // First-seen order of (i*11)%7 for i=0..: 0,4,1,5,2,6,3
        let keys: Vec<i64> = groups.iter().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![0, 4, 1, 5, 2, 6, 3]);
        let total: i64 = groups
            .iter()
            .map(|(_, a)| match a[0].finish() {
                Datum::Int(v) => v,
                d => panic!("unexpected {d:?}"),
            })
            .sum();
        assert_eq!(total, (0..100).sum::<i64>());
    }
}
