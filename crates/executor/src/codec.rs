//! Self-delimiting columnar batch codec shared by the spill files and
//! the network wire format (little-endian, self-describing per column).
//!
//! One encoder/decoder serves both consumers: a [`ColumnBatch`] is
//! serialized as `nrows`, `ncols`, then each column tagged with its
//! representation. Dictionary columns stay encoded (dictionary page +
//! u32 codes), so encoded string columns cross the wire — or land on
//! disk — without being decoded first. The layout is self-delimiting:
//! a decoder consuming a well-formed buffer stops exactly at its end,
//! which is what lets spill chunks sit back-to-back in one file and
//! wire frames carry a batch as an opaque payload.

use crate::columnar::{BitVec, Buf, Column, ColumnBatch};
use orca_common::{Datum, OrcaError, Result};

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a null bitmap: presence byte, then packed 64-bit words.
pub fn put_nulls(out: &mut Vec<u8>, nulls: &Option<BitVec>, len: usize) {
    match nulls {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            let mut word = 0u64;
            for i in 0..len {
                if b.get(i) {
                    word |= 1 << (i % 64);
                }
                if i % 64 == 63 {
                    put_u64(out, word);
                    word = 0;
                }
            }
            if !len.is_multiple_of(64) {
                put_u64(out, word);
            }
        }
    }
}

/// Bounds-checked reader over an in-memory buffer. Every read reports
/// truncation as a typed error instead of panicking, so a torn frame or
/// a short spill chunk surfaces as [`OrcaError::Execution`].
pub struct Cursor<'a> {
    pub buf: &'a [u8],
    pub pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(OrcaError::Execution("batch decode: truncated chunk".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| OrcaError::Execution("batch decode: invalid utf8".into()))
    }

    pub fn nulls(&mut self, len: usize) -> Result<Option<BitVec>> {
        if self.u8()? == 0 {
            return Ok(None);
        }
        let mut bits = BitVec::new();
        let mut w = 0u64;
        for i in 0..len {
            if i % 64 == 0 {
                w = self.u64()?;
            }
            bits.push((w >> (i % 64)) & 1 == 1);
        }
        Ok(Some(bits))
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DATE: u8 = 5;
const TAG_DICT: u8 = 6;
const TAG_MIXED: u8 = 7;

/// Append one tagged datum (used by `Column::Mixed`).
pub fn encode_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(TAG_NULL),
        Datum::Int(v) => {
            out.push(TAG_INT);
            put_u64(out, *v as u64);
        }
        Datum::Double(v) => {
            out.push(TAG_DOUBLE);
            put_u64(out, v.to_bits());
        }
        Datum::Bool(v) => {
            out.push(TAG_BOOL);
            out.push(*v as u8);
        }
        Datum::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Datum::Date(v) => {
            out.push(TAG_DATE);
            put_u32(out, *v as u32);
        }
    }
}

/// Decode one tagged datum.
pub fn decode_datum(c: &mut Cursor<'_>) -> Result<Datum> {
    Ok(match c.u8()? {
        TAG_NULL => Datum::Null,
        TAG_INT => Datum::Int(c.u64()? as i64),
        TAG_DOUBLE => Datum::Double(f64::from_bits(c.u64()?)),
        TAG_BOOL => Datum::Bool(c.u8()? != 0),
        TAG_STR => Datum::Str(c.str()?),
        TAG_DATE => Datum::Date(c.u32()? as i32),
        t => {
            return Err(OrcaError::Execution(format!(
                "batch decode: bad datum tag {t}"
            )))
        }
    })
}

/// Serialize one batch: `nrows`, `ncols`, then each column tagged with
/// its representation. Dictionary columns stay encoded (dictionary +
/// codes), so a dictionary-bearing chunk costs its encoded size, not
/// its decoded one.
pub fn encode_batch(b: &ColumnBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + b.len * b.cols.len() * 8);
    encode_batch_into(&mut out, b);
    out
}

/// Serialize one batch, appending to an existing buffer (the wire path
/// writes the frame header first and the batch body after it).
pub fn encode_batch_into(out: &mut Vec<u8>, b: &ColumnBatch) {
    put_u32(out, b.len as u32);
    put_u32(out, b.cols.len() as u32);
    for col in &b.cols {
        match col {
            Column::Null(_) => out.push(TAG_NULL),
            Column::Int { vals, nulls } => {
                out.push(TAG_INT);
                put_nulls(out, nulls, vals.len());
                for v in vals.iter() {
                    put_u64(out, *v as u64);
                }
            }
            Column::Double { vals, nulls } => {
                out.push(TAG_DOUBLE);
                put_nulls(out, nulls, vals.len());
                for v in vals.iter() {
                    put_u64(out, v.to_bits());
                }
            }
            Column::Bool { vals, nulls } => {
                out.push(TAG_BOOL);
                put_nulls(out, nulls, vals.len());
                out.extend(vals.iter().map(|&v| v as u8));
            }
            Column::Str { vals, nulls } => {
                out.push(TAG_STR);
                put_nulls(out, nulls, vals.len());
                for s in vals.iter() {
                    put_str(out, s);
                }
            }
            Column::Date { vals, nulls } => {
                out.push(TAG_DATE);
                put_nulls(out, nulls, vals.len());
                for v in vals.iter() {
                    put_u32(out, *v as u32);
                }
            }
            Column::Dict { codes, dict, nulls } => {
                out.push(TAG_DICT);
                put_u32(out, dict.len() as u32);
                for s in dict.iter() {
                    put_str(out, s);
                }
                put_nulls(out, nulls, codes.len());
                for c in codes.iter() {
                    put_u32(out, *c);
                }
            }
            Column::Mixed(vals) => {
                out.push(TAG_MIXED);
                for d in vals.iter() {
                    encode_datum(out, d);
                }
            }
        }
    }
}

/// Decode one batch from a buffer produced by [`encode_batch`].
pub fn decode_batch(buf: &[u8]) -> Result<ColumnBatch> {
    let mut c = Cursor::new(buf);
    decode_batch_from(&mut c)
}

/// Decode one batch starting at the cursor's position, leaving the
/// cursor just past it (frames may carry trailing payload).
pub fn decode_batch_from(c: &mut Cursor<'_>) -> Result<ColumnBatch> {
    let nrows = c.u32()? as usize;
    let ncols = c.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col = match c.u8()? {
            TAG_NULL => Column::Null(nrows),
            TAG_INT => {
                let nulls = c.nulls(nrows)?;
                let vals: Vec<i64> = (0..nrows)
                    .map(|_| c.u64().map(|v| v as i64))
                    .collect::<Result<_>>()?;
                Column::Int {
                    vals: Buf::new(vals),
                    nulls,
                }
            }
            TAG_DOUBLE => {
                let nulls = c.nulls(nrows)?;
                let vals: Vec<f64> = (0..nrows)
                    .map(|_| c.u64().map(f64::from_bits))
                    .collect::<Result<_>>()?;
                Column::Double {
                    vals: Buf::new(vals),
                    nulls,
                }
            }
            TAG_BOOL => {
                let nulls = c.nulls(nrows)?;
                let vals: Vec<bool> = (0..nrows)
                    .map(|_| c.u8().map(|v| v != 0))
                    .collect::<Result<_>>()?;
                Column::Bool {
                    vals: Buf::new(vals),
                    nulls,
                }
            }
            TAG_STR => {
                let nulls = c.nulls(nrows)?;
                let vals: Vec<String> = (0..nrows).map(|_| c.str()).collect::<Result<_>>()?;
                Column::Str {
                    vals: Buf::new(vals),
                    nulls,
                }
            }
            TAG_DATE => {
                let nulls = c.nulls(nrows)?;
                let vals: Vec<i32> = (0..nrows)
                    .map(|_| c.u32().map(|v| v as i32))
                    .collect::<Result<_>>()?;
                Column::Date {
                    vals: Buf::new(vals),
                    nulls,
                }
            }
            TAG_DICT => {
                let dict_len = c.u32()? as usize;
                let dict: Vec<String> = (0..dict_len).map(|_| c.str()).collect::<Result<_>>()?;
                let nulls = c.nulls(nrows)?;
                let codes: Vec<u32> = (0..nrows).map(|_| c.u32()).collect::<Result<_>>()?;
                Column::Dict {
                    codes: Buf::new(codes),
                    dict: std::sync::Arc::new(dict),
                    nulls,
                }
            }
            TAG_MIXED => {
                let vals: Vec<Datum> =
                    (0..nrows).map(|_| decode_datum(c)).collect::<Result<_>>()?;
                Column::Mixed(Buf::new(vals))
            }
            t => {
                return Err(OrcaError::Execution(format!(
                    "batch decode: bad column tag {t}"
                )))
            }
        };
        cols.push(col);
    }
    Ok(ColumnBatch { cols, len: nrows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Row;
    use std::sync::Arc;

    #[test]
    fn codec_round_trips_typed_columns() {
        let rows: Vec<Row> = vec![
            vec![
                Datum::Int(1),
                Datum::Str("ab".into()),
                Datum::Double(1.5),
                Datum::Bool(true),
                Datum::Date(19000),
            ],
            vec![
                Datum::Null,
                Datum::Null,
                Datum::Double(-0.0),
                Datum::Null,
                Datum::Date(-5),
            ],
            vec![
                Datum::Int(-7),
                Datum::Str("".into()),
                Datum::Null,
                Datum::Bool(false),
                Datum::Null,
            ],
        ];
        let b = ColumnBatch::from_rows(&rows, 5);
        let back = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(back.len, b.len);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&back.row(i), row, "row {i}");
        }
    }

    #[test]
    fn codec_keeps_dictionary_encoding() {
        let mut nulls = BitVec::new();
        for i in 0..4 {
            nulls.push(i == 2);
        }
        let dict = Column::Dict {
            codes: Buf::new(vec![1, 0, 0, 1]),
            dict: Arc::new(vec!["x".into(), "yy".into()]),
            nulls: Some(nulls),
        };
        let b = ColumnBatch {
            cols: vec![dict],
            len: 4,
        };
        let bytes = encode_batch(&b);
        let back = decode_batch(&bytes).unwrap();
        // Still dictionary-encoded after the round trip, same values.
        assert!(matches!(back.cols[0], Column::Dict { .. }));
        for i in 0..4 {
            assert_eq!(back.cols[0].get(i), b.cols[0].get(i));
        }
        // The wire shape carries codes + dictionary, not decoded strings:
        // 4 codes beat 4 decoded copies of "yy"/"x" for longer columns.
        assert!(bytes.len() < 80);
    }

    #[test]
    fn decoder_reports_truncation_not_panic() {
        let b = ColumnBatch::from_rows(&[vec![Datum::Int(5), Datum::Str("hello".into())]], 2);
        let bytes = encode_batch(&b);
        for cut in 0..bytes.len() {
            let err = decode_batch(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), "execution", "cut at {cut}");
        }
    }

    #[test]
    fn decoder_stops_exactly_at_batch_end() {
        let b = ColumnBatch::from_rows(&[vec![Datum::Int(1)], vec![Datum::Int(2)]], 1);
        let mut bytes = encode_batch(&b);
        let end = bytes.len();
        bytes.extend_from_slice(&[0xde, 0xad]);
        let mut c = Cursor::new(&bytes);
        let back = decode_batch_from(&mut c).unwrap();
        assert_eq!(back.len, 2);
        assert_eq!(c.pos, end);
    }
}
