//! TCP transport for the interconnect: rendezvous server, connecting
//! sender endpoints, and queue-backed receiver endpoints.
//!
//! One TCP connection carries one directed motion edge. The sender
//! connects to the receiver's [`NetServer`], identifies the edge with a
//! handshake frame, and waits for an `Ack` before shipping `Open /
//! Batch* / Eos`. Flow control is credit-based: the receiver grants
//! `capacity` batch credits up front and returns one per batch its
//! consumer actually takes, so at most `capacity` batches are in flight
//! per edge — the same backpressure window as the in-process bounded
//! channels. Aborts, deadlines, and typed failures cross in either
//! direction as `Abort` control frames; a dead peer surfaces as EOF on
//! the next read and becomes a typed [`OrcaError::Net`] within one poll
//! interval — never a hang.

use super::frame::{
    decode_abort, decode_credit, decode_handshake, decode_msg, encode_abort, encode_ack,
    encode_credit, encode_handshake, encode_msg, write_all_abort, EndpointKey, FrameReader,
    FRAME_ABORT, FRAME_ACK, FRAME_CREDIT,
};
use super::{NetConfig, NetMotionCounters, NetShared};
use crate::parallel::interconnect::Msg;
use orca_common::{OrcaError, Result};
use orca_gpos::AbortSignal;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Abort-checking poll interval; mirrors the in-process interconnect.
const POLL: Duration = Duration::from_millis(10);

fn net_err(what: &str, e: std::io::Error) -> OrcaError {
    OrcaError::Net(format!("{what}: {e}"))
}

fn configure(sock: &TcpStream) -> Result<()> {
    sock.set_nodelay(true).map_err(|e| net_err("nodelay", e))?;
    sock.set_read_timeout(Some(POLL))
        .map_err(|e| net_err("read timeout", e))?;
    sock.set_write_timeout(Some(POLL))
        .map_err(|e| net_err("write timeout", e))?;
    Ok(())
}

// ---------------------------------------------------------------------
// Receiver side.
// ---------------------------------------------------------------------

struct RecvState {
    items: VecDeque<Msg>,
    err: Option<OrcaError>,
}

/// Shared state of one inbound edge: the delivered-message queue fed by
/// the connection's reader thread, plus the socket used to return
/// credits to the sender.
struct RecvShared {
    state: Mutex<RecvState>,
    ready: Condvar,
    credit_sock: Mutex<Option<TcpStream>>,
    counters: Arc<NetMotionCounters>,
    shared: Arc<NetShared>,
}

impl RecvShared {
    fn fail(&self, err: OrcaError) {
        let mut st = self.state.lock().unwrap();
        if st.err.is_none() {
            st.err = Some(err);
        }
        drop(st);
        self.ready.notify_all();
    }

    fn push(&self, msg: Msg) {
        self.state.lock().unwrap().items.push_back(msg);
        self.ready.notify_all();
    }
}

/// The receiving end of one remote motion edge; drop-in peer of a
/// crossbeam `Receiver<Msg>` behind the interconnect's receiver surface.
pub struct NetReceiver {
    shared: Arc<RecvShared>,
}

impl NetReceiver {
    /// Pop the next delivered message, returning one flow-control credit
    /// to the sender per consumed batch. Blocks in abort-checking poll
    /// slices; a peer failure surfaces as the typed error the reader
    /// thread recorded.
    pub fn recv(&self, abort: &AbortSignal) -> Result<Msg> {
        loop {
            {
                let mut st = self.shared.state.lock().unwrap();
                if let Some(msg) = st.items.pop_front() {
                    drop(st);
                    if matches!(msg, Msg::Batch(_)) {
                        self.grant_credit(abort)?;
                    }
                    return Ok(msg);
                }
                if let Some(e) = st.err.clone() {
                    return Err(e);
                }
                let _ = self.shared.ready.wait_timeout(st, POLL).unwrap();
            }
            abort.check()?;
        }
    }

    fn grant_credit(&self, abort: &AbortSignal) -> Result<()> {
        let mut guard = self.shared.credit_sock.lock().unwrap();
        if let Some(sock) = guard.as_mut() {
            let buf = encode_credit(1);
            if write_all_abort(sock, &buf, abort).is_err() {
                // The sender already hung up. Credits exist only to
                // unblock *it*, so a dead peer makes them moot: the
                // batches being drained here were queued before the
                // close, and any genuine mid-stream failure is surfaced
                // by the reader side, not this advisory write.
                *guard = None;
                return Ok(());
            }
            self.shared
                .counters
                .frames_tx
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .bytes_tx
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            self.shared.shared.frames_tx.fetch_add(1, Ordering::Relaxed);
            self.shared
                .shared
                .bytes_tx
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Best-effort typed-error hint to the sending peer (control frame).
    pub fn abort_hint(&self, err: &OrcaError) {
        if let Some(sock) = self.shared.credit_sock.lock().unwrap().as_mut() {
            let _ = write_all_abort(sock, &encode_abort(err), &AbortSignal::new());
        }
    }
}

// ---------------------------------------------------------------------
// Rendezvous server.
// ---------------------------------------------------------------------

struct ServerInner {
    registry: Mutex<HashMap<EndpointKey, Arc<RecvShared>>>,
    registered: Condvar,
    /// Open sockets per query, for abort broadcast and cleanup.
    conns: Mutex<HashMap<u64, Vec<TcpStream>>>,
    shutdown: AtomicBool,
    cfg: NetConfig,
}

impl ServerInner {
    fn track(&self, query: u64, sock: &TcpStream) {
        if let Ok(clone) = sock.try_clone() {
            self.conns
                .lock()
                .unwrap()
                .entry(query)
                .or_default()
                .push(clone);
        }
    }
}

/// Accepts inbound motion-edge connections and routes each to the
/// registered endpoint queue. One server per process; endpoints from
/// any number of concurrent queries rendezvous through it.
pub struct NetServer {
    local_addr: SocketAddr,
    inner: Arc<ServerInner>,
}

impl NetServer {
    /// Bind and start accepting. `addr` is typically `"127.0.0.1:0"` —
    /// the chosen port is available via [`NetServer::local_addr`].
    pub fn bind(addr: &str, cfg: NetConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("bind", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| net_err("local addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err("nonblocking", e))?;
        let inner = Arc::new(ServerInner {
            registry: Mutex::new(HashMap::new()),
            registered: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let accept_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("orca-net-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .map_err(|e| net_err("spawn", e))?;
        Ok(NetServer { local_addr, inner })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Register an expected inbound edge; the returned receiver delivers
    /// its messages once the sending peer connects.
    pub fn expect(
        &self,
        key: EndpointKey,
        counters: Arc<NetMotionCounters>,
        shared: Arc<NetShared>,
    ) -> NetReceiver {
        let recv = Arc::new(RecvShared {
            state: Mutex::new(RecvState {
                items: VecDeque::new(),
                err: None,
            }),
            ready: Condvar::new(),
            credit_sock: Mutex::new(None),
            counters,
            shared,
        });
        self.inner
            .registry
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&recv));
        self.inner.registered.notify_all();
        NetReceiver { shared: recv }
    }

    /// Track an outbound connection of `query` so abort broadcast and
    /// cleanup reach it too.
    pub(super) fn track_conn(&self, query: u64, sock: &TcpStream) {
        self.inner.track(query, sock);
    }

    /// Broadcast a typed error to every live connection of one query
    /// (best effort — dead sockets are skipped).
    pub fn abort_query(&self, query: u64, err: &OrcaError) {
        let frame = encode_abort(err);
        let conns = self.inner.conns.lock().unwrap();
        if let Some(socks) = conns.get(&query) {
            let signal = AbortSignal::new();
            for sock in socks {
                if let Ok(mut s) = sock.try_clone() {
                    let _ = write_all_abort(&mut s, &frame, &signal);
                }
            }
        }
    }

    /// Drop every connection and leftover registration of one query.
    pub fn end_query(&self, query: u64) {
        self.inner.conns.lock().unwrap().remove(&query);
        self.inner
            .registry
            .lock()
            .unwrap()
            .retain(|k, _| k.query != query);
    }

    /// Stop accepting and wind down reader threads (graceful drain:
    /// in-flight queries keep their established connections).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _)) => {
                let conn_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("orca-net-conn".into())
                    .spawn(move || {
                        let _ = serve_conn(sock, conn_inner);
                    });
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Handle one inbound connection: handshake → rendezvous → ack → pump
/// data frames into the endpoint queue until EOS + close (or failure).
fn serve_conn(sock: TcpStream, inner: Arc<ServerInner>) -> Result<()> {
    configure(&sock)?;
    let reader_sock = sock.try_clone().map_err(|e| net_err("clone", e))?;
    let mut reader = FrameReader::new(reader_sock);
    let deadline = Instant::now() + inner.cfg.handshake_timeout;

    // Handshake.
    let (ty, payload) = loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.poll_frame()? {
            Some(f) => break f,
            None if Instant::now() > deadline => {
                return Err(OrcaError::Net("handshake timed out".into()))
            }
            None => {}
        }
    };
    if ty != super::frame::FRAME_HANDSHAKE {
        return Err(OrcaError::Net(format!(
            "expected handshake, got frame {ty}"
        )));
    }
    let key = decode_handshake(&payload)?;

    // Rendezvous: wait (bounded) for the local run to register the edge.
    let endpoint: Arc<RecvShared> = {
        let mut registry = inner.registry.lock().unwrap();
        loop {
            if let Some(e) = registry.remove(&key) {
                break e;
            }
            if Instant::now() > deadline || inner.shutdown.load(Ordering::SeqCst) {
                return Err(OrcaError::Net(format!(
                    "no local endpoint registered for {key:?}"
                )));
            }
            let (guard, _) = inner.registered.wait_timeout(registry, POLL).unwrap();
            registry = guard;
        }
    };

    inner.track(key.query, &sock);
    // Attach the write half for credits, then complete the open round
    // trip.
    let mut write_sock = sock.try_clone().map_err(|e| net_err("clone", e))?;
    *endpoint.credit_sock.lock().unwrap() = Some(sock);
    let ack = encode_ack();
    let signal = AbortSignal::new();
    if let Err(e) = write_all_abort(&mut write_sock, &ack, &signal) {
        endpoint.fail(e.clone());
        return Err(e);
    }
    endpoint.counters.frames_tx.fetch_add(1, Ordering::Relaxed);
    endpoint
        .counters
        .bytes_tx
        .fetch_add(ack.len() as u64, Ordering::Relaxed);
    endpoint.shared.frames_tx.fetch_add(1, Ordering::Relaxed);
    endpoint
        .shared
        .bytes_tx
        .fetch_add(ack.len() as u64, Ordering::Relaxed);

    // Data pump.
    let mut saw_eos = false;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.poll_frame() {
            Ok(Some((ty, payload))) => {
                let frame_bytes = (payload.len() + 5) as u64;
                endpoint.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
                endpoint
                    .counters
                    .bytes_rx
                    .fetch_add(frame_bytes, Ordering::Relaxed);
                endpoint.shared.frames_rx.fetch_add(1, Ordering::Relaxed);
                endpoint
                    .shared
                    .bytes_rx
                    .fetch_add(frame_bytes, Ordering::Relaxed);
                if ty == FRAME_ABORT {
                    endpoint.fail(decode_abort(&payload)?);
                    return Ok(());
                }
                let msg = decode_msg(ty, &payload)?;
                saw_eos = matches!(msg, Msg::Eos);
                endpoint.push(msg);
            }
            Ok(None) => {}
            Err(e) => {
                // EOF after a clean EOS is the normal teardown; EOF (or
                // any read failure) mid-stream is a dead peer.
                if !saw_eos {
                    endpoint.fail(e);
                }
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sender side.
// ---------------------------------------------------------------------

struct SenderInner {
    sock: TcpStream,
    reader: FrameReader<TcpStream>,
    /// Batch credits remaining before the send window is exhausted.
    window: usize,
    /// Ack received — the open round trip is complete.
    ready: bool,
    opened_at: Instant,
}

/// The sending end of one remote motion edge. Writes happen directly on
/// the task thread (no writer thread): the credit window plus blocking
/// writes give the same backpressure as a bounded channel.
pub struct NetSender {
    inner: Mutex<SenderInner>,
    capacity: usize,
    cfg: NetConfig,
    counters: Arc<NetMotionCounters>,
    shared: Arc<NetShared>,
}

impl NetSender {
    /// Connect to the peer that owns the receiving instance, with capped
    /// exponential backoff, and write the endpoint handshake. The `Ack`
    /// is awaited lazily on first send so a gang's connects don't
    /// serialize on each other's registrations.
    pub fn connect(
        addr: &str,
        key: EndpointKey,
        capacity: usize,
        cfg: &NetConfig,
        abort: &AbortSignal,
        counters: Arc<NetMotionCounters>,
        shared: Arc<NetShared>,
    ) -> Result<NetSender> {
        let sock_addr: SocketAddr = addr
            .parse()
            .map_err(|e| OrcaError::Net(format!("bad peer address {addr}: {e}")))?;
        let deadline = Instant::now() + cfg.connect_timeout;
        let mut delay = Duration::from_millis(10);
        let mut sock = loop {
            abort.check()?;
            match TcpStream::connect_timeout(&sock_addr, Duration::from_millis(250)) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() + delay > deadline {
                        return Err(OrcaError::Net(format!(
                            "connect to {addr} failed after retries: {e}"
                        )));
                    }
                    shared.reconnects.fetch_add(1, Ordering::Relaxed);
                    shared.backoff_waits.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(500));
                }
            }
        };
        configure(&sock)?;
        let reader_sock = sock.try_clone().map_err(|e| net_err("clone", e))?;
        let hs = encode_handshake(&key);
        write_all_abort(&mut sock, &hs, abort)?;
        counters.frames_tx.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_tx
            .fetch_add(hs.len() as u64, Ordering::Relaxed);
        shared.frames_tx.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_tx
            .fetch_add(hs.len() as u64, Ordering::Relaxed);
        shared.remote_edges.fetch_add(1, Ordering::Relaxed);
        Ok(NetSender {
            inner: Mutex::new(SenderInner {
                sock,
                reader: FrameReader::new(reader_sock),
                window: capacity.max(1),
                ready: false,
                opened_at: Instant::now(),
            }),
            capacity: capacity.max(1),
            cfg: cfg.clone(),
            counters,
            shared,
        })
    }

    /// Ship one protocol message. Batch messages consume a credit and
    /// block (abort-aware) while the window is exhausted.
    pub fn send(&self, msg: Msg, abort: &AbortSignal) -> Result<()> {
        let mut g = self.inner.lock().unwrap();
        let ack_deadline = g.opened_at + self.cfg.handshake_timeout;
        while !g.ready {
            abort.check()?;
            if Instant::now() > ack_deadline {
                return Err(OrcaError::Net("peer never acknowledged handshake".into()));
            }
            self.pump(&mut g)?;
        }
        if matches!(msg, Msg::Batch(_)) {
            while g.window == 0 {
                abort.check()?;
                self.pump(&mut g)?;
            }
            g.window -= 1;
            self.counters
                .peak_queue
                .fetch_max((self.capacity - g.window) as u64, Ordering::Relaxed);
        }
        let buf = encode_msg(&msg);
        write_all_abort(&mut g.sock, &buf, abort)?;
        self.counters.frames_tx.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_tx
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.shared.frames_tx.fetch_add(1, Ordering::Relaxed);
        self.shared
            .bytes_tx
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Batches currently in flight (capacity minus remaining credits).
    pub fn queued(&self) -> usize {
        self.capacity - self.inner.lock().unwrap().window
    }

    /// Drain whatever control frames the peer sent: ack, credits, or a
    /// typed abort. Returns after at most one poll interval.
    fn pump(&self, g: &mut SenderInner) -> Result<()> {
        match g.reader.poll_frame()? {
            Some((FRAME_ACK, _)) => {
                g.ready = true;
                let rtt = g.opened_at.elapsed().as_nanos() as u64;
                self.shared
                    .open_rtt_ns_max
                    .fetch_max(rtt, Ordering::Relaxed);
                self.shared.frames_rx.fetch_add(1, Ordering::Relaxed);
                self.shared.bytes_rx.fetch_add(6, Ordering::Relaxed);
            }
            Some((FRAME_CREDIT, payload)) => {
                let n = decode_credit(&payload)? as usize;
                g.window = (g.window + n).min(self.capacity);
                self.shared.frames_rx.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .bytes_rx
                    .fetch_add((payload.len() + 5) as u64, Ordering::Relaxed);
            }
            Some((FRAME_ABORT, payload)) => return Err(decode_abort(&payload)?),
            Some((ty, _)) => {
                return Err(OrcaError::Net(format!(
                    "unexpected frame {ty} on sender control channel"
                )))
            }
            None => {}
        }
        Ok(())
    }

    /// Best-effort typed-error hint to the receiving peer.
    pub fn abort_hint(&self, err: &OrcaError) {
        if let Ok(mut g) = self.inner.lock() {
            let _ = write_all_abort(&mut g.sock, &encode_abort(err), &AbortSignal::new());
        }
    }

    /// Register this outbound connection with the local server so
    /// query-wide abort broadcasts reach the peer on the other end.
    pub fn register(&self, server: &NetServer, query: u64) {
        if let Ok(g) = self.inner.lock() {
            server.track_conn(query, &g.sock);
        }
    }
}
