//! Socket interconnect: gangs across processes, queries over TCP (§3).
//!
//! The paper runs Orca as a standalone process that exchanges queries
//! and plans with remote database hosts over DXL; execution itself is
//! distributed across segment hosts linked by an interconnect. This
//! module supplies the missing network layer for the simulated cluster:
//!
//! * [`frame`] — a length-prefixed frame codec for the interconnect's
//!   `Msg { Open, Batch, Eos }` protocol. Batches travel in the shared
//!   [`crate::codec`] columnar layout, so dictionary-encoded string
//!   columns cross the wire without decoding, and the simulated-clock
//!   fields ride as bit-exact `f64`s.
//! * [`transport`] — a TCP transport behind the same sender/receiver
//!   surface as the in-process bounded channels: per-edge connections
//!   with a `{query, motion, sender, receiver}` handshake, credit-based
//!   send windows preserving backpressure, abort/deadline propagation
//!   via control frames, and capped-exponential-backoff connects that
//!   exhaust into a typed [`orca_common::OrcaError::Net`].
//! * [`ClusterTopology`] — the static map from segment to owning peer
//!   process. Edges whose two instances land on the same peer use the
//!   in-process channel fast path; a single-peer topology therefore
//!   creates no sockets at all.

pub mod frame;
pub mod transport;

pub use frame::EndpointKey;
pub use transport::{NetReceiver, NetSender, NetServer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Reserved motion id for shipping a remote root-slice instance's
/// finished stream back to the coordinator. Planner motion ids are
/// small dense indices, so the top of the space is free.
pub const RESULT_MOTION: u32 = u32::MAX;

/// Tunables for the TCP transport.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Total budget for connect retries (capped exponential backoff).
    pub connect_timeout: Duration,
    /// How long a connection may sit between handshake and ack — covers
    /// the window where the remote run has not yet registered the edge.
    pub handshake_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(5),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Static cluster map: which peer process owns each segment.
///
/// Whole segments are assigned to peers, so everything keyed by segment
/// (spool partitions, storage shards, CTE rendezvous) stays
/// process-local; only motion edges whose sender and receiver segments
/// live on different peers become TCP connections. Peer `0` is the
/// coordinator — it parses the query, runs the optimizer, and owns the
/// result cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Peer addresses (`host:port` of each peer's [`NetServer`]),
    /// indexed by peer id. `peers[0]` is the coordinator.
    pub peers: Vec<String>,
    /// `segment_peer[s]` = index into `peers` owning segment `s`.
    pub segment_peer: Vec<usize>,
}

impl ClusterTopology {
    /// Everything on one (local) peer: the degenerate topology used by
    /// single-process runs. No addresses are needed because no edge is
    /// remote.
    pub fn single(num_segments: usize) -> ClusterTopology {
        ClusterTopology {
            peers: vec![String::new()],
            segment_peer: vec![0; num_segments],
        }
    }

    /// Spread `num_segments` segments across `peers` round-robin.
    pub fn round_robin(peers: Vec<String>, num_segments: usize) -> ClusterTopology {
        assert!(!peers.is_empty(), "topology needs at least one peer");
        let n = peers.len();
        ClusterTopology {
            peers,
            segment_peer: (0..num_segments).map(|s| s % n).collect(),
        }
    }

    /// The peer owning segment `seg`.
    pub fn owner(&self, seg: usize) -> usize {
        self.segment_peer[seg]
    }

    /// Whether any pair of segments lives on different peers.
    pub fn is_distributed(&self) -> bool {
        self.segment_peer.windows(2).any(|w| w[0] != w[1])
    }

    /// Segments owned by peer `me`.
    pub fn local_segments(&self, me: usize) -> Vec<usize> {
        (0..self.segment_peer.len())
            .filter(|&s| self.segment_peer[s] == me)
            .collect()
    }
}

/// Run-wide transport counters, shared by every edge of one distributed
/// run. Snapshot into [`NetStats`] after the run completes.
#[derive(Debug, Default)]
pub struct NetShared {
    pub frames_tx: AtomicU64,
    pub frames_rx: AtomicU64,
    pub bytes_tx: AtomicU64,
    pub bytes_rx: AtomicU64,
    pub reconnects: AtomicU64,
    pub backoff_waits: AtomicU64,
    pub open_rtt_ns_max: AtomicU64,
    pub remote_edges: AtomicU64,
}

impl NetShared {
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            backoff_waits: self.backoff_waits.load(Ordering::Relaxed),
            open_rtt_max_seconds: self.open_rtt_ns_max.load(Ordering::Relaxed) as f64 / 1e9,
            remote_edges: self.remote_edges.load(Ordering::Relaxed),
        }
    }
}

/// Transport observability for one run (all zeros when every edge was
/// in-process).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Frames written to sockets (handshakes, acks, credits, data).
    pub frames_tx: u64,
    /// Frames read off sockets.
    pub frames_rx: u64,
    /// Bytes written to sockets, including frame headers.
    pub bytes_tx: u64,
    /// Bytes read off sockets.
    pub bytes_rx: u64,
    /// Failed connect attempts that were retried with backoff.
    pub reconnects: u64,
    /// Backoff sleeps taken while connecting.
    pub backoff_waits: u64,
    /// Worst handshake→ack round trip, in wall seconds.
    pub open_rtt_max_seconds: f64,
    /// Motion-edge instances that crossed process boundaries.
    pub remote_edges: u64,
}

/// Per-motion transport counters, merged into the motion's
/// [`crate::parallel::MotionMetrics`] alongside the logical row/byte
/// counts.
#[derive(Debug, Default)]
pub struct NetMotionCounters {
    pub frames_tx: AtomicU64,
    pub bytes_tx: AtomicU64,
    pub frames_rx: AtomicU64,
    pub bytes_rx: AtomicU64,
    /// Deepest credit-window occupancy seen on any edge of this motion.
    pub peak_queue: AtomicU64,
}

/// One process's handle on the cluster: its rendezvous server plus its
/// own peer id. Peer `0` is the coordinator.
pub struct NetNode {
    pub server: NetServer,
    pub me: usize,
}

impl NetNode {
    /// Bind a server on `addr` and assume peer id `me`.
    pub fn bind(addr: &str, me: usize, cfg: NetConfig) -> orca_common::Result<NetNode> {
        Ok(NetNode {
            server: NetServer::bind(addr, cfg)?,
            me,
        })
    }

    /// This node's advertised address (what other peers dial).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_topology_is_not_distributed() {
        let t = ClusterTopology::single(4);
        assert!(!t.is_distributed());
        assert_eq!(t.local_segments(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_spreads_segments() {
        let t = ClusterTopology::round_robin(vec!["a".into(), "b".into()], 4);
        assert!(t.is_distributed());
        assert_eq!(t.owner(0), 0);
        assert_eq!(t.owner(1), 1);
        assert_eq!(t.local_segments(1), vec![1, 3]);
    }
}
