//! Length-prefixed frame codec for the interconnect's `Msg` protocol.
//!
//! Wire layout: `[len: u32 LE][type: u8][payload: len-1 bytes]` — `len`
//! counts the type byte plus the payload, so a reader can skip unknown
//! frames. Batch payloads reuse the spill chunk codec
//! ([`crate::codec`]) verbatim: dictionary-encoded string columns cross
//! the wire as a dictionary page + u32 codes, never decoded.
//!
//! [`FrameReader`] is resumable: a read that ends mid-frame (socket
//! timeout, torn TCP segment) parks its partial state and picks up
//! where it left off on the next poll, so short read timeouts can be
//! used for abort checking without corrupting the stream.

use crate::codec;
use crate::columnar::ColumnBatch;
use crate::parallel::interconnect::Msg;
use orca_common::{ColId, OrcaError, Result};
use std::io::{ErrorKind, Read, Write};

/// Sender → receiver: `{query_id, motion, sender, receiver}` endpoint
/// identification, first frame on every connection.
pub const FRAME_HANDSHAKE: u8 = 1;
/// Receiver → sender: handshake accepted; the open round trip is
/// complete and data may flow.
pub const FRAME_ACK: u8 = 2;
/// Stream prologue: layout + the sender slot's simulated clock.
pub const FRAME_OPEN: u8 = 3;
/// One [`ColumnBatch`] in the shared chunk codec.
pub const FRAME_BATCH: u8 = 4;
/// End of stream.
pub const FRAME_EOS: u8 = 5;
/// Control frame: typed error propagation (abort, deadline, failure).
pub const FRAME_ABORT: u8 = 6;
/// Receiver → sender: flow-control credit for `n` more batch frames.
pub const FRAME_CREDIT: u8 = 7;

/// Upper bound on a single frame body. A frame carries at most one
/// interconnect batch; anything bigger is a corrupt length prefix, and
/// trusting it would let a bad peer OOM the receiver.
pub const MAX_FRAME: usize = 256 << 20;

/// Endpoint identity carried by the handshake: one TCP connection per
/// (query, motion, sender instance, receiver instance) edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointKey {
    pub query: u64,
    pub motion: u32,
    pub sender: u32,
    pub receiver: u32,
}

fn frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    codec::put_u32(&mut out, (payload.len() + 1) as u32);
    out.push(ty);
    out.extend_from_slice(payload);
    out
}

pub fn encode_handshake(key: &EndpointKey) -> Vec<u8> {
    let mut p = Vec::with_capacity(20);
    codec::put_u64(&mut p, key.query);
    codec::put_u32(&mut p, key.motion);
    codec::put_u32(&mut p, key.sender);
    codec::put_u32(&mut p, key.receiver);
    frame(FRAME_HANDSHAKE, &p)
}

pub fn decode_handshake(payload: &[u8]) -> Result<EndpointKey> {
    let mut c = codec::Cursor::new(payload);
    Ok(EndpointKey {
        query: c.u64()?,
        motion: c.u32()?,
        sender: c.u32()?,
        receiver: c.u32()?,
    })
}

pub fn encode_ack() -> Vec<u8> {
    frame(FRAME_ACK, &[])
}

pub fn encode_credit(n: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(4);
    codec::put_u32(&mut p, n);
    frame(FRAME_CREDIT, &p)
}

pub fn decode_credit(payload: &[u8]) -> Result<u32> {
    codec::Cursor::new(payload).u32()
}

/// Typed errors travel as `(kind, message)`; the receiving side rebuilds
/// the same variant so an abort or deadline keeps its meaning across the
/// process boundary.
pub fn encode_abort(err: &OrcaError) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_str(&mut p, err.kind());
    codec::put_str(&mut p, err.message());
    frame(FRAME_ABORT, &p)
}

pub fn decode_abort(payload: &[u8]) -> Result<OrcaError> {
    let mut c = codec::Cursor::new(payload);
    let kind = c.str()?;
    let msg = c.str()?;
    Ok(match kind.as_str() {
        "parse" => OrcaError::Parse(msg),
        "bind" => OrcaError::Bind(msg),
        "metadata" => OrcaError::Metadata(msg),
        "dxl" => OrcaError::Dxl(msg),
        "internal" => OrcaError::Internal(msg),
        "noplan" => OrcaError::NoPlan(msg),
        "aborted" => OrcaError::Aborted(msg),
        "timeout" => OrcaError::Timeout(msg),
        "oom" => OrcaError::OutOfMemory(msg),
        "net" => OrcaError::Net(msg),
        "unsupported" => OrcaError::Unsupported(msg),
        "injected" => OrcaError::InjectedFault(msg),
        _ => OrcaError::Execution(msg),
    })
}

/// Encode one protocol message as a frame. `Open` carries the sender
/// slot's simulated clock as IEEE-754 bits, so the receiver's replayed
/// motion clock is bit-equal to the in-process interconnect's.
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    match msg {
        Msg::Open {
            layout,
            avail,
            bytes,
            replicated,
        } => {
            let mut p = Vec::with_capacity(21 + layout.len() * 4);
            p.push(*replicated as u8);
            codec::put_u64(&mut p, avail.to_bits());
            codec::put_u64(&mut p, bytes.to_bits());
            codec::put_u32(&mut p, layout.len() as u32);
            for c in layout {
                codec::put_u32(&mut p, c.0);
            }
            frame(FRAME_OPEN, &p)
        }
        Msg::Batch(b) => {
            let mut out = Vec::with_capacity(64 + b.len * b.cols.len() * 8);
            codec::put_u32(&mut out, 0); // patched below
            out.push(FRAME_BATCH);
            codec::encode_batch_into(&mut out, b);
            let len = (out.len() - 4) as u32;
            out[..4].copy_from_slice(&len.to_le_bytes());
            out
        }
        Msg::Eos => frame(FRAME_EOS, &[]),
    }
}

/// Decode a data-plane frame back into a protocol message. Handshake,
/// ack, credit, and abort frames are transport-level and rejected here.
pub fn decode_msg(ty: u8, payload: &[u8]) -> Result<Msg> {
    match ty {
        FRAME_OPEN => {
            let mut c = codec::Cursor::new(payload);
            let replicated = c.u8()? != 0;
            let avail = f64::from_bits(c.u64()?);
            let bytes = f64::from_bits(c.u64()?);
            let ncols = c.u32()? as usize;
            let mut layout = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                layout.push(ColId(c.u32()?));
            }
            Ok(Msg::Open {
                layout,
                avail,
                bytes,
                replicated,
            })
        }
        FRAME_BATCH => Ok(Msg::Batch(decode_batch_payload(payload)?)),
        FRAME_EOS => Ok(Msg::Eos),
        t => Err(OrcaError::Net(format!("unexpected frame type {t}"))),
    }
}

pub fn decode_batch_payload(payload: &[u8]) -> Result<ColumnBatch> {
    codec::decode_batch(payload)
}

/// Resumable frame reader over any byte stream.
///
/// `poll_frame` returns `Ok(Some(_))` when a whole frame is buffered,
/// `Ok(None)` when the underlying read would block or timed out (state
/// is preserved — call again), and `Err` on EOF, I/O failure, or a
/// malformed length prefix.
pub struct FrameReader<R> {
    inner: R,
    head: [u8; 4],
    head_have: usize,
    body: Vec<u8>,
    body_have: usize,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            head: [0; 4],
            head_have: 0,
            body: Vec::new(),
            body_have: 0,
        }
    }

    fn read_some(&mut self, scratch: bool) -> Result<Option<usize>> {
        // Borrow-splitting shim: read into head or body without holding
        // two &mut self borrows.
        let (inner, buf) = if scratch {
            (&mut self.inner, &mut self.head[self.head_have..])
        } else {
            (&mut self.inner, &mut self.body[self.body_have..])
        };
        loop {
            match inner.read(buf) {
                Ok(0) => return Err(OrcaError::Net("peer closed connection".into())),
                Ok(n) => return Ok(Some(n)),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) => return Err(OrcaError::Net(format!("read failed: {e}"))),
            }
        }
    }

    /// Attempt to complete one frame; `(type, payload)` without the
    /// length prefix or type byte.
    pub fn poll_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        loop {
            if self.head_have < 4 {
                match self.read_some(true)? {
                    Some(n) => {
                        self.head_have += n;
                        if self.head_have == 4 {
                            let len = u32::from_le_bytes(self.head) as usize;
                            if len == 0 || len > MAX_FRAME {
                                return Err(OrcaError::Net(format!("bad frame length {len}")));
                            }
                            self.body = vec![0u8; len];
                            self.body_have = 0;
                        }
                    }
                    None => return Ok(None),
                }
            } else {
                match self.read_some(false)? {
                    Some(n) => {
                        self.body_have += n;
                        if self.body_have == self.body.len() {
                            let body = std::mem::take(&mut self.body);
                            self.head_have = 0;
                            self.body_have = 0;
                            let ty = body[0];
                            return Ok(Some((ty, body[1..].to_vec())));
                        }
                    }
                    None => return Ok(None),
                }
            }
        }
    }
}

/// Write a whole buffer through a stream with a short write timeout,
/// re-checking the abort signal between partial writes so a stalled
/// peer cannot wedge the sender.
pub fn write_all_abort(
    w: &mut impl Write,
    buf: &[u8],
    abort: &orca_gpos::AbortSignal,
) -> Result<()> {
    let mut off = 0;
    while off < buf.len() {
        abort.check()?;
        match w.write(&buf[off..]) {
            Ok(0) => return Err(OrcaError::Net("peer closed connection".into())),
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(OrcaError::Net(format!("write failed: {e}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{BitVec, Buf, Column};
    use orca_common::Datum;
    use std::sync::Arc;

    /// A reader that hands out at most `chunk` bytes per call and
    /// returns `WouldBlock` between chunks — the torn-read torture
    /// harness for [`FrameReader`].
    struct ChunkedReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        starve: bool,
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.starve {
                self.starve = false;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.starve = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain(reader: &mut FrameReader<ChunkedReader>) -> Vec<(u8, Vec<u8>)> {
        let mut frames = Vec::new();
        loop {
            match reader.poll_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => continue, // starved mid-frame; resume
                Err(e) => {
                    assert_eq!(e.kind(), "net"); // EOF at stream end
                    return frames;
                }
            }
        }
    }

    /// Deterministic per-case "random" batches: dict-encoded strings,
    /// null bitmaps, empty batches, mixed columns.
    fn sample_batches() -> Vec<ColumnBatch> {
        let mut nulls = BitVec::new();
        for i in 0..5 {
            nulls.push(i % 3 == 0);
        }
        vec![
            ColumnBatch::new(3), // empty, 3 columns
            ColumnBatch::from_rows(
                &[
                    vec![Datum::Int(-1), Datum::Str("α".into()), Datum::Double(0.125)],
                    vec![Datum::Null, Datum::Str("".into()), Datum::Null],
                ],
                3,
            ),
            ColumnBatch {
                cols: vec![
                    Column::Dict {
                        codes: Buf::new(vec![0, 1, 0, 2, 1]),
                        dict: Arc::new(vec!["aa".into(), "b".into(), "".into()]),
                        nulls: Some(nulls),
                    },
                    Column::Mixed(Buf::new(vec![
                        Datum::Int(7),
                        Datum::Str("mix".into()),
                        Datum::Null,
                        Datum::Bool(true),
                        Datum::Date(-3),
                    ])),
                ],
                len: 5,
            },
        ]
    }

    /// Round-trip proptest-style sweep: every sample message sequence ×
    /// every chunk size from 1 byte up, through a starving reader.
    #[test]
    fn frames_round_trip_through_torn_reads() {
        let batches = sample_batches();
        let mut wire = Vec::new();
        let mut sent: Vec<Msg> = Vec::new();
        sent.push(Msg::Open {
            layout: vec![ColId(3), ColId(9)],
            avail: 1.25,
            bytes: 4096.0,
            replicated: true,
        });
        for b in &batches {
            sent.push(Msg::Batch(b.clone()));
        }
        sent.push(Msg::Eos);
        for m in &sent {
            wire.extend_from_slice(&encode_msg(m));
        }
        wire.extend_from_slice(&encode_credit(2));
        wire.extend_from_slice(&encode_abort(&OrcaError::Timeout("deadline".into())));

        for chunk in [1, 2, 3, 5, 7, 16, 64, 4096] {
            let mut reader = FrameReader::new(ChunkedReader {
                data: wire.clone(),
                pos: 0,
                chunk,
                starve: true,
            });
            let frames = drain(&mut reader);
            assert_eq!(frames.len(), sent.len() + 2, "chunk={chunk}");
            for (i, (ty, payload)) in frames[..sent.len()].iter().enumerate() {
                let msg = decode_msg(*ty, payload).unwrap();
                match (&msg, &sent[i]) {
                    (
                        Msg::Open {
                            layout: a,
                            avail: aa,
                            bytes: ab,
                            replicated: ar,
                        },
                        Msg::Open {
                            layout: b,
                            avail: ba,
                            bytes: bb,
                            replicated: br,
                        },
                    ) => {
                        assert_eq!(a, b);
                        assert_eq!(aa.to_bits(), ba.to_bits());
                        assert_eq!(ab.to_bits(), bb.to_bits());
                        assert_eq!(ar, br);
                    }
                    (Msg::Batch(a), Msg::Batch(b)) => {
                        assert_eq!(a.len, b.len);
                        for r in 0..a.len {
                            assert_eq!(a.row(r), b.row(r));
                        }
                        // Dictionary columns stay encoded across the wire.
                        for (ca, cb) in a.cols.iter().zip(&b.cols) {
                            assert_eq!(
                                matches!(ca, Column::Dict { .. }),
                                matches!(cb, Column::Dict { .. })
                            );
                        }
                    }
                    (Msg::Eos, Msg::Eos) => {}
                    (got, want) => panic!("frame {i}: got {got:?}, want {want:?}"),
                }
            }
            assert_eq!(frames[sent.len()].0, FRAME_CREDIT);
            assert_eq!(decode_credit(&frames[sent.len()].1).unwrap(), 2);
            let err = decode_abort(&frames[sent.len() + 1].1).unwrap();
            assert_eq!(err, OrcaError::Timeout("deadline".into()));
        }
    }

    #[test]
    fn handshake_round_trips() {
        let key = EndpointKey {
            query: u64::MAX - 3,
            motion: 7,
            sender: 2,
            receiver: 0,
        };
        let buf = encode_handshake(&key);
        let mut r = FrameReader::new(ChunkedReader {
            data: buf,
            pos: 0,
            chunk: 1,
            starve: true,
        });
        let (ty, payload) = loop {
            if let Some(f) = r.poll_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(ty, FRAME_HANDSHAKE);
        assert_eq!(decode_handshake(&payload).unwrap(), key);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        crate::codec::put_u32(&mut buf, (MAX_FRAME + 1) as u32);
        buf.push(FRAME_EOS);
        let mut r = FrameReader::new(ChunkedReader {
            data: buf,
            pos: 0,
            chunk: 64,
            starve: false,
        });
        let err = loop {
            match r.poll_frame() {
                Ok(Some(_)) => panic!("accepted oversized frame"),
                Ok(None) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "net");
    }
}
