//! Differential spill tests: the row kernel is the oracle, and every
//! other execution mode — columnar, streaming cursor, parallel at 1/2/4
//! workers through either kernel — must agree with it *byte for byte*
//! whether operators run in memory or spill to disk.
//!
//! The matrix runs each plan at three working-memory settings:
//!
//! * `64` bytes — everything spills, with recursive repartitioning;
//! * `4 KiB` — mixed: large states spill, small ones stay resident;
//! * the 64 MiB default — nothing spills (the regression baseline).
//!
//! Beyond row identity, the serial kernels must agree on the simulated
//! clock bit-for-bit and on every spill counter, and the parallel engine
//! must reproduce the serial spill counters exactly at every worker
//! count — spilling is deterministic, not best-effort.

use orca_catalog::{ColumnMeta, Distribution, TableDesc};
use orca_common::{ColId, DataType, Datum, MdId, SegmentConfig, SysId};
use orca_executor::{
    Cursor, CursorOptions, Database, ExecEngine, ExecResult, ParallelConfig, ParallelEngine, Row,
};
use orca_expr::logical::{AggStage, JoinKind, TableRef};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::OrderSpec;
use orca_expr::scalar::{AggFunc, ScalarExpr};
use proptest::prelude::*;
use std::sync::Arc;

/// 4-segment database over two hashed tables loaded with the given rows.
/// `t1` owns columns 0..2, `t2` columns 2..4.
fn make_db(
    rows1: &[(i64, i64)],
    rows2: &[(i64, i64)],
    work_mem: u64,
) -> (Arc<Database>, TableRef, TableRef) {
    let mut db = Database::new(
        SegmentConfig::default()
            .with_segments(4)
            .with_work_mem(work_mem),
    );
    let mk = |oid: u64, name: &str| {
        Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, oid, 1),
            name,
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ))
    };
    let t1 = mk(1, "t1");
    let t2 = mk(2, "t2");
    let to_rows = |data: &[(i64, i64)]| -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| {
                // A sprinkle of NULLs and strings exercises the spill
                // codec's full datum range, dictionary page included.
                let key = if a % 11 == 10 {
                    Datum::Null
                } else {
                    Datum::Int(a)
                };
                let payload = if b % 7 == 3 {
                    Datum::Str(format!("p{}", b % 19))
                } else {
                    Datum::Int(b)
                };
                vec![key, payload]
            })
            .collect()
    };
    db.load_table(t1.clone(), to_rows(rows1)).unwrap();
    db.load_table(t2.clone(), to_rows(rows2)).unwrap();
    (Arc::new(db), TableRef(t1), TableRef(t2))
}

fn scan(t: &TableRef, first: u32) -> PhysicalPlan {
    PhysicalPlan::leaf(PhysicalOp::TableScan {
        table: t.clone(),
        cols: vec![ColId(first), ColId(first + 1)],
        parts: None,
    })
}

fn motion(kind: MotionKind, child: PhysicalPlan) -> PhysicalPlan {
    PhysicalPlan::new(PhysicalOp::Motion { kind }, vec![child])
}

/// Figure 6 shape: hash join over a redistribute, sorted, gather-merged.
/// Exercises the join *and* sort spill paths in one plan.
fn join_sort_plan(t1: &TableRef, t2: &TableRef) -> (PhysicalPlan, Vec<ColId>) {
    let join = PhysicalPlan::new(
        PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(0)],
            right_keys: vec![ColId(3)],
            residual: None,
        },
        vec![
            scan(t1, 0),
            motion(MotionKind::Redistribute(vec![ColId(3)]), scan(t2, 2)),
        ],
    );
    let plan = motion(
        MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
        PhysicalPlan::new(
            PhysicalOp::Sort {
                order: OrderSpec::by(&[ColId(0)]),
            },
            vec![join],
        ),
    );
    (plan, vec![ColId(0), ColId(1), ColId(2)])
}

/// Two-stage grouped aggregate across a redistribute — the hash-agg
/// spill path, local and global stages both under pressure.
fn split_agg_plan(t1: &TableRef) -> (PhysicalPlan, Vec<ColId>) {
    let agg = |stage: AggStage, in_col: ColId, out_col: ColId, child: PhysicalPlan| {
        PhysicalPlan::new(
            PhysicalOp::HashAgg {
                group_cols: vec![ColId(0)],
                aggs: vec![(
                    out_col,
                    ScalarExpr::Agg {
                        func: AggFunc::Count,
                        arg: Some(Box::new(ScalarExpr::col(in_col))),
                        distinct: false,
                    },
                )],
                stage,
            },
            vec![child],
        )
    };
    let local = agg(AggStage::Local, ColId(1), ColId(11), scan(t1, 0));
    let global = agg(
        AggStage::Global,
        ColId(11),
        ColId(10),
        motion(MotionKind::Redistribute(vec![ColId(0)]), local),
    );
    let plan = motion(MotionKind::Gather, global);
    (plan, vec![ColId(0), ColId(10)])
}

/// Run `plan` through every execution mode and hold each to the row
/// kernel's output: identical rows, bit-equal simulated time (serial
/// modes), and identical spill/peak counters everywhere.
fn assert_differential(db: &Arc<Database>, plan: &PhysicalPlan, out: &[ColId]) -> ExecResult {
    let oracle = ExecEngine::new(db).run(plan, out).unwrap();

    let col = ExecEngine::new(db).run_columnar(plan, out).unwrap();
    assert_eq!(col.rows, oracle.rows, "columnar rows diverged");
    assert_eq!(
        col.sim_seconds.to_bits(),
        oracle.sim_seconds.to_bits(),
        "columnar sim clock diverged"
    );
    assert_eq!(col.stats.spills, oracle.stats.spills);
    assert_eq!(col.stats.spill_partitions, oracle.stats.spill_partitions);
    assert_eq!(
        col.stats.spill_bytes_written,
        oracle.stats.spill_bytes_written
    );
    assert_eq!(col.stats.spill_bytes_read, oracle.stats.spill_bytes_read);
    assert_eq!(col.stats.peak_mem_bytes, oracle.stats.peak_mem_bytes);

    for columnar in [false, true] {
        let cursor = Cursor::open(
            Arc::clone(db),
            plan,
            out,
            CursorOptions {
                columnar,
                batch_rows: 7, // deliberately odd, exercises rechunking
                fragments: None,
                mem: None,
            },
        );
        let (rows, summary) = cursor.collect().unwrap();
        assert_eq!(
            rows, oracle.rows,
            "cursor(columnar={columnar}) rows diverged"
        );
        assert_eq!(
            summary.sim_seconds.to_bits(),
            oracle.sim_seconds.to_bits(),
            "cursor(columnar={columnar}) sim clock diverged"
        );
    }

    for columnar in [false, true] {
        for workers in [1, 2, 4] {
            let cfg = ParallelConfig {
                workers,
                batch_rows: 7,
                channel_capacity: 2,
                columnar,
                ..ParallelConfig::default()
            };
            let par = ParallelEngine::with_config(db, cfg).run(plan, out).unwrap();
            let tag = format!("parallel workers={workers} columnar={columnar}");
            assert_eq!(par.rows, oracle.rows, "{tag}: rows diverged");
            assert_eq!(par.stats.spills, oracle.stats.spills, "{tag}: spills");
            assert_eq!(
                par.stats.spill_partitions, oracle.stats.spill_partitions,
                "{tag}: spill_partitions"
            );
            assert_eq!(
                par.stats.spill_bytes_written, oracle.stats.spill_bytes_written,
                "{tag}: spill_bytes_written"
            );
            assert_eq!(
                par.stats.spill_bytes_read, oracle.stats.spill_bytes_read,
                "{tag}: spill_bytes_read"
            );
            assert_eq!(
                par.stats.peak_mem_bytes, oracle.stats.peak_mem_bytes,
                "{tag}: peak_mem_bytes"
            );
        }
    }
    oracle
}

/// Deterministic sweep: fixed data through the whole matrix at every
/// memory setting, asserting that the small settings really did spill
/// and the default really did not.
#[test]
fn spill_matrix_join_agg_sort() {
    let rows1: Vec<(i64, i64)> = (0..120).map(|i| (i % 13, i)).collect();
    let rows2: Vec<(i64, i64)> = (0..50).map(|i| (i, i % 13)).collect();
    for work_mem in [64u64, 4096, 64 << 20] {
        let (db, t1, t2) = make_db(&rows1, &rows2, work_mem);
        let (jplan, jout) = join_sort_plan(&t1, &t2);
        let joined = assert_differential(&db, &jplan, &jout);
        let (aplan, aout) = split_agg_plan(&t1);
        let agged = assert_differential(&db, &aplan, &aout);
        let spilled = joined.stats.spill_partitions + agged.stats.spill_partitions;
        if work_mem <= 4096 {
            assert!(spilled > 0, "work_mem={work_mem}: expected spills");
            assert!(joined.stats.spill_bytes_written > 0);
            assert_eq!(
                joined.stats.spill_bytes_read, joined.stats.spill_bytes_written,
                "every spilled byte is read back exactly once"
            );
        } else {
            assert_eq!(spilled, 0, "work_mem={work_mem}: expected no spills");
            assert!(joined.stats.peak_mem_bytes > 0);
        }
    }
}

/// Spilled runs must not change *what* is computed, only *how*: the
/// result at 64 bytes of work_mem equals the result at the default.
#[test]
fn spilled_results_equal_in_memory_results() {
    let rows1: Vec<(i64, i64)> = (0..200).map(|i| (i % 23, 3 * i - 100)).collect();
    let rows2: Vec<(i64, i64)> = (0..60).map(|i| (i, i % 23)).collect();
    let reference = {
        let (db, t1, t2) = make_db(&rows1, &rows2, 64 << 20);
        let (plan, out) = join_sort_plan(&t1, &t2);
        ExecEngine::new(&db).run(&plan, &out).unwrap()
    };
    assert_eq!(reference.stats.spill_partitions, 0);
    let (db, t1, t2) = make_db(&rows1, &rows2, 64);
    let (plan, out) = join_sort_plan(&t1, &t2);
    let spilled = assert_differential(&db, &plan, &out);
    assert!(spilled.stats.spill_partitions > 0);
    assert_eq!(spilled.rows, reference.rows);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Randomized differential sweep: arbitrary data and key skew, every
    /// execution mode, at a spill-everything, a mixed, and an in-memory
    /// work_mem setting.
    #[test]
    fn randomized_spill_differential(
        rows1 in proptest::collection::vec((0i64..16, -500i64..500i64), 1..80),
        rows2 in proptest::collection::vec((0i64..16, -500i64..500i64), 1..40),
        work_mem in proptest::sample::select(vec![64u64, 4096, 64 << 20]),
    ) {
        let (db, t1, t2) = make_db(&rows1, &rows2, work_mem);
        let (jplan, jout) = join_sort_plan(&t1, &t2);
        assert_differential(&db, &jplan, &jout);
        let (aplan, aout) = split_agg_plan(&t1);
        assert_differential(&db, &aplan, &aout);
    }
}
