//! Offline shim for the `proptest` crate (no crates.io access in the
//! build environment). Implements the subset of the API the workspace's
//! property tests use: the [`proptest!`] / `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `prop_shuffle`, `prop_oneof!`, [`strategy::Just`], [`arbitrary::any`],
//! numeric-range and char-class string strategies, and the
//! `prop::{collection, sample, option}` helper modules.
//!
//! Differences from the real crate: generation is driven by a fixed-seed
//! deterministic RNG (seeded per test from the test's name), and there is
//! **no shrinking** — a failing case panics with the assertion message
//! rather than a minimized counterexample. That trades debuggability for
//! zero dependencies; the invariants under test are unchanged.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure raised by `prop_assert!` and friends; carries the message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator; seeded from the test name so
    /// distinct properties see distinct (but reproducible) streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded_from(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of random values (subset of `proptest::strategy::Strategy`;
    /// no shrinking, so a strategy is just a seeded value source).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Randomly permute a generated collection.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy {
                f: Rc::new(move |rng| s.generate(rng)),
            }
        }

        /// Bounded-depth recursive generation: at each of `depth` levels the
        /// generator either stops at the base strategy or recurses through
        /// `recurse`. `_desired_size` / `_branch` are accepted for API
        /// compatibility; depth alone bounds tree growth here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                // 2/3 chance of recursing at each level keeps trees
                // interesting while depth bounds them.
                cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy { f: self.f.clone() }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Collections `prop_shuffle` knows how to permute.
    pub trait Shuffleable {
        fn shuffle(&mut self, rng: &mut TestRng);
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle(&mut self, rng: &mut TestRng) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                self.swap(i, rng.below(i + 1));
            }
        }
    }

    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for Shuffle<S>
    where
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.inner.generate(rng);
            v.shuffle(rng);
            v
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&'static str` char-class patterns like `"[a-z]{0,6}"` generate
    /// random strings; anything else is yielded literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_charclass(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below(hi - lo + 1);
                    (0..len).map(|_| chars[rng.below(chars.len())]).collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[<class>]{lo,hi}` where `<class>` is ranges (`a-z`) and/or
    /// single characters. Returns the expanded alphabet and length bounds.
    fn parse_charclass(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let (lo, hi) = (
            counts.0.trim().parse::<usize>().ok()?,
            counts.1.trim().parse::<usize>().ok()?,
        );
        if hi < lo {
            return None;
        }
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            None
        } else {
            Some((chars, lo, hi))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident / $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (subset of `proptest::arbitrary`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size`-bounded length with elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly pick one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    pub struct Subsequence<T: Clone> {
        source: Vec<T>,
        size: SizeRange,
    }

    /// Pick a random subsequence (order-preserving) with length in `size`.
    pub fn subsequence<T: Clone>(source: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        let size = size.into();
        assert!(
            size.hi <= source.len(),
            "subsequence size bound exceeds source length"
        );
        Subsequence { source, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            let mut idx: Vec<usize> = (0..self.source.len()).collect();
            for i in (1..idx.len()).rev() {
                idx.swap(i, rng.below(i + 1));
            }
            idx.truncate(k);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.source[i].clone()).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, matching proptest's default bias
    /// toward interesting (present) values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::seeded_from(concat!(module_path!(), "::", stringify!($name)));
                // Bind each strategy once, under its argument's name; the
                // per-case values shadow these bindings inside the loop.
                $(let $arg = $strat;)+
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!("property '{}' failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect bounds; collections respect size bounds.
        #[test]
        fn bounds_respected(
            v in -50i32..50,
            xs in prop::collection::vec(0u32..10, 2..5),
            s in "[a-c]{1,4}",
            pick in prop::sample::select(vec![7usize, 9]),
            sub in prop::sample::subsequence(vec![0usize, 1, 2], 1..=3),
        ) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(pick == 7 || pick == 9);
            prop_assert!(!sub.is_empty() && sub.len() <= 3);
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sub, &sorted, "subsequence preserves order");
        }

        /// prop_recursive bounds tree depth by its depth argument.
        #[test]
        fn recursion_bounded(t in (0i64..10).prop_map(Tree::Leaf).prop_recursive(
            3, 24, 4,
            |inner| prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
        )) {
            prop_assert!(depth(&t) <= 4);
        }

        /// oneof hits every arm; shuffle preserves the multiset.
        #[test]
        fn oneof_and_shuffle(
            which in prop_oneof![Just(0usize), Just(1), Just(2)],
            perm in Just(vec![1u8, 2, 3, 4]).prop_shuffle(),
            maybe in prop::option::of(0u8..4),
            flag in any::<bool>(),
        ) {
            prop_assert!(which < 3);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, vec![1u8, 2, 3, 4]);
            if let Some(m) = maybe {
                prop_assert!(m < 4);
            }
            // Exercise the bool strategy; either value is acceptable.
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::seeded_from("x");
        let mut b = crate::test_runner::TestRng::seeded_from("x");
        let mut c = crate::test_runner::TestRng::seeded_from("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
