//! Offline shim for the `criterion` crate (no crates.io access in the
//! build environment). Provides the measurement surface the workspace's
//! benches use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple timer underneath:
//! one warmup run, then up to `sample_size` timed iterations bounded by a
//! per-bench wall-clock budget, reporting mean time per iteration.
//!
//! No statistical analysis, HTML reports, or CLI parsing; arguments are
//! ignored so the binaries behave when run via `cargo test`/`cargo bench`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark; keeps `cargo test` runs of
/// `harness = false` bench targets bounded.
const PER_BENCH_BUDGET: Duration = Duration::from_secs(2);

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new<P: Display>(function: &str, p: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup; also the guaranteed single run
        self.iters += 1;
        let budget_start = Instant::now();
        for _ in 1..self.sample_size {
            if budget_start.elapsed() > PER_BENCH_BUDGET {
                break;
            }
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        // Mean over the timed iterations (the warmup run is untimed).
        let timed = self.iters.saturating_sub(1).max(1);
        let mean_ns = self.elapsed.as_nanos() as f64 / timed as f64;
        println!(
            "bench {name:<48} {mean_ns:>14.0} ns/iter (n={})",
            self.iters
        );
    }
}

/// Opaque value sink preventing the optimizer from deleting the measured
/// computation (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions under a runner name, with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI flags (e.g. `--bench`, `--test` from cargo) are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5);

        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
