//! The MPP-aware cost model.
//!
//! Costs are abstract work units. The model captures exactly the effects
//! the paper's evaluation turns on: per-tuple CPU work scaled by the
//! parallelism of the stream (distributed streams divide work across
//! segments, singleton streams do not), interconnect traffic for motions
//! (Gather converges on one host; Broadcast ships a full copy everywhere;
//! Redistribute parallelizes), hash-table build vs. probe asymmetry,
//! spilling penalties when build sides exceed working memory, and a skew
//! penalty that discounts the effective parallelism of hashed streams on
//! skewed keys ("histograms used to derive estimates for cardinality and
//! data skew", §4.1).

use orca_common::SegmentConfig;
use orca_expr::physical::{MotionKind, PhysicalOp};

/// Tunable cost constants. The defaults are hand-calibrated against the
/// execution simulator so that TAQO correlation is high by default; the
/// `fig12`-style experiments also perturb them to study mis-calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Base cost of streaming one tuple through an operator.
    pub tuple_proc: f64,
    /// Additional cost per byte of tuple width.
    pub byte_proc: f64,
    /// Cost per build-side row of a hash table.
    pub hash_build: f64,
    /// Cost per probe-side row.
    pub hash_probe: f64,
    /// Cost per (outer row × inner row) pair in a nested-loops join.
    pub nl_pair: f64,
    /// Multiplier for `n·log₂(n)` sort work.
    pub sort_factor: f64,
    /// Cost per input row of aggregation.
    pub agg_row: f64,
    /// Cost per byte crossing the interconnect.
    pub net_byte: f64,
    /// Cost per row materialized (Spool / CTE producer).
    pub materialize: f64,
    /// Random-access penalty multiplier for index scans.
    pub index_penalty: f64,
    /// Work multiplier once an operator spills to disk.
    pub spill_penalty: f64,
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams {
            tuple_proc: 1.0,
            byte_proc: 0.005,
            hash_build: 1.8,
            hash_probe: 1.0,
            nl_pair: 0.35,
            sort_factor: 0.9,
            agg_row: 1.1,
            net_byte: 0.02,
            materialize: 0.6,
            index_penalty: 1.6,
            spill_penalty: 3.0,
        }
    }
}

/// Size information for one operator input/output stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamInfo {
    pub rows: f64,
    /// Average row width in bytes.
    pub width: f64,
}

impl StreamInfo {
    pub fn new(rows: f64, width: u64) -> StreamInfo {
        StreamInfo {
            rows: rows.max(0.0),
            width: width.max(1) as f64,
        }
    }

    pub fn bytes(&self) -> f64 {
        self.rows * self.width
    }

    /// Per-segment view of a stream: `rows / parallelism` rows at the given
    /// width. The optimize-phase fast path builds these directly from a
    /// group's cached estimation snapshot (`GroupEst` carries the rows and
    /// the precomputed output width), so candidate costing does no
    /// per-candidate width or stats recomputation.
    pub fn per_segment(rows: f64, width: u64, parallelism: f64) -> StreamInfo {
        StreamInfo::new(rows / parallelism.max(1.0), width)
    }
}

/// Everything the model needs to cost one operator locally.
#[derive(Debug, Clone)]
pub struct CostCtx {
    pub output: StreamInfo,
    pub children: Vec<StreamInfo>,
    /// Effective parallelism of the operator's own stream (1 for
    /// singleton; up to `num_segments`, skew-discounted, otherwise).
    pub parallelism: f64,
}

/// The cost model: parameters plus the cluster description.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub params: CostParams,
    pub cluster: SegmentConfig,
}

impl CostModel {
    pub fn new(params: CostParams, cluster: SegmentConfig) -> CostModel {
        CostModel { params, cluster }
    }

    /// Effective parallelism for a stream: segments discounted by skew
    /// (coefficient of variation of key frequencies).
    pub fn effective_parallelism(&self, skew: f64) -> f64 {
        (self.cluster.num_segments as f64 / (1.0 + skew.max(0.0))).max(1.0)
    }

    /// Local (non-recursive) cost of one physical operator.
    pub fn op_cost(&self, op: &PhysicalOp, ctx: &CostCtx) -> f64 {
        let p = &self.params;
        let par = ctx.parallelism.max(1.0);
        let out = ctx.output;
        let tup = |s: StreamInfo| s.rows * (p.tuple_proc + p.byte_proc * s.width);
        match op {
            PhysicalOp::TableScan { .. } => tup(out) / par,
            PhysicalOp::IndexScan { .. } => tup(out) * p.index_penalty / par,
            PhysicalOp::Filter { .. } => {
                let input = ctx.children[0];
                (input.rows * p.tuple_proc * 0.5 + tup(out) * 0.1) / par
            }
            PhysicalOp::Project { exprs } => {
                out.rows * p.tuple_proc * 0.2 * (1.0 + exprs.len() as f64 * 0.1) / par
            }
            PhysicalOp::HashJoin { .. } => {
                let probe = ctx.children[0];
                let build = ctx.children[1];
                let mut cost = build.rows * (p.hash_build + p.byte_proc * build.width)
                    + probe.rows * p.hash_probe
                    + out.rows * p.tuple_proc * 0.2;
                // Spill when the per-segment build side exceeds work_mem.
                if build.bytes() / par > self.cluster.work_mem_bytes as f64 {
                    cost *= p.spill_penalty;
                }
                cost / par
            }
            PhysicalOp::NLJoin { .. } => {
                let outer = ctx.children[0];
                let inner = ctx.children[1];
                // Inner is spooled (rewindable); pairs dominate.
                (outer.rows * inner.rows * p.nl_pair + inner.rows * p.materialize) / par
            }
            PhysicalOp::HashAgg { .. } => {
                let input = ctx.children[0];
                let mut cost = input.rows * p.agg_row + out.rows * p.tuple_proc;
                if out.bytes() / par > self.cluster.work_mem_bytes as f64 {
                    cost *= p.spill_penalty;
                }
                cost / par
            }
            PhysicalOp::StreamAgg { .. } => {
                let input = ctx.children[0];
                (input.rows * p.agg_row * 0.6 + out.rows * p.tuple_proc) / par
            }
            PhysicalOp::Sort { .. } => {
                let n = (out.rows / par).max(2.0);
                par * n * n.log2() * p.sort_factor * (1.0 + p.byte_proc * out.width) / par
            }
            PhysicalOp::Limit { .. } => out.rows * p.tuple_proc,
            PhysicalOp::Motion { kind } => self.motion_cost(kind, ctx.children[0]),
            PhysicalOp::Spool => out.rows * p.materialize / par,
            PhysicalOp::Sequence { .. } => 0.0,
            PhysicalOp::CteProducer { .. } => out.rows * p.materialize / par,
            PhysicalOp::CteScan { .. } => tup(out) * 0.5 / par,
            PhysicalOp::ConstTable { rows, .. } => rows.len() as f64 * p.tuple_proc,
            PhysicalOp::AssertOneRow => p.tuple_proc,
            // Slicer-internal leaf; never costed (the slicer runs on
            // already-extracted plans, downstream of the Memo).
            PhysicalOp::ExchangeRecv { .. } => 0.0,
            PhysicalOp::UnionAll { .. } => out.rows * p.tuple_proc * 0.2 / par,
            PhysicalOp::HashSetOp { .. } => {
                let input: f64 = ctx.children.iter().map(|c| c.rows).sum();
                (input * p.hash_build + out.rows * p.tuple_proc) / par
            }
        }
    }

    /// Interconnect cost of a motion over an input stream.
    pub fn motion_cost(&self, kind: &MotionKind, input: StreamInfo) -> f64 {
        let p = &self.params;
        let segments = self.cluster.num_segments as f64;
        let bytes = input.bytes();
        match kind {
            // Everything converges on the master: the receiver is the
            // bottleneck, no parallelism discount.
            MotionKind::Gather => bytes * p.net_byte + input.rows * p.tuple_proc * 0.1,
            // Merge keeps order: slightly more receiver work.
            MotionKind::GatherMerge(_) => {
                bytes * p.net_byte * 1.15 + input.rows * p.tuple_proc * 0.2
            }
            // Pairwise exchange parallelizes across segments.
            MotionKind::Redistribute(_) => {
                (bytes * p.net_byte + input.rows * p.tuple_proc * 0.1) / segments.max(1.0)
            }
            // Every segment receives a full copy: per-receiver traffic is
            // the full input (segments × bytes total, over parallel links).
            MotionKind::Broadcast => bytes * p.net_byte + input.rows * p.tuple_proc * 0.1,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::new(CostParams::default(), SegmentConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::ColId;
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::ScalarExpr;
    use orca_expr::JoinKind;

    fn model(segments: usize) -> CostModel {
        CostModel::new(
            CostParams::default(),
            SegmentConfig::default().with_segments(segments),
        )
    }

    fn hash_join_op() -> PhysicalOp {
        PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(0)],
            right_keys: vec![ColId(1)],
            residual: None,
        }
    }

    #[test]
    fn parallelism_divides_work() {
        let m = model(16);
        let ctx_serial = CostCtx {
            output: StreamInfo::new(10_000.0, 16),
            children: vec![StreamInfo::new(10_000.0, 16)],
            parallelism: 1.0,
        };
        let ctx_parallel = CostCtx {
            parallelism: 16.0,
            ..ctx_serial.clone()
        };
        let op = PhysicalOp::Filter {
            pred: ScalarExpr::Const(orca_common::Datum::Bool(true)),
        };
        assert!(m.op_cost(&op, &ctx_serial) > 10.0 * m.op_cost(&op, &ctx_parallel));
    }

    #[test]
    fn broadcast_beats_redistribute_only_for_small_inputs() {
        let m = model(16);
        let small = StreamInfo::new(100.0, 32);
        let big = StreamInfo::new(1_000_000.0, 32);
        let redist = MotionKind::Redistribute(vec![ColId(0)]);
        let bcast = MotionKind::Broadcast;
        // For a tiny dimension table the costs are of the same magnitude
        // (broadcast avoids redistributing the big side at all) …
        let ratio_small = m.motion_cost(&bcast, small) / m.motion_cost(&redist, small);
        // … while for a big input broadcast is segments× worse.
        let ratio_big = m.motion_cost(&bcast, big) / m.motion_cost(&redist, big);
        assert!(ratio_small <= ratio_big + 1e-9);
        assert!(ratio_big > 8.0, "ratio_big = {ratio_big}");
    }

    #[test]
    fn gather_has_no_parallelism_discount() {
        let m = model(16);
        let s = StreamInfo::new(100_000.0, 32);
        let gather = m.motion_cost(&MotionKind::Gather, s);
        let redist = m.motion_cost(&MotionKind::Redistribute(vec![ColId(0)]), s);
        assert!(gather > redist * 8.0);
        // GatherMerge costs slightly more than Gather.
        let gm = m.motion_cost(&MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])), s);
        assert!(gm > gather);
    }

    #[test]
    fn spill_penalty_kicks_in_over_work_mem() {
        let mut m = model(4);
        m.cluster.work_mem_bytes = 1 << 10; // 1 KiB
        let small_build = CostCtx {
            output: StreamInfo::new(10.0, 16),
            children: vec![StreamInfo::new(10.0, 16), StreamInfo::new(10.0, 16)],
            parallelism: 4.0,
        };
        let big_build = CostCtx {
            output: StreamInfo::new(10_000.0, 16),
            children: vec![StreamInfo::new(10_000.0, 16), StreamInfo::new(10_000.0, 16)],
            parallelism: 4.0,
        };
        let per_row_small = m.op_cost(&hash_join_op(), &small_build) / 10.0;
        let per_row_big = m.op_cost(&hash_join_op(), &big_build) / 10_000.0;
        assert!(
            per_row_big > per_row_small * 2.0,
            "spill should raise per-row cost"
        );
    }

    #[test]
    fn skew_reduces_effective_parallelism() {
        let m = model(16);
        assert_eq!(m.effective_parallelism(0.0), 16.0);
        assert!(m.effective_parallelism(1.0) <= 8.0);
        assert_eq!(m.effective_parallelism(1e9), 1.0);
    }

    #[test]
    fn sort_is_superlinear() {
        let m = model(1);
        let c1 = CostCtx {
            output: StreamInfo::new(1_000.0, 8),
            children: vec![StreamInfo::new(1_000.0, 8)],
            parallelism: 1.0,
        };
        let c10 = CostCtx {
            output: StreamInfo::new(10_000.0, 8),
            children: vec![StreamInfo::new(10_000.0, 8)],
            parallelism: 1.0,
        };
        let op = PhysicalOp::Sort {
            order: OrderSpec::by(&[ColId(0)]),
        };
        assert!(m.op_cost(&op, &c10) > 10.0 * m.op_cost(&op, &c1));
    }
}
