//! Plan extraction (§4.1, Figure 6).
//!
//! "The best plan is extracted from the Memo based on the linkage structure
//! given by optimization requests... Each local hash table maps incoming
//! optimization request to corresponding child optimization requests."
//!
//! Extraction walks the winning [`crate::memo::Candidate`] of each
//! `(group, request)` context: take its expression, recurse into the child
//! requests it recorded, then wrap its enforcers around the result.
//! Candidates store child requests as interned [`ReqId`]s, so the recursion
//! never re-hashes a `ReqdProps` — the public entry points intern the
//! caller's request once and walk by id.

use crate::memo::{GroupId, Memo, Operator};
use crate::props::{ReqId, ReqdProps};
use orca_common::{OrcaError, Result};
use orca_expr::physical::PhysicalPlan;

/// Extract the least-cost plan for `(group, req)`.
///
/// `gid` may be any member of its §4.2 merge equivalence class —
/// `Memo::group` resolves it to the canonical group. The candidate's
/// expression id is trusted directly: `Memo::add_candidate` re-resolves
/// ids under the merge gate when recording, and no merge can run after
/// the optimization phase (its only inserts are self-referential
/// enforcers), so recorded ids cannot go stale by extraction time.
pub fn extract_plan(memo: &Memo, gid: GroupId, req: &ReqdProps) -> Result<PhysicalPlan> {
    extract_by_id(memo, gid, memo.intern_req(req))
}

/// Id-keyed extraction workhorse: the recursion over candidate child
/// requests stays in `ReqId` space.
pub fn extract_by_id(memo: &Memo, gid: GroupId, rid: ReqId) -> Result<PhysicalPlan> {
    let (op, children, child_reqs, enforcers) = {
        let group = memo.group(gid);
        let g = group.read();
        let cand = g.best_for(rid).ok_or_else(|| {
            let req = memo.req_props(rid);
            OrcaError::NoPlan(format!("no plan for request {req} in group {gid}"))
        })?;
        let e = &g.exprs[cand.expr];
        let Operator::Physical(op) = e.op.clone() else {
            return Err(OrcaError::Internal(format!(
                "best candidate in {gid} is not physical"
            )));
        };
        (
            op,
            e.children.clone(),
            cand.child_reqs.clone(),
            cand.enforcers.clone(),
        )
    };
    let child_plans: Vec<PhysicalPlan> = children
        .iter()
        .zip(&child_reqs)
        .map(|(c, creq)| extract_by_id(memo, *c, *creq))
        .collect::<Result<_>>()?;
    let mut plan = PhysicalPlan::new(op, child_plans);
    for enf in enforcers {
        plan = PhysicalPlan::new(enf, vec![plan]);
    }
    Ok(plan)
}

/// The estimated cost of the best plan for `(group, req)`.
pub fn best_cost(memo: &Memo, gid: GroupId, req: &ReqdProps) -> Result<f64> {
    let rid = memo.intern_req(req);
    let group = memo.group(gid);
    let g = group.read();
    g.best_for(rid)
        .map(|c| c.cost)
        .ok_or_else(|| OrcaError::NoPlan(format!("no plan for request {req} in group {gid}")))
}
