//! Optimization requests and derived plan properties (§4.1).
//!
//! "Optimization starts by submitting an initial optimization request to
//! the Memo's root group specifying query requirements such as result
//! distribution and sort order." A [`ReqdProps`] is exactly such a request;
//! [`DerivedProps`] is what a concrete physical plan delivers. The
//! enforcement framework ([`crate::search`]) plugs in Sort/Motion/Spool
//! enforcers whenever delivered properties do not satisfy the request.

use orca_expr::props::{DistSpec, OrderSpec};
use std::fmt;

/// Compact id of an interned [`ReqdProps`] (see `Memo::intern_req`). Within
/// one Memo, equal ids ⟺ equal requests, so context and goal tables key on
/// a `u32` instead of deep-hashing order/distribution specs per probe. Id
/// *values* are assigned in arrival order and differ between runs and
/// worker counts: they are safe for equality-keyed maps but must never
/// feed ordering decisions or content fingerprints (see DESIGN.md
/// "Hot-path caches").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId(pub u32);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A property request submitted to a group: "the least cost plan satisfying
/// `r` with a root physical operator in `g`".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReqdProps {
    pub order: OrderSpec,
    pub dist: DistSpec,
    /// Whether the plan must be re-scannable without recomputation (NL-join
    /// inners). Enforced by Spool.
    pub rewindable: bool,
}

impl ReqdProps {
    /// The unconstrained request `{Any, Any}`.
    pub fn any() -> ReqdProps {
        ReqdProps {
            order: OrderSpec::any(),
            dist: DistSpec::Any,
            rewindable: false,
        }
    }

    pub fn new(order: OrderSpec, dist: DistSpec) -> ReqdProps {
        debug_assert!(dist.is_requestable(), "cannot request {dist}");
        ReqdProps {
            order,
            dist,
            rewindable: false,
        }
    }

    pub fn singleton(order: OrderSpec) -> ReqdProps {
        ReqdProps::new(order, DistSpec::Singleton)
    }

    pub fn hashed(cols: Vec<orca_common::ColId>) -> ReqdProps {
        ReqdProps::new(OrderSpec::any(), DistSpec::Hashed(cols))
    }

    pub fn replicated() -> ReqdProps {
        ReqdProps::new(OrderSpec::any(), DistSpec::Replicated)
    }

    pub fn with_order(mut self, order: OrderSpec) -> ReqdProps {
        self.order = order;
        self
    }

    pub fn with_rewind(mut self) -> ReqdProps {
        self.rewindable = true;
        self
    }

    /// Drop the order requirement (what a Sort enforcer passes down).
    pub fn without_order(&self) -> ReqdProps {
        ReqdProps {
            order: OrderSpec::any(),
            dist: self.dist.clone(),
            rewindable: self.rewindable,
        }
    }

    /// Drop the distribution requirement (what a Motion enforcer passes
    /// down).
    pub fn without_dist(&self) -> ReqdProps {
        ReqdProps {
            order: self.order.clone(),
            dist: DistSpec::Any,
            rewindable: self.rewindable,
        }
    }

    /// Is this request trivially satisfied by anything?
    pub fn is_any(&self) -> bool {
        self.order.is_any() && self.dist == DistSpec::Any && !self.rewindable
    }
}

impl fmt::Display for ReqdProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}", self.dist, self.order)?;
        if self.rewindable {
            write!(f, ", rewind")?;
        }
        write!(f, "}}")
    }
}

/// What a concrete physical (sub)plan delivers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DerivedProps {
    pub order: OrderSpec,
    pub dist: DistSpec,
    pub rewindable: bool,
}

impl DerivedProps {
    pub fn new(order: OrderSpec, dist: DistSpec, rewindable: bool) -> DerivedProps {
        DerivedProps {
            order,
            dist,
            rewindable,
        }
    }

    /// Does this plan satisfy the request?
    pub fn satisfies(&self, req: &ReqdProps) -> bool {
        self.order.satisfies(&req.order)
            && self.dist.satisfies(&req.dist)
            && (!req.rewindable || self.rewindable)
    }
}

impl fmt::Display for DerivedProps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.dist, self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::ColId;

    #[test]
    fn satisfaction_combines_all_dimensions() {
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(1)]));
        let good = DerivedProps::new(
            OrderSpec::by(&[ColId(1), ColId(2)]),
            DistSpec::Singleton,
            false,
        );
        assert!(good.satisfies(&req));
        let wrong_order = DerivedProps::new(OrderSpec::any(), DistSpec::Singleton, false);
        assert!(!wrong_order.satisfies(&req));
        let wrong_dist = DerivedProps::new(OrderSpec::by(&[ColId(1)]), DistSpec::Random, false);
        assert!(!wrong_dist.satisfies(&req));
    }

    #[test]
    fn rewindability_is_orthogonal() {
        let req = ReqdProps::any().with_rewind();
        let streaming = DerivedProps::new(OrderSpec::any(), DistSpec::Random, false);
        let spooled = DerivedProps::new(OrderSpec::any(), DistSpec::Random, true);
        assert!(!streaming.satisfies(&req));
        assert!(spooled.satisfies(&req));
        // Extra rewindability is never harmful.
        assert!(spooled.satisfies(&ReqdProps::any()));
    }

    #[test]
    fn request_weakening_for_enforcers() {
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(1)]));
        assert!(req.without_order().order.is_any());
        assert_eq!(req.without_order().dist, DistSpec::Singleton);
        assert_eq!(req.without_dist().dist, DistSpec::Any);
        assert!(!req.is_any());
        assert!(ReqdProps::any().is_any());
    }

    #[test]
    fn display_matches_paper_notation() {
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(0)]));
        assert_eq!(req.to_string(), "{Singleton, <c0>}");
        assert_eq!(ReqdProps::any().to_string(), "{Any, Any}");
    }
}
