//! TAQO — Testing the Accuracy of Query Optimizers (§6.2).
//!
//! "TAQO measures the ability of the optimizer's cost model to order any
//! two given plans correctly, i.e., the plan with the higher estimated
//! cost will indeed run longer... This limitation [of evaluating every
//! plan] can be overcome by sampling plans uniformly from the search
//! space. Optimization requests' linkage structure provides the
//! infrastructure used by TAQO to build a uniform plan sampler based on
//! the method introduced in \[29\]" — the Waas & Galindo-Legaria
//! count-and-unrank scheme: count the plans reachable from each
//! `(group, request)` context, then decompose a uniform index into a
//! candidate choice plus per-child sub-indices.
//!
//! The correlation score "combines a number of measures including
//! importance of plans (the score penalizes optimizer more for cost
//! miss-estimation of very good plans), and distance between plans (the
//! score does not penalize optimizer for small differences in the
//! estimated costs of plans that are actually close in execution time)".

use crate::memo::{Candidate, GroupId, Memo, Operator};
use crate::props::{ReqId, ReqdProps};
use orca_common::hash::FnvHashMap;
use orca_common::{OrcaError, Result};
use orca_expr::physical::PhysicalPlan;

/// A sampled plan with its estimated cost.
#[derive(Debug, Clone)]
pub struct SampledPlan {
    pub plan: PhysicalPlan,
    pub estimated_cost: f64,
}

/// Deterministic xorshift PRNG (no external dependency; reproducible
/// sampling).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, bound)` for f64-sized counts.
    fn below(&mut self, bound: f64) -> f64 {
        (self.next_u64() as f64 / u64::MAX as f64) * bound
    }
}

/// Uniform plan sampler over one optimized Memo.
pub struct PlanSampler<'a> {
    memo: &'a Memo,
    /// Keyed on the interned request id: probes hash two `u32`s instead of
    /// cloning and deep-hashing a `ReqdProps` per lookup.
    counts: FnvHashMap<(GroupId, ReqId), f64>,
}

impl<'a> PlanSampler<'a> {
    pub fn new(memo: &'a Memo) -> PlanSampler<'a> {
        PlanSampler {
            memo,
            counts: FnvHashMap::default(),
        }
    }

    /// Number of distinct plans recorded for `(group, req)` — the product
    /// space of candidates × child plans. `gid` is canonicalized first so
    /// the memo table keys one entry per §4.2 merge equivalence class
    /// (child lists stored post-merge are already canonical; only
    /// caller-supplied roots can be stale shells).
    pub fn count(&mut self, gid: GroupId, req: &ReqdProps) -> f64 {
        let rid = self.memo.intern_req(req);
        self.count_by_id(gid, rid)
    }

    fn count_by_id(&mut self, gid: GroupId, rid: ReqId) -> f64 {
        let gid = self.memo.resolve(gid);
        if let Some(c) = self.counts.get(&(gid, rid)) {
            return *c;
        }
        // Temporarily claim 0 to break any accidental cycles.
        self.counts.insert((gid, rid), 0.0);
        let candidates: Vec<Candidate> = {
            let group = self.memo.group(gid);
            let g = group.read();
            g.ctxs
                .get(&rid)
                .map(|c| c.candidates.clone())
                .unwrap_or_default()
        };
        let mut total = 0.0;
        for cand in &candidates {
            total += self.candidate_count(gid, cand);
        }
        self.counts.insert((gid, rid), total);
        total
    }

    fn candidate_count(&mut self, gid: GroupId, cand: &Candidate) -> f64 {
        let children: Vec<GroupId> = {
            let group = self.memo.group(gid);
            let g = group.read();
            g.exprs[cand.expr].children.clone()
        };
        let mut prod = 1.0;
        for (child, creq) in children.iter().zip(&cand.child_reqs) {
            prod *= self.count_by_id(*child, *creq);
        }
        prod
    }

    /// Sample `n` plans uniformly (with replacement) from the space of
    /// `(root, req)` plans.
    pub fn sample(
        &mut self,
        root: GroupId,
        req: &ReqdProps,
        n: usize,
        seed: u64,
    ) -> Result<Vec<SampledPlan>> {
        let rid = self.memo.intern_req(req);
        let total = self.count_by_id(root, rid);
        if total < 1.0 {
            return Err(OrcaError::Internal(
                "no plans recorded for the root request".into(),
            ));
        }
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let r = rng.below(total);
                self.unrank(root, rid, r)
            })
            .collect()
    }

    /// Unrank the `r`-th plan of `(gid, req)` (mixed-radix decomposition
    /// over candidates and children).
    fn unrank(&mut self, gid: GroupId, rid: ReqId, mut r: f64) -> Result<SampledPlan> {
        let candidates: Vec<Candidate> = {
            let group = self.memo.group(gid);
            let g = group.read();
            g.ctxs
                .get(&rid)
                .map(|c| c.candidates.clone())
                .unwrap_or_default()
        };
        for cand in &candidates {
            let w = self.candidate_count(gid, cand);
            if r < w {
                return self.build_plan(gid, cand, r);
            }
            r -= w;
        }
        // Floating-point slop: fall back to the last candidate.
        let cand = candidates
            .last()
            .ok_or_else(|| OrcaError::Internal(format!("no candidates in {gid}")))?
            .clone();
        self.build_plan(gid, &cand, 0.0)
    }

    fn build_plan(&mut self, gid: GroupId, cand: &Candidate, mut r: f64) -> Result<SampledPlan> {
        let (op, children) = {
            let group = self.memo.group(gid);
            let g = group.read();
            let e = &g.exprs[cand.expr];
            let Operator::Physical(op) = e.op.clone() else {
                return Err(OrcaError::Internal("sampled logical expression".into()));
            };
            (op, e.children.clone())
        };
        // Decompose r over the children (mixed radix: child i's digit is
        // r mod count_i). The sampled plan's estimate follows the sampled
        // child choices: candidate.cost embeds the *best* child costs, so
        // swap those out for the sampled children's estimates.
        let mut child_plans = Vec::with_capacity(children.len());
        let mut estimated_cost = cand.cost;
        for (child, creq) in children.iter().zip(&cand.child_reqs) {
            let c = self.count_by_id(*child, *creq).max(1.0);
            let digit = r % c;
            r = (r / c).floor();
            let best_child_cost = {
                let group = self.memo.group(*child);
                let g = group.read();
                g.best_for(*creq).map(|b| b.cost).unwrap_or(0.0)
            };
            let sampled = self.unrank(*child, *creq, digit)?;
            estimated_cost += sampled.estimated_cost - best_child_cost;
            child_plans.push(sampled.plan);
        }
        let mut plan = PhysicalPlan::new(op, child_plans);
        for enf in &cand.enforcers {
            plan = PhysicalPlan::new(enf.clone(), vec![plan]);
        }
        Ok(SampledPlan {
            plan,
            estimated_cost,
        })
    }
}

/// TAQO correlation score between estimated costs and actual costs.
///
/// For every plan pair that is not "too close" in actual cost (relative
/// distance below `distance_eps`), check whether the estimate orders the
/// pair correctly; weight each pair by the importance of its better plan
/// (`1 / rank`), so mis-ordering good plans hurts more. Returns a score in
/// `[0, 1]`; 1.0 = perfect ordering.
pub fn correlation_score(pairs: &[(f64, f64)], distance_eps: f64) -> f64 {
    if pairs.len() < 2 {
        return 1.0;
    }
    // Rank plans by actual cost (1 = best).
    let mut by_actual: Vec<usize> = (0..pairs.len()).collect();
    by_actual.sort_by(|&a, &b| {
        pairs[a]
            .1
            .partial_cmp(&pairs[b].1)
            .expect("finite actual costs")
    });
    let mut rank = vec![0usize; pairs.len()];
    for (r, &i) in by_actual.iter().enumerate() {
        rank[i] = r + 1;
    }
    let mut weighted_total = 0.0;
    let mut weighted_concordant = 0.0;
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let (est_i, act_i) = pairs[i];
            let (est_j, act_j) = pairs[j];
            let scale = act_i.abs().max(act_j.abs()).max(1e-12);
            if (act_i - act_j).abs() / scale < distance_eps {
                // Too close in actual cost: either order is fine.
                continue;
            }
            let est_scale = est_i.abs().max(est_j.abs()).max(1e-12);
            if (est_i - est_j).abs() / est_scale < 1e-9 {
                // Tied estimates cannot order the pair: count as a miss
                // (weighted below) rather than skipping silently.
                weighted_total += 1.0 / rank[i].min(rank[j]) as f64;
                continue;
            }
            let weight = 1.0 / rank[i].min(rank[j]) as f64;
            weighted_total += weight;
            let concordant = (est_i - est_j) * (act_i - act_j) > 0.0;
            if concordant {
                weighted_concordant += weight;
            }
        }
    }
    if weighted_total == 0.0 {
        1.0
    } else {
        weighted_concordant / weighted_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverted_orderings() {
        let perfect: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect();
        assert_eq!(correlation_score(&perfect, 0.01), 1.0);
        let inverted: Vec<(f64, f64)> = (0..10).map(|i| (-(i as f64), i as f64 * 2.0)).collect();
        assert_eq!(correlation_score(&inverted, 0.01), 0.0);
    }

    #[test]
    fn close_actual_costs_are_forgiven() {
        // Two plans 0.1% apart in actual cost, mis-ordered by the estimate:
        // with a 1% distance threshold the pair does not count.
        let pairs = vec![(10.0, 100.0), (9.0, 100.05)];
        assert_eq!(correlation_score(&pairs, 0.01), 1.0);
        // With a tighter threshold it does.
        assert_eq!(correlation_score(&pairs, 1e-6), 0.0);
    }

    #[test]
    fn importance_weights_good_plans_heavier() {
        // Plan ranked #1 mis-ordered vs everything → big penalty.
        let bad_best = vec![(100.0, 1.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0)];
        // Worst plan mis-ordered vs everything → smaller penalty.
        let bad_worst = vec![(1.0, 1.0), (2.0, 10.0), (3.0, 20.0), (0.5, 30.0)];
        let s_best = correlation_score(&bad_best, 0.01);
        let s_worst = correlation_score(&bad_worst, 0.01);
        assert!(
            s_best < s_worst,
            "mis-ranking the best plan should hurt more ({s_best} vs {s_worst})"
        );
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(42);
        for _ in 0..100 {
            let v = c.below(10.0);
            assert!((0.0..10.0).contains(&v));
        }
    }
}
