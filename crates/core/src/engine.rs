//! The optimizer facade: configuration, the §4.1 workflow, multi-stage
//! optimization, and the DXL entry points of Figure 2.

use crate::cost::{CostModel, CostParams};
use crate::memo::{GroupId, Memo, SearchMetricsSnapshot};
use crate::preprocess::preprocess;
use crate::props::ReqdProps;
use crate::rules::RuleSet;
use crate::search::{self, SearchCtx};
use crate::stats::StatsDeriver;
use orca_catalog::provider::MdProvider;
use orca_catalog::{MdAccessor, MdCache};
use orca_common::{ColId, MdId, OrcaError, Result, SegmentConfig};
use orca_dxl::{DxlPlan, DxlQuery};
use orca_expr::logical::LogicalExpr;
use orca_expr::physical::PhysicalPlan;
use orca_expr::props::DistSpec;
use orca_expr::{ColumnRegistry, OrderSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One optimization stage (§4.1 "Multi-Stage Optimization"): "a complete
/// optimization workflow using a subset of transformation rules and
/// (optional) time-out and cost threshold".
#[derive(Debug, Clone, Default)]
pub struct StageConfig {
    /// Rules enabled in this stage (`None` = all).
    pub rules: Option<Vec<&'static str>>,
    /// Give up on the stage after this long.
    pub timeout: Option<Duration>,
    /// Stop staging once a plan at or below this cost is found.
    pub cost_threshold: Option<f64>,
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Worker threads for the job scheduler (§4.2). 1 = serial.
    pub workers: usize,
    /// Cluster description shared with the cost model.
    pub cluster: SegmentConfig,
    pub cost_params: CostParams,
    /// Optimization stages, tried in order. Empty = single unrestricted
    /// stage.
    pub stages: Vec<StageConfig>,
    /// Rules disabled globally (trace-flag style).
    pub disabled_rules: Vec<&'static str>,
    /// Testing hook (§6.1): raise an injected fault at the named point
    /// ("explore", "implement", "optimize").
    pub inject_fault: Option<&'static str>,
    /// Shards in the Memo's duplicate-detection index (rounded up to a
    /// power of two; 1 serializes every insert, useful for exercising the
    /// shard-collision counter in tests).
    pub dedup_shards: usize,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            workers: 1,
            cluster: SegmentConfig::default(),
            cost_params: CostParams::default(),
            stages: Vec::new(),
            disabled_rules: Vec::new(),
            inject_fault: None,
            dedup_shards: crate::memo::DEDUP_SHARDS,
        }
    }
}

impl OptimizerConfig {
    pub fn with_workers(mut self, workers: usize) -> OptimizerConfig {
        self.workers = workers.max(1);
        self
    }

    pub fn with_cluster(mut self, cluster: SegmentConfig) -> OptimizerConfig {
        self.cluster = cluster;
        self
    }

    pub fn with_dedup_shards(mut self, shards: usize) -> OptimizerConfig {
        self.dedup_shards = shards.max(1);
        self
    }

    /// Serialize to key/value pairs for AMPERe dumps.
    pub fn to_kv(&self) -> Vec<(String, String)> {
        let mut kv = vec![
            ("workers".into(), self.workers.to_string()),
            ("segments".into(), self.cluster.num_segments.to_string()),
            ("dedup_shards".into(), self.dedup_shards.to_string()),
        ];
        for r in &self.disabled_rules {
            kv.push(("disabled_rule".into(), (*r).to_string()));
        }
        if let Some(f) = self.inject_fault {
            kv.push(("inject_fault".into(), f.to_string()));
        }
        kv
    }

    /// Rebuild (partially) from dump key/value pairs.
    pub fn from_kv(kv: &[(String, String)]) -> OptimizerConfig {
        let mut cfg = OptimizerConfig::default();
        for (k, v) in kv {
            match k.as_str() {
                "workers" => cfg.workers = v.parse().unwrap_or(1),
                "segments" => {
                    cfg.cluster.num_segments = v.parse().unwrap_or(cfg.cluster.num_segments)
                }
                "dedup_shards" => cfg.dedup_shards = v.parse().unwrap_or(cfg.dedup_shards),
                _ => {}
            }
        }
        cfg
    }
}

/// Query-level requirements (what Listing 1 encodes alongside the tree).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReqs {
    pub output_cols: Vec<ColId>,
    pub order: OrderSpec,
    pub dist: DistSpec,
}

impl QueryReqs {
    pub fn gather_all(output_cols: Vec<ColId>) -> QueryReqs {
        QueryReqs {
            output_cols,
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
        }
    }
}

/// Diagnostics from one optimization run (feeds the §7.2.2 resource
/// statistics experiment).
#[derive(Debug, Clone, Default)]
pub struct OptStats {
    pub groups: usize,
    pub group_exprs: usize,
    pub jobs_spawned: usize,
    pub job_steps: usize,
    /// Scheduler goal requests answered by an existing job (§4.2 dedup).
    pub goal_hits: usize,
    pub memo_bytes: u64,
    pub metadata_bytes: u64,
    pub optimization_time: Duration,
    /// Per-phase wall time of the winning stage (§4.2 scaling bench needs
    /// exploration separated out, now that it runs on the full pool).
    pub explore_time: Duration,
    pub implement_time: Duration,
    pub optimize_time: Duration,
    pub plan_cost: f64,
    pub stages_run: usize,
    /// Memo-level search counters (dedup hits, shard collisions, pruned
    /// contexts, ...) from the winning stage.
    pub search: SearchMetricsSnapshot,
    /// Distinct metadata ids (version included) accessed during
    /// optimization — the invalidation component of a plan-cache key: a
    /// `bump_table_version` changes the current id set, so a cached plan
    /// stored under the old set misses on next lookup.
    pub md_ids: Vec<MdId>,
    /// The deadline expired mid-search: the plan (if any) is the best found
    /// so far, not the exhaustive optimum. Serving layers surface this as
    /// `degraded`.
    pub timed_out: bool,
}

/// The optimizer. Holds the metadata cache (shared across sessions) and a
/// provider plug-in; each `optimize` call is an independent session with
/// its own `MdAccessor` (§5).
pub struct Optimizer {
    provider: Arc<dyn MdProvider>,
    cache: Arc<MdCache>,
    pub config: OptimizerConfig,
}

impl Optimizer {
    pub fn new(provider: Arc<dyn MdProvider>, config: OptimizerConfig) -> Optimizer {
        Optimizer {
            provider,
            cache: MdCache::new(),
            config,
        }
    }

    pub fn provider(&self) -> &Arc<dyn MdProvider> {
        &self.provider
    }

    pub fn cache(&self) -> &Arc<MdCache> {
        &self.cache
    }

    /// DXL entry point (Figure 2): DXL query in, DXL plan out.
    pub fn optimize_dxl(&self, dxl: &str) -> Result<String> {
        let query = orca_dxl::parse_query(dxl, self.provider.as_ref())?;
        let (plan, stats) = self.optimize_query(&query)?;
        Ok(orca_dxl::plan_to_dxl(&DxlPlan {
            plan,
            cost: stats.plan_cost,
        }))
    }

    /// Optimize a parsed DXL query document.
    pub fn optimize_query(&self, q: &DxlQuery) -> Result<(PhysicalPlan, OptStats)> {
        self.optimize_query_with_deadline(q, None)
    }

    /// Optimize a parsed DXL query document under an optional wall-clock
    /// deadline (the serving layer's per-request budget).
    pub fn optimize_query_with_deadline(
        &self,
        q: &DxlQuery,
        deadline: Option<Instant>,
    ) -> Result<(PhysicalPlan, OptStats)> {
        let registry = Arc::new(ColumnRegistry::new());
        for (name, ty) in &q.columns {
            registry.fresh(name, *ty);
        }
        let reqs = QueryReqs {
            output_cols: q.output_cols.clone(),
            order: q.order.clone(),
            dist: q.dist.clone(),
        };
        self.optimize_inner(&q.expr, &registry, &reqs, deadline)
    }

    /// Optimize a logical expression tree under query requirements.
    ///
    /// This runs the full §4.1 workflow per stage: preprocess → copy-in →
    /// exploration → statistics derivation → implementation →
    /// optimization → extraction.
    pub fn optimize(
        &self,
        expr: &LogicalExpr,
        registry: &Arc<ColumnRegistry>,
        reqs: &QueryReqs,
    ) -> Result<(PhysicalPlan, OptStats)> {
        self.optimize_inner(expr, registry, reqs, None)
    }

    /// Like [`Optimizer::optimize`] but with a hard wall-clock deadline
    /// spanning *all* stages. On expiry the best plan found so far is
    /// returned with `OptStats::timed_out = true`; if no stage produced any
    /// plan by then, a typed [`OrcaError::Timeout`] surfaces so callers can
    /// degrade (e.g. to a heuristic fallback plan) instead of failing.
    pub fn optimize_with_deadline(
        &self,
        expr: &LogicalExpr,
        registry: &Arc<ColumnRegistry>,
        reqs: &QueryReqs,
        deadline: Instant,
    ) -> Result<(PhysicalPlan, OptStats)> {
        self.optimize_inner(expr, registry, reqs, Some(deadline))
    }

    fn optimize_inner(
        &self,
        expr: &LogicalExpr,
        registry: &Arc<ColumnRegistry>,
        reqs: &QueryReqs,
        deadline: Option<Instant>,
    ) -> Result<(PhysicalPlan, OptStats)> {
        let started = Instant::now();
        let accessor = MdAccessor::new(self.cache.clone(), self.provider.clone());
        let preprocessed = preprocess(expr, registry)?;
        let req = ReqdProps::new(reqs.order.clone(), reqs.dist.clone());

        let stages: Vec<StageConfig> = if self.config.stages.is_empty() {
            vec![StageConfig::default()]
        } else {
            self.config.stages.clone()
        };

        let mut best: Option<(PhysicalPlan, f64, OptStats)> = None;
        let mut last_err: Option<OrcaError> = None;
        let mut stages_run = 0;
        for stage in &stages {
            stages_run += 1;
            match self.run_stage(&preprocessed, registry, &accessor, &req, stage, deadline) {
                Ok((plan, cost, mut stats)) => {
                    stats.metadata_bytes = self.cache.bytes();
                    let better = best.as_ref().map(|(_, c, _)| cost < *c).unwrap_or(true);
                    if better {
                        best = Some((plan, cost, stats));
                    }
                    if let (Some(th), Some((_, c, _))) = (stage.cost_threshold, best.as_ref()) {
                        if *c <= th {
                            break;
                        }
                    }
                    if stage.cost_threshold.is_none() && stages.len() == 1 {
                        break;
                    }
                }
                Err(e) => {
                    last_err = Some(e);
                }
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                // The request's whole budget is spent; later stages would
                // abort on their first scheduler step anyway.
                break;
            }
        }
        match best {
            Some((plan, cost, mut stats)) => {
                stats.plan_cost = cost;
                stats.optimization_time = started.elapsed();
                stats.stages_run = stages_run;
                stats.md_ids = accessor.accessed_mdids();
                Ok((plan, stats))
            }
            None => {
                Err(last_err
                    .unwrap_or_else(|| OrcaError::NoPlan("no stage produced a plan".into())))
            }
        }
    }

    /// Like [`Optimizer::optimize`] but single-stage, returning the Memo
    /// alongside the plan — the entry point TAQO's plan sampler needs
    /// (§6.2: "optimization requests' linkage structure provides the
    /// infrastructure used by TAQO to build a uniform plan sampler").
    pub fn optimize_with_memo(
        &self,
        expr: &LogicalExpr,
        registry: &Arc<ColumnRegistry>,
        reqs: &QueryReqs,
    ) -> Result<(Memo, GroupId, ReqdProps, PhysicalPlan, f64)> {
        let accessor = MdAccessor::new(self.cache.clone(), self.provider.clone());
        let preprocessed = preprocess(expr, registry)?;
        let req = ReqdProps::new(reqs.order.clone(), reqs.dist.clone());
        let mut rules = RuleSet::all();
        for r in &self.config.disabled_rules {
            let _ = rules.disable(r);
        }
        let cost = CostModel::new(self.config.cost_params.clone(), self.config.cluster.clone());
        let memo = Memo::with_shards(self.config.dedup_shards);
        let root = memo.copy_in(&preprocessed);
        let ctx = SearchCtx {
            memo: &memo,
            rules: &rules,
            registry,
            md: &accessor,
            cost: &cost,
        };
        search::explore(&ctx, root, self.config.workers)?;
        let deriver =
            StatsDeriver::new(&memo, &accessor, registry, self.config.cluster.num_segments);
        for g in memo.canonical_groups() {
            deriver.derive(g)?;
        }
        search::implement(&ctx, root, self.config.workers)?;
        search::optimize(&ctx, root, &req, self.config.workers)?;
        let plan = crate::extract::extract_plan(&memo, root, &req)?;
        let plan_cost = crate::extract::best_cost(&memo, root, &req)?;
        Ok((memo, root, req, plan, plan_cost))
    }

    fn run_stage(
        &self,
        expr: &LogicalExpr,
        registry: &Arc<ColumnRegistry>,
        accessor: &MdAccessor,
        req: &ReqdProps,
        stage: &StageConfig,
        global_deadline: Option<Instant>,
    ) -> Result<(PhysicalPlan, f64, OptStats)> {
        let mut rules = RuleSet::all();
        if let Some(enabled) = &stage.rules {
            rules.enable_only(enabled);
        }
        for r in &self.config.disabled_rules {
            // Ignore unknown names: disabled lists may target rules of
            // other stages.
            let _ = rules.disable(r);
        }
        // A stage runs under the tighter of its own timeout and the
        // request-level deadline.
        let stage_deadline = stage.timeout.map(|t| Instant::now() + t);
        let deadline = match (stage_deadline, global_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let cost = CostModel::new(self.config.cost_params.clone(), self.config.cluster.clone());
        let memo = Memo::with_shards(self.config.dedup_shards);
        let root = memo.copy_in(expr);
        let ctx = SearchCtx {
            memo: &memo,
            rules: &rules,
            registry,
            md: accessor,
            cost: &cost,
        };

        self.fault_check("explore")?;
        let t_explore = Instant::now();
        let explore_to = search::explore_with_deadline(&ctx, root, self.config.workers, deadline)?;
        let explore_time = t_explore.elapsed();

        // Statistics derivation (§4.1 step 2) for every canonical group the
        // exploration produced (merged shells resolve to their winners).
        let deriver =
            StatsDeriver::new(&memo, accessor, registry, self.config.cluster.num_segments);
        for g in memo.canonical_groups() {
            deriver.derive(g)?;
        }

        self.fault_check("implement")?;
        let t_implement = Instant::now();
        let implement_to =
            search::implement_with_deadline(&ctx, root, self.config.workers, deadline)?;
        let implement_time = t_implement.elapsed();

        self.fault_check("optimize")?;
        let t_optimize = Instant::now();
        let run = search::optimize_with_deadline(&ctx, root, req, self.config.workers, deadline)?;
        let optimize_time = t_optimize.elapsed();

        let timed_out = explore_to || implement_to || run.timed_out;
        // Extraction walks only fully-costed optimization contexts, so even
        // after a mid-phase timeout it yields a consistent best-so-far plan —
        // or fails cleanly when no context finished costing, which under a
        // timeout is reported as the typed `Timeout` the serving layer
        // degrades on (not as a spurious `NoPlan`).
        let extracted = crate::extract::extract_plan(&memo, root, req)
            .and_then(|plan| crate::extract::best_cost(&memo, root, req).map(|c| (plan, c)));
        let (plan, plan_cost) = match extracted {
            Ok(pc) => pc,
            Err(e) if timed_out => {
                return Err(OrcaError::Timeout(format!(
                    "deadline expired before any complete plan was costed ({e})"
                )));
            }
            Err(e) => return Err(e),
        };
        let stats = OptStats {
            groups: memo.num_canonical_groups(),
            group_exprs: memo.num_exprs(),
            jobs_spawned: run.jobs_spawned,
            job_steps: run.job_steps,
            goal_hits: run.goal_hits,
            memo_bytes: memo.bytes(),
            metadata_bytes: 0,
            optimization_time: Duration::ZERO,
            explore_time,
            implement_time,
            optimize_time,
            plan_cost,
            stages_run: 0,
            search: memo.metrics_snapshot(),
            md_ids: Vec::new(),
            timed_out,
        };
        Ok((plan, plan_cost, stats))
    }

    fn fault_check(&self, point: &str) -> Result<()> {
        if self.config.inject_fault.is_some_and(|f| f == point) {
            return Err(OrcaError::InjectedFault(format!(
                "injected fault at {point}"
            )));
        }
        Ok(())
    }
}
