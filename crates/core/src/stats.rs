//! Statistics derivation (§4.1 step 2).
//!
//! "Orca's statistics derivation mechanism is triggered to compute
//! statistics for the Memo groups... In order to derive statistics for a
//! target group, Orca picks the group expression with the highest promise
//! of delivering reliable statistics" — for joins, the expression with the
//! fewest join conditions, because "the larger the number of join
//! conditions, the higher the chance that estimation errors are propagated
//! and amplified."
//!
//! Derivation happens once per group on the compact Memo (never on expanded
//! plans), and the resulting [`GroupStats`] objects are attached to groups
//! where cost computation reads them.

use crate::memo::{GroupId, Memo, Operator};
use orca_catalog::stats::Histogram;
use orca_catalog::MdAccessor;
use orca_common::hash::{fnv_hash, FnvHashMap};
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::logical::{JoinKind, LogicalOp, SetOpKind};
use orca_expr::scalar::{AggFunc, CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;
use std::sync::Arc;

/// Default selectivity for predicates we cannot estimate (PostgreSQL's
/// time-honored 1/3).
pub const DEFAULT_SEL: f64 = 0.33;
/// Damping factor for conjunct correlation (§4.1's error-propagation
/// containment; GPORCA uses 0.75).
pub const DAMPING: f64 = 0.75;

/// Statistics for one column inside a group.
#[derive(Debug, Clone)]
pub struct ColStat {
    pub ndv: f64,
    pub null_frac: f64,
    pub width: u64,
    pub hist: Option<Histogram>,
}

impl ColStat {
    fn unknown(width: u64, rows: f64) -> ColStat {
        ColStat {
            ndv: rows.max(1.0),
            null_frac: 0.0,
            width,
            hist: None,
        }
    }

    fn scaled(&self, f: f64) -> ColStat {
        ColStat {
            ndv: (self.ndv * f.min(1.0)).max(1.0),
            null_frac: self.null_frac,
            width: self.width,
            hist: self.hist.as_ref().map(|h| h.scale(f.min(1.0))),
        }
    }
}

/// A statistics object: "mainly a collection of column histograms used to
/// derive estimates for cardinality and data skew".
#[derive(Debug, Clone)]
pub struct GroupStats {
    pub rows: f64,
    pub cols: FnvHashMap<ColId, ColStat>,
}

impl GroupStats {
    pub fn empty() -> GroupStats {
        GroupStats {
            rows: 0.0,
            cols: FnvHashMap::default(),
        }
    }

    pub fn col(&self, c: ColId) -> Option<&ColStat> {
        self.cols.get(&c)
    }

    /// NDV of a column, defaulting to row count when unknown.
    pub fn ndv(&self, c: ColId) -> f64 {
        self.col(c).map(|s| s.ndv).unwrap_or(self.rows).max(1.0)
    }

    /// Skew estimate of a column (coefficient of variation of value
    /// frequencies) — penalizes hashed distribution on this key.
    pub fn skew(&self, c: ColId) -> f64 {
        self.col(c)
            .and_then(|s| s.hist.as_ref())
            .map(Histogram::skew)
            .unwrap_or(0.0)
    }

    /// Average output row width over `cols`.
    pub fn width_of(&self, cols: &[ColId], registry: &ColumnRegistry) -> u64 {
        cols.iter()
            .map(|c| {
                self.col(*c)
                    .map(|s| s.width)
                    .unwrap_or_else(|| registry.width(*c))
            })
            .sum::<u64>()
            .max(1)
    }

    fn scale_all(&self, f: f64) -> GroupStats {
        GroupStats {
            rows: self.rows * f,
            cols: self.cols.iter().map(|(c, s)| (*c, s.scaled(f))).collect(),
        }
    }
}

/// Derives and memoizes statistics for Memo groups.
pub struct StatsDeriver<'a> {
    pub memo: &'a Memo,
    pub md: &'a MdAccessor,
    pub registry: &'a ColumnRegistry,
    /// Segment count: local-stage aggregates emit up to one group per
    /// segment per key, so their cardinality scales with it.
    pub segments: usize,
}

impl<'a> StatsDeriver<'a> {
    pub fn new(
        memo: &'a Memo,
        md: &'a MdAccessor,
        registry: &'a ColumnRegistry,
        segments: usize,
    ) -> Self {
        StatsDeriver {
            memo,
            md,
            registry,
            segments,
        }
    }

    /// Derive (or fetch memoized) statistics for a group. `gid` may be any
    /// member of its merge equivalence class: `Memo::stats`/`Memo::group`
    /// resolve through the §4.2 union-find, so stats are derived for and
    /// memoized on the canonical group exactly once.
    pub fn derive(&self, gid: GroupId) -> Result<Arc<GroupStats>> {
        if let Some(s) = self.memo.stats(gid) {
            return Ok(s);
        }
        // Pick the most promising logical expression. Promise ties are
        // broken by a content fingerprint (operator + child output columns),
        // never by expression id: under the parallel search, insertion order
        // of equivalent expressions varies between runs, and the stats source
        // must not — otherwise estimates (and plan choice) become
        // nondeterministic.
        let candidates: Vec<(u32, LogicalOp, Vec<GroupId>)> = {
            let group = self.memo.group(gid);
            let g = group.read();
            g.logical_exprs()
                .filter_map(|(_, e)| match &e.op {
                    Operator::Logical(op) => Some((promise(op), op.clone(), e.children.clone())),
                    Operator::Physical(_) => None,
                })
                .collect()
        };
        let mut best: Option<(u32, u64, LogicalOp, Vec<GroupId>)> = None;
        for (p, op, children) in candidates {
            let child_cols: Vec<Vec<ColId>> = children
                .iter()
                .map(|c| self.memo.group(*c).read().output_cols.clone())
                .collect();
            let fp = fnv_hash(&(&op, &child_cols));
            let replace = match &best {
                None => true,
                Some((bp, bfp, _, _)) => p > *bp || (p == *bp && fp < *bfp),
            };
            if replace {
                best = Some((p, fp, op, children));
            }
        }
        let (_, _, op, children) = best
            .ok_or_else(|| OrcaError::Internal(format!("group {gid} has no logical expression")))?;
        // Recursively derive children (top-down requests, bottom-up
        // combination — Figure 5).
        let child_stats: Vec<Arc<GroupStats>> = children
            .iter()
            .map(|c| self.derive(*c))
            .collect::<Result<_>>()?;
        let stats = Arc::new(self.derive_op(&op, &children, &child_stats)?);
        let group = self.memo.group(gid);
        let mut g = group.write();
        if g.stats.is_none() {
            g.stats = Some(stats.clone());
        }
        Ok(g.stats.clone().expect("just set"))
    }

    fn derive_op(
        &self,
        op: &LogicalOp,
        children: &[GroupId],
        child: &[Arc<GroupStats>],
    ) -> Result<GroupStats> {
        Ok(match op {
            LogicalOp::Get { table, cols, parts } => self.derive_get(table, cols, parts)?,
            LogicalOp::Select { pred } => self.derive_filter_cached(children[0], &child[0], pred),
            LogicalOp::Project { exprs } => {
                let mut out = GroupStats {
                    rows: child[0].rows,
                    cols: child[0].cols.clone(),
                };
                for (c, e) in exprs {
                    if let ScalarExpr::ColRef(src) = e {
                        if let Some(s) = child[0].col(*src) {
                            out.cols.insert(*c, s.clone());
                            continue;
                        }
                    }
                    out.cols
                        .insert(*c, ColStat::unknown(self.registry.width(*c), out.rows));
                }
                out
            }
            LogicalOp::Join { kind, pred } => {
                self.derive_join_cached(*kind, pred, children[0], children[1], &child[0], &child[1])
            }
            LogicalOp::GbAgg {
                group_cols,
                aggs,
                stage,
            } => {
                let mut out = derive_agg(&child[0], group_cols, aggs, self.registry);
                if *stage == orca_expr::logical::AggStage::Local {
                    // Each segment may hold every group key.
                    out.rows = (out.rows * self.segments as f64).min(child[0].rows.max(1.0));
                }
                out
            }
            LogicalOp::Limit { count, offset, .. } => {
                let avail = (child[0].rows - *offset as f64).max(0.0);
                let rows = count.map(|c| avail.min(c as f64)).unwrap_or(avail);
                let f = if child[0].rows > 0.0 {
                    rows / child[0].rows
                } else {
                    0.0
                };
                child[0].scale_all(f)
            }
            LogicalOp::SetOp {
                kind,
                output,
                input_cols,
            } => derive_setop(*kind, output, input_cols, child, self.registry),
            LogicalOp::Sequence { .. } => GroupStats {
                rows: child[1].rows,
                cols: child[1].cols.clone(),
            },
            LogicalOp::CteProducer { .. } => GroupStats {
                rows: child[0].rows,
                cols: child[0].cols.clone(),
            },
            LogicalOp::CteConsumer {
                id,
                cols,
                producer_cols,
            } => {
                let info = self
                    .memo
                    .cte_info(*id)
                    .ok_or_else(|| OrcaError::Internal(format!("unknown CTE {id}")))?;
                let prod = self.derive(info.producer_group)?;
                let mut out = GroupStats {
                    rows: prod.rows,
                    cols: FnvHashMap::default(),
                };
                for (mine, theirs) in cols.iter().zip(producer_cols) {
                    let s = prod
                        .col(*theirs)
                        .cloned()
                        .unwrap_or_else(|| ColStat::unknown(self.registry.width(*mine), prod.rows));
                    out.cols.insert(*mine, s);
                }
                out
            }
            LogicalOp::ConstTable { cols, rows } => {
                let mut out = GroupStats {
                    rows: rows.len() as f64,
                    cols: FnvHashMap::default(),
                };
                for (i, c) in cols.iter().enumerate() {
                    let values: Vec<Datum> = rows.iter().map(|r| r[i].clone()).collect();
                    let cs = orca_catalog::stats::ColumnStats::from_column(&values, 8);
                    out.cols.insert(
                        *c,
                        ColStat {
                            ndv: cs.ndv,
                            null_frac: cs.null_frac,
                            width: cs.width,
                            hist: cs.histogram,
                        },
                    );
                }
                out
            }
            LogicalOp::MaxOneRow => child[0].scale_all((1.0 / child[0].rows.max(1.0)).min(1.0)),
        })
    }

    fn derive_get(
        &self,
        table: &orca_expr::logical::TableRef,
        cols: &[ColId],
        parts: &Option<Vec<usize>>,
    ) -> Result<GroupStats> {
        let ts = self.md.stats(table.mdid)?;
        let mut out = GroupStats {
            rows: ts.rows,
            cols: FnvHashMap::default(),
        };
        for (i, col) in cols.iter().enumerate() {
            match ts.column(i) {
                Some(cs) => {
                    out.cols.insert(
                        *col,
                        ColStat {
                            ndv: cs.ndv,
                            null_frac: cs.null_frac,
                            width: cs.width,
                            hist: cs.histogram.clone(),
                        },
                    );
                }
                None => {
                    out.cols.insert(
                        *col,
                        ColStat::unknown(table.columns[i].dtype.width(), ts.rows),
                    );
                }
            }
        }
        // Static partition elimination scales the fraction scanned.
        if let (Some(parts), Some(p)) = (parts, &table.partitioning) {
            let frac = parts.len() as f64 / p.num_parts().max(1) as f64;
            let part_col = cols.get(p.column).copied();
            out = out.scale_all(frac.min(1.0));
            // Restrict the partition column's histogram to the kept range.
            if let Some(pc) = part_col {
                if let Some(stat) = out.cols.get_mut(&pc) {
                    if let Some(h) = &stat.hist {
                        let lo = parts
                            .iter()
                            .filter_map(|i| p.bounds.get(*i))
                            .map(|(lo, _)| *lo as f64)
                            .fold(f64::INFINITY, f64::min);
                        let hi = parts
                            .iter()
                            .filter_map(|i| p.bounds.get(*i))
                            .map(|(_, hi)| *hi as f64)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if lo.is_finite() && hi.is_finite() {
                            // Un-scale then restrict: restrict on original
                            // mass is closer to truth than double-scaling.
                            stat.hist = Some(h.restrict_range(lo, hi));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Filter derivation through the Memo's selectivity cache: the
    /// predicate is hash-consed and the conjunct-damping computation keyed
    /// by `(canonical input group, interned predicate)`. Filter scopes use
    /// the doubled `(g, g)` key so they share the cache with join scopes.
    fn derive_filter_cached(
        &self,
        gid: GroupId,
        input: &GroupStats,
        pred: &ScalarExpr,
    ) -> GroupStats {
        let pid = self.memo.intern_scalar(pred);
        let sel = match self.memo.cached_selectivity(gid, gid, pid) {
            Some(s) => s,
            None => {
                let s = selectivity(input, pred);
                self.memo.note_selectivity(gid, gid, pid, s);
                s
            }
        };
        derive_filter_with_sel(input, pred, sel)
    }

    /// Join derivation through the selectivity cache, keyed by
    /// `(canonical left, canonical right, interned predicate)` — the same
    /// join condition over the same child groups (re-derived via merged
    /// groups or alternative orderings) computes histogram joins once.
    fn derive_join_cached(
        &self,
        kind: JoinKind,
        pred: &ScalarExpr,
        lgid: GroupId,
        rgid: GroupId,
        left: &GroupStats,
        right: &GroupStats,
    ) -> GroupStats {
        let pid = self.memo.intern_scalar(pred);
        let sel = match self.memo.cached_selectivity(lgid, rgid, pid) {
            Some(s) => s,
            None => {
                let s = join_selectivity(pred, left, right);
                self.memo.note_selectivity(lgid, rgid, pid, s);
                s
            }
        };
        derive_join_with_sel(kind, left, right, sel)
    }
}

fn promise(op: &LogicalOp) -> u32 {
    match op {
        // Fewer join conditions → higher promise.
        LogicalOp::Join { pred, .. } => 1000u32.saturating_sub(pred.conjuncts().len() as u32),
        _ => 500,
    }
}

// ---------------------------------------------------------------------
// Predicate selectivity
// ---------------------------------------------------------------------

/// Estimated selectivity of `pred` against `stats`, with damping across
/// conjuncts.
pub fn selectivity(stats: &GroupStats, pred: &ScalarExpr) -> f64 {
    let mut sels: Vec<f64> = pred
        .conjuncts()
        .iter()
        .map(|c| conjunct_selectivity(stats, c))
        .collect();
    // Most selective first; later conjuncts are damped (assumed partially
    // correlated with earlier ones).
    sels.sort_by(|a, b| a.partial_cmp(b).expect("finite selectivity"));
    let mut total = 1.0;
    let mut damp = 1.0;
    for s in sels {
        total *= s.powf(damp);
        damp *= DAMPING;
    }
    total.clamp(0.0, 1.0)
}

fn conjunct_selectivity(stats: &GroupStats, pred: &ScalarExpr) -> f64 {
    match pred {
        ScalarExpr::Const(Datum::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        ScalarExpr::And(_) => selectivity(stats, pred),
        ScalarExpr::Or(parts) => {
            let mut keep = 1.0;
            for p in parts {
                keep *= 1.0 - conjunct_selectivity(stats, p);
            }
            (1.0 - keep).clamp(0.0, 1.0)
        }
        ScalarExpr::Not(inner) => (1.0 - conjunct_selectivity(stats, inner)).clamp(0.0, 1.0),
        ScalarExpr::IsNull(inner) => match inner.as_ref() {
            ScalarExpr::ColRef(c) => stats.col(*c).map(|s| s.null_frac).unwrap_or(0.05),
            _ => 0.05,
        },
        ScalarExpr::Cmp { op, left, right } => cmp_selectivity(stats, *op, left, right),
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let mut sel: f64 = list
                .iter()
                .map(|item| cmp_selectivity(stats, CmpOp::Eq, expr, item))
                .sum();
            sel = sel.clamp(0.0, 1.0);
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        _ => DEFAULT_SEL,
    }
}

fn cmp_selectivity(stats: &GroupStats, op: CmpOp, left: &ScalarExpr, right: &ScalarExpr) -> f64 {
    // Normalize to col <op> const / col <op> col.
    match (left, right) {
        (ScalarExpr::ColRef(c), ScalarExpr::Const(d)) => col_const_selectivity(stats, *c, op, d),
        (ScalarExpr::Const(d), ScalarExpr::ColRef(c)) => {
            col_const_selectivity(stats, *c, op.commute(), d)
        }
        (ScalarExpr::ColRef(a), ScalarExpr::ColRef(b)) => match op {
            CmpOp::Eq => 1.0 / stats.ndv(*a).max(stats.ndv(*b)),
            CmpOp::Ne => 1.0 - 1.0 / stats.ndv(*a).max(stats.ndv(*b)),
            _ => DEFAULT_SEL,
        },
        _ => DEFAULT_SEL,
    }
}

fn col_const_selectivity(stats: &GroupStats, c: ColId, op: CmpOp, d: &Datum) -> f64 {
    let Some(cs) = stats.col(c) else {
        return DEFAULT_SEL;
    };
    let nonnull = 1.0 - cs.null_frac;
    match (op, d.as_f64(), &cs.hist) {
        (CmpOp::Eq, Some(v), Some(h)) if h.rows() > 0.0 => {
            (h.rows_eq(v) / h.rows()).clamp(0.0, 1.0) * nonnull
        }
        (CmpOp::Eq, _, _) => nonnull / cs.ndv.max(1.0),
        (CmpOp::Ne, Some(v), Some(h)) if h.rows() > 0.0 => {
            (1.0 - h.rows_eq(v) / h.rows()).clamp(0.0, 1.0) * nonnull
        }
        (CmpOp::Ne, _, _) => (1.0 - 1.0 / cs.ndv.max(1.0)) * nonnull,
        (CmpOp::Lt | CmpOp::Le, Some(v), Some(h)) if h.rows() > 0.0 => {
            (h.rows_in_range(f64::NEG_INFINITY, v) / h.rows()).clamp(0.0, 1.0) * nonnull
        }
        (CmpOp::Gt | CmpOp::Ge, Some(v), Some(h)) if h.rows() > 0.0 => {
            (h.rows_in_range(v, f64::INFINITY) / h.rows()).clamp(0.0, 1.0) * nonnull
        }
        _ => DEFAULT_SEL,
    }
}

/// Apply a filter: scale rows by selectivity and restrict histograms for
/// the predicates we understand.
pub fn derive_filter(input: &GroupStats, pred: &ScalarExpr) -> GroupStats {
    derive_filter_with_sel(input, pred, selectivity(input, pred))
}

/// [`derive_filter`] with the selectivity precomputed (or served from the
/// Memo's cache): applies the scale and histogram sharpening only.
pub fn derive_filter_with_sel(input: &GroupStats, pred: &ScalarExpr, sel: f64) -> GroupStats {
    let mut out = input.scale_all(sel);
    // Sharpen histograms for simple col-vs-const conjuncts.
    for conjunct in pred.conjuncts() {
        if let ScalarExpr::Cmp { op, left, right } = conjunct {
            let (col, datum, op) = match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::ColRef(c), ScalarExpr::Const(d)) => (*c, d, *op),
                (ScalarExpr::Const(d), ScalarExpr::ColRef(c)) => (*c, d, op.commute()),
                _ => continue,
            };
            let Some(v) = datum.as_f64() else { continue };
            if let Some(stat) = out.cols.get_mut(&col) {
                if let Some(h) = &stat.hist {
                    let (restricted, ndv) = match op {
                        CmpOp::Eq => (h.restrict_eq(v), 1.0),
                        CmpOp::Lt | CmpOp::Le => {
                            let r = h.restrict_range(f64::NEG_INFINITY, v);
                            let n = r.ndv();
                            (r, n)
                        }
                        CmpOp::Gt | CmpOp::Ge => {
                            let r = h.restrict_range(v, f64::INFINITY);
                            let n = r.ndv();
                            (r, n)
                        }
                        _ => continue,
                    };
                    stat.ndv = ndv.max(1.0);
                    stat.null_frac = 0.0;
                    stat.hist = Some(restricted);
                }
            }
        }
    }
    out
}

/// Join cardinality and output statistics.
pub fn derive_join(
    kind: JoinKind,
    pred: &ScalarExpr,
    left: &GroupStats,
    right: &GroupStats,
) -> GroupStats {
    derive_join_with_sel(kind, left, right, join_selectivity(pred, left, right))
}

/// Combined selectivity of a join predicate: per-conjunct histogram equi
/// joins, damped across conjuncts (the expensive half of [`derive_join`],
/// memoized by the Memo's selectivity cache).
pub fn join_selectivity(pred: &ScalarExpr, left: &GroupStats, right: &GroupStats) -> f64 {
    let left_cols: Vec<ColId> = left.cols.keys().copied().collect();
    let right_cols: Vec<ColId> = right.cols.keys().copied().collect();
    let cross = (left.rows * right.rows).max(0.0);

    // Per-conjunct selectivities with histogram joins for equi conditions.
    // The merged stats view for non-equi conjuncts clones both column maps,
    // so it is built lazily, at most once per predicate.
    let mut combined: Option<GroupStats> = None;
    let mut sels: Vec<f64> = Vec::new();
    for conjunct in pred.conjuncts() {
        if let Some((lc, rc)) = conjunct.as_equi_pair(&left_cols, &right_cols) {
            let (lh, rh) = (
                left.col(lc).and_then(|s| s.hist.as_ref()),
                right.col(rc).and_then(|s| s.hist.as_ref()),
            );
            let sel = match (lh, rh) {
                (Some(lh), Some(rh)) if cross > 0.0 => {
                    let (card, _) = lh.equi_join(rh);
                    (card / cross).clamp(0.0, 1.0)
                }
                _ => 1.0 / left.ndv(lc).max(right.ndv(rc)),
            };
            sels.push(sel);
        } else {
            let combined = combined.get_or_insert_with(|| combined_stats_for_pred(left, right));
            sels.push(conjunct_selectivity(combined, conjunct));
        }
    }
    sels.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut sel = 1.0;
    let mut damp = 1.0;
    for s in sels {
        sel *= s.powf(damp);
        damp *= DAMPING;
    }
    sel
}

/// [`derive_join`] with the predicate selectivity precomputed (or served
/// from the Memo's cache).
pub fn derive_join_with_sel(
    kind: JoinKind,
    left: &GroupStats,
    right: &GroupStats,
    sel: f64,
) -> GroupStats {
    let cross = (left.rows * right.rows).max(0.0);
    let inner_rows = cross * sel;
    let rows = match kind {
        JoinKind::Inner => inner_rows,
        // Every left row survives at least once.
        JoinKind::LeftOuter => inner_rows.max(left.rows),
        // At most one output per left row.
        JoinKind::LeftSemi => inner_rows.min(left.rows).max(0.0),
        JoinKind::LeftAntiSemi => (left.rows - inner_rows.min(left.rows)).max(0.0),
    };

    let mut cols = FnvHashMap::default();
    let lf = if left.rows > 0.0 {
        rows / left.rows
    } else {
        0.0
    };
    for (c, s) in &left.cols {
        cols.insert(*c, s.scaled(lf.min(1.0)));
    }
    if kind.outputs_right() {
        let rf = if right.rows > 0.0 {
            rows / right.rows
        } else {
            0.0
        };
        for (c, s) in &right.cols {
            cols.insert(*c, s.scaled(rf.min(1.0)));
        }
    }
    GroupStats { rows, cols }
}

fn combined_stats_for_pred(left: &GroupStats, right: &GroupStats) -> GroupStats {
    let mut cols = left.cols.clone();
    for (c, s) in &right.cols {
        cols.insert(*c, s.clone());
    }
    GroupStats {
        rows: left.rows * right.rows,
        cols,
    }
}

fn derive_agg(
    input: &GroupStats,
    group_cols: &[ColId],
    aggs: &[(ColId, ScalarExpr)],
    registry: &ColumnRegistry,
) -> GroupStats {
    let rows = if group_cols.is_empty() {
        1.0
    } else {
        // Product of NDVs, capped by input rows (standard estimate).
        let prod: f64 = group_cols.iter().map(|c| input.ndv(*c)).product();
        prod.min(input.rows).max(1.0_f64.min(input.rows))
    };
    let mut cols = FnvHashMap::default();
    let f = if input.rows > 0.0 {
        rows / input.rows
    } else {
        0.0
    };
    for c in group_cols {
        if let Some(s) = input.col(*c) {
            let mut out = s.scaled(f.min(1.0));
            out.ndv = s.ndv.min(rows);
            cols.insert(*c, out);
        }
    }
    for (c, _) in aggs {
        cols.insert(
            *c,
            ColStat {
                ndv: rows,
                null_frac: 0.0,
                width: registry.width(*c),
                hist: None,
            },
        );
    }
    GroupStats { rows, cols }
}

fn derive_setop(
    kind: SetOpKind,
    output: &[ColId],
    input_cols: &[Vec<ColId>],
    child: &[Arc<GroupStats>],
    registry: &ColumnRegistry,
) -> GroupStats {
    let rows = match kind {
        SetOpKind::UnionAll => child.iter().map(|c| c.rows).sum(),
        SetOpKind::Union => {
            let total: f64 = child.iter().map(|c| c.rows).sum();
            total * 0.9
        }
        SetOpKind::Intersect => {
            child
                .iter()
                .map(|c| c.rows)
                .fold(f64::INFINITY, f64::min)
                .max(0.0)
                * 0.5
        }
        SetOpKind::Except => child.first().map(|c| c.rows * 0.5).unwrap_or(0.0),
    };
    let mut cols = FnvHashMap::default();
    for (pos, out_col) in output.iter().enumerate() {
        // Take the first child's column stats as representative.
        let stat = input_cols
            .first()
            .and_then(|ic| ic.get(pos))
            .and_then(|c| child.first().and_then(|s| s.col(*c).cloned()))
            .unwrap_or_else(|| ColStat::unknown(registry.width(*out_col), rows));
        cols.insert(*out_col, stat);
    }
    GroupStats { rows, cols }
}

/// Estimated aggregate function metadata (used by rules to type partial
/// aggregation columns).
pub fn agg_output_type(func: AggFunc, arg_type: orca_common::DataType) -> orca_common::DataType {
    match func {
        AggFunc::Count => orca_common::DataType::Int,
        AggFunc::Avg => orca_common::DataType::Double,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::DataType;

    fn stats_with_col(c: ColId, rows: f64, domain: std::ops::Range<i64>) -> GroupStats {
        let values: Vec<f64> = (0..rows as i64)
            .map(|i| (domain.start + i % (domain.end - domain.start)) as f64)
            .collect();
        let mut cols = FnvHashMap::default();
        cols.insert(
            c,
            ColStat {
                ndv: (domain.end - domain.start) as f64,
                null_frac: 0.0,
                width: 8,
                hist: Some(Histogram::from_values(values, 16)),
            },
        );
        GroupStats { rows, cols }
    }

    #[test]
    fn eq_selectivity_uses_histogram() {
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        let pred = ScalarExpr::eq(ScalarExpr::col(ColId(0)), ScalarExpr::int(5));
        let sel = selectivity(&s, &pred);
        assert!((sel - 0.01).abs() < 0.005, "sel = {sel}");
        // Out-of-domain constant → ~0.
        let pred = ScalarExpr::eq(ScalarExpr::col(ColId(0)), ScalarExpr::int(5000));
        assert!(selectivity(&s, &pred) < 0.001);
    }

    #[test]
    fn range_selectivity_and_histogram_restriction() {
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(0)), ScalarExpr::int(50));
        let sel = selectivity(&s, &pred);
        assert!((sel - 0.5).abs() < 0.1, "sel = {sel}");
        let out = derive_filter(&s, &pred);
        assert!((out.rows - 500.0).abs() < 100.0);
        let h = out.col(ColId(0)).unwrap().hist.as_ref().unwrap();
        assert!(h.max().unwrap() <= 50.0);
    }

    #[test]
    fn damping_tempers_conjunctions() {
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        let one = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(0)), ScalarExpr::int(50));
        let sel1 = selectivity(&s, &one);
        let three = ScalarExpr::and(vec![one.clone(), one.clone(), one]);
        let sel3 = selectivity(&s, &three);
        // Independence would give sel1^3; damping keeps it above that.
        assert!(sel3 > sel1.powi(3));
        assert!(sel3 < sel1 * 1.01);
    }

    #[test]
    fn or_and_not_selectivity() {
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        let lt = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(0)), ScalarExpr::int(50));
        let either = ScalarExpr::Or(vec![lt.clone(), lt.clone()]);
        let sel_or = selectivity(&s, &either);
        assert!(sel_or > selectivity(&s, &lt) * 0.9);
        let not = ScalarExpr::Not(Box::new(lt));
        assert!((selectivity(&s, &not) - 0.5).abs() < 0.1);
    }

    #[test]
    fn pk_fk_join_keeps_fact_cardinality() {
        let fact = stats_with_col(ColId(0), 100_000.0, 0..1000);
        let dim = stats_with_col(ColId(5), 1000.0, 0..1000);
        let out = derive_join(
            JoinKind::Inner,
            &ScalarExpr::col_eq_col(ColId(0), ColId(5)),
            &fact,
            &dim,
        );
        assert!(
            out.rows > 50_000.0 && out.rows < 200_000.0,
            "rows = {}",
            out.rows
        );
    }

    #[test]
    fn outer_and_semi_join_bounds() {
        let l = stats_with_col(ColId(0), 1000.0, 0..100);
        let r = stats_with_col(ColId(5), 10.0, 500..510); // disjoint domains
        let pred = ScalarExpr::col_eq_col(ColId(0), ColId(5));
        let outer = derive_join(JoinKind::LeftOuter, &pred, &l, &r);
        assert!(outer.rows >= 1000.0, "outer preserves left rows");
        let semi = derive_join(JoinKind::LeftSemi, &pred, &l, &r);
        assert!(semi.rows < 1.0, "no matches");
        let anti = derive_join(JoinKind::LeftAntiSemi, &pred, &l, &r);
        assert!((anti.rows - 1000.0).abs() < 1.0);
    }

    #[test]
    fn agg_cardinality_capped_by_input() {
        let reg = ColumnRegistry::new();
        let c_out = reg.fresh("cnt", DataType::Int);
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        let out = derive_agg(
            &s,
            &[ColId(0)],
            &[(
                c_out,
                ScalarExpr::Agg {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
            )],
            &reg,
        );
        assert!((out.rows - 100.0).abs() < 1.0);
        assert!(out.col(c_out).is_some());
        // Scalar agg → one row.
        let scalar = derive_agg(&s, &[], &[], &reg);
        assert_eq!(scalar.rows, 1.0);
    }

    #[test]
    fn skew_readout() {
        let s = stats_with_col(ColId(0), 1000.0, 0..100);
        assert!(s.skew(ColId(0)) < 0.5);
        assert_eq!(s.skew(ColId(99)), 0.0);
    }
}
