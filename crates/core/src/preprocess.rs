//! Pre-Memo normalization.
//!
//! Orca normalizes incoming queries before copy-in; this module implements
//! the rewrites the paper's §7.2.2 credits for the largest wins:
//!
//! * **Correlated subqueries** — "Orca adopts and extends a unified
//!   representation of subqueries to detect deeply correlated predicates
//!   and pull them up into joins to avoid repeated execution of subquery
//!   expressions." `EXISTS`/`IN` become (anti-)semi joins; scalar
//!   subqueries become `MaxOneRow` cross joins when uncorrelated and
//!   grouped left-outer joins when correlated through equality predicates.
//! * **Predicate pushdown** — conjuncts migrate to the lowest operator
//!   that can evaluate them (into inner-join conditions and down to
//!   table-local Selects).
//! * **Static partition elimination** — predicates on a partition key
//!   restrict the scanned partition list of the `Get` (reference \[2\], simplified to
//!   the static case; see DESIGN.md).
//! * **CTE inlining heuristic** — a WITH producer consumed once is
//!   inlined; multiple consumers keep the paper's producer/consumer
//!   sharing model (`Sequence`).
//!
//! Note on `NOT IN`: rewritten as an anti-semi join, which matches SQL
//! semantics only when the subquery column is non-nullable — the workload
//! generator only emits `NOT IN` on non-nullable keys (documented in
//! DESIGN.md).

use orca_common::{ColId, CteId, Datum, OrcaError, Result};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp};
use orca_expr::scalar::{CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;

/// Run the full normalization pipeline.
pub fn preprocess(expr: &LogicalExpr, registry: &ColumnRegistry) -> Result<LogicalExpr> {
    let expr = inline_single_consumer_ctes(expr.clone());
    let expr = unnest_subqueries(expr, registry)?;
    let expr = push_down_predicates(expr);
    let expr = eliminate_partitions(expr);
    Ok(expr)
}

// =====================================================================
// Subquery unnesting
// =====================================================================

fn unnest_subqueries(expr: LogicalExpr, registry: &ColumnRegistry) -> Result<LogicalExpr> {
    // Bottom-up: children first.
    let children: Vec<LogicalExpr> = expr
        .children
        .into_iter()
        .map(|c| unnest_subqueries(c, registry))
        .collect::<Result<_>>()?;
    let mut node = LogicalExpr {
        op: expr.op,
        children,
    };
    if !node.op.has_subquery() {
        return Ok(node);
    }
    match &node.op {
        LogicalOp::Select { pred } => {
            let pred = pred.clone();
            let input = node.children.remove(0);
            unnest_select(input, pred, registry)
        }
        LogicalOp::Project { exprs } => {
            let exprs = exprs.clone();
            let input = node.children.remove(0);
            unnest_project(input, exprs, registry)
        }
        other => Err(OrcaError::Unsupported(format!(
            "subquery in {} not supported",
            other.name()
        ))),
    }
}

/// Turn `Select(pred-with-subqueries)` into joins.
fn unnest_select(
    mut input: LogicalExpr,
    pred: ScalarExpr,
    registry: &ColumnRegistry,
) -> Result<LogicalExpr> {
    let mut residual: Vec<ScalarExpr> = Vec::new();
    for conjunct in pred.into_conjuncts() {
        match conjunct {
            ScalarExpr::Exists { negated, subquery } => {
                // Unnest subqueries nested inside this subquery first.
                let subquery = unnest_subqueries(*subquery, registry)?;
                let (sub, lifted) = decorrelate(subquery, registry)?;
                let kind = if negated {
                    JoinKind::LeftAntiSemi
                } else {
                    JoinKind::LeftSemi
                };
                input = LogicalExpr::new(
                    LogicalOp::Join {
                        kind,
                        pred: ScalarExpr::and(lifted),
                    },
                    vec![input, sub],
                );
            }
            ScalarExpr::InSubquery {
                expr,
                subquery,
                subquery_col,
                negated,
            } => {
                let subquery = unnest_subqueries(*subquery, registry)?;
                let (sub, mut lifted) = decorrelate(subquery, registry)?;
                lifted.push(ScalarExpr::eq(*expr, ScalarExpr::ColRef(subquery_col)));
                let kind = if negated {
                    JoinKind::LeftAntiSemi
                } else {
                    JoinKind::LeftSemi
                };
                input = LogicalExpr::new(
                    LogicalOp::Join {
                        kind,
                        pred: ScalarExpr::and(lifted),
                    },
                    vec![input, sub],
                );
            }
            other if contains_scalar_subquery(&other) => {
                let (new_input, rewritten) = extract_scalar_subqueries(input, other, registry)?;
                input = new_input;
                residual.push(rewritten);
            }
            other => residual.push(other),
        }
    }
    if residual.is_empty() {
        Ok(input)
    } else {
        Ok(LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(residual),
            },
            vec![input],
        ))
    }
}

/// Turn scalar subqueries inside projection expressions into joins.
fn unnest_project(
    mut input: LogicalExpr,
    exprs: Vec<(ColId, ScalarExpr)>,
    registry: &ColumnRegistry,
) -> Result<LogicalExpr> {
    let mut out_exprs = Vec::with_capacity(exprs.len());
    for (c, e) in exprs {
        if contains_scalar_subquery(&e) {
            let (new_input, rewritten) = extract_scalar_subqueries(input, e, registry)?;
            input = new_input;
            out_exprs.push((c, rewritten));
        } else if e.has_subquery() {
            return Err(OrcaError::Unsupported(
                "EXISTS/IN in projection not supported".into(),
            ));
        } else {
            out_exprs.push((c, e));
        }
    }
    Ok(LogicalExpr::new(
        LogicalOp::Project { exprs: out_exprs },
        vec![input],
    ))
}

fn contains_scalar_subquery(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::ScalarSubquery { .. } => true,
        ScalarExpr::Exists { .. } | ScalarExpr::InSubquery { .. } => false,
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            contains_scalar_subquery(left) || contains_scalar_subquery(right)
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => v.iter().any(contains_scalar_subquery),
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => contains_scalar_subquery(x),
        ScalarExpr::Case {
            branches,
            else_value,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_scalar_subquery(c) || contains_scalar_subquery(v))
                || else_value
                    .as_ref()
                    .is_some_and(|e| contains_scalar_subquery(e))
        }
        ScalarExpr::InList { expr, list, .. } => {
            contains_scalar_subquery(expr) || list.iter().any(contains_scalar_subquery)
        }
        _ => false,
    }
}

/// Replace every `ScalarSubquery` inside `e` with a column reference,
/// joining the subquery into `input`.
fn extract_scalar_subqueries(
    mut input: LogicalExpr,
    e: ScalarExpr,
    registry: &ColumnRegistry,
) -> Result<(LogicalExpr, ScalarExpr)> {
    let rewritten = rewrite_scalar(&mut input, e, registry)?;
    Ok((input, rewritten))
}

fn rewrite_scalar(
    input: &mut LogicalExpr,
    e: ScalarExpr,
    registry: &ColumnRegistry,
) -> Result<ScalarExpr> {
    Ok(match e {
        ScalarExpr::ScalarSubquery {
            subquery,
            subquery_col,
        } => {
            let subquery = unnest_subqueries(*subquery, registry)?;
            let (sub, lifted) = decorrelate(subquery, registry)?;
            let replacement = ScalarExpr::ColRef(subquery_col);
            let old = std::mem::replace(
                input,
                LogicalExpr::leaf(LogicalOp::ConstTable {
                    cols: vec![],
                    rows: vec![],
                }), // placeholder, replaced below
            );
            if lifted.is_empty() {
                // Uncorrelated: cross join with a guaranteed-single-row
                // side.
                let guarded = LogicalExpr::new(LogicalOp::MaxOneRow, vec![sub]);
                *input = LogicalExpr::new(
                    LogicalOp::Join {
                        kind: JoinKind::Inner,
                        pred: ScalarExpr::Const(Datum::Bool(true)),
                    },
                    vec![old, guarded],
                );
            } else {
                // Correlated: left outer join on the lifted predicates
                // (the subquery was regrouped by `decorrelate`).
                *input = LogicalExpr::new(
                    LogicalOp::Join {
                        kind: JoinKind::LeftOuter,
                        pred: ScalarExpr::and(lifted),
                    },
                    vec![old, sub],
                );
            }
            replacement
        }
        ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op,
            left: Box::new(rewrite_scalar(input, *left, registry)?),
            right: Box::new(rewrite_scalar(input, *right, registry)?),
        },
        ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
            op,
            left: Box::new(rewrite_scalar(input, *left, registry)?),
            right: Box::new(rewrite_scalar(input, *right, registry)?),
        },
        ScalarExpr::And(v) => ScalarExpr::And(
            v.into_iter()
                .map(|x| rewrite_scalar(input, x, registry))
                .collect::<Result<_>>()?,
        ),
        ScalarExpr::Or(v) => ScalarExpr::Or(
            v.into_iter()
                .map(|x| rewrite_scalar(input, x, registry))
                .collect::<Result<_>>()?,
        ),
        ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(rewrite_scalar(input, *x, registry)?)),
        ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(rewrite_scalar(input, *x, registry)?)),
        other => other,
    })
}

/// Remove correlated conjuncts from the subquery and return them as join
/// predicates. For aggregated scalar subqueries, correlated *equality*
/// predicates become GROUP BY columns (the classic Kim-style rewrite that
/// lets the subquery run once instead of per outer row).
fn decorrelate(
    sub: LogicalExpr,
    registry: &ColumnRegistry,
) -> Result<(LogicalExpr, Vec<ScalarExpr>)> {
    if sub.outer_refs().is_empty() {
        return Ok((sub, Vec::new()));
    }
    match sub.op.clone() {
        // Correlation sits directly in a Select.
        LogicalOp::Select { pred } => {
            let input = sub.children.into_iter().next().expect("select child");
            let produced = input.produced_cols();
            let (correlated, local): (Vec<ScalarExpr>, Vec<ScalarExpr>) = pred
                .into_conjuncts()
                .into_iter()
                .partition(|c| c.used_cols().iter().any(|col| !produced.contains(col)));
            let (inner, mut lifted) = decorrelate(input, registry)?;
            lifted.extend(correlated);
            let node = if local.is_empty() {
                inner
            } else {
                LogicalExpr::new(
                    LogicalOp::Select {
                        pred: ScalarExpr::and(local),
                    },
                    vec![inner],
                )
            };
            Ok((node, lifted))
        }
        // Correlated scalar aggregate: regroup by the correlated equality
        // columns so the subquery computes all groups at once.
        LogicalOp::GbAgg {
            group_cols,
            aggs,
            stage,
        } => {
            let input = sub.children.into_iter().next().expect("agg child");
            let (inner, lifted) = decorrelate(input, registry)?;
            // Inner columns used by lifted equality predicates become
            // grouping columns.
            let inner_produced = inner.produced_cols();
            let mut new_groups = group_cols.clone();
            for conj in &lifted {
                if let ScalarExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } = conj
                {
                    for side in [left.as_ref(), right.as_ref()] {
                        if let ScalarExpr::ColRef(c) = side {
                            if inner_produced.contains(c) && !new_groups.contains(c) {
                                new_groups.push(*c);
                            }
                        }
                    }
                } else {
                    return Err(OrcaError::Unsupported(
                        "non-equality correlation under aggregate".into(),
                    ));
                }
            }
            let _ = registry;
            Ok((
                LogicalExpr::new(
                    LogicalOp::GbAgg {
                        group_cols: new_groups,
                        aggs,
                        stage,
                    },
                    vec![inner],
                ),
                lifted,
            ))
        }
        LogicalOp::Project { exprs } => {
            let input = sub.children.into_iter().next().expect("project child");
            let (inner, lifted) = decorrelate(input, registry)?;
            // Keep grouping columns visible through the projection.
            let mut exprs = exprs;
            for conj in &lifted {
                for col in conj.used_cols() {
                    if inner.output_cols().contains(&col) && !exprs.iter().any(|(c, _)| *c == col) {
                        exprs.push((col, ScalarExpr::ColRef(col)));
                    }
                }
            }
            Ok((
                LogicalExpr::new(LogicalOp::Project { exprs }, vec![inner]),
                lifted,
            ))
        }
        other => Err(OrcaError::Unsupported(format!(
            "correlation under {} not supported",
            other.name()
        ))),
    }
}

// =====================================================================
// Predicate pushdown
// =====================================================================

fn push_down_predicates(expr: LogicalExpr) -> LogicalExpr {
    let mut node = LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(push_down_predicates)
            .collect(),
    };
    if let LogicalOp::Select { pred } = &node.op {
        let pred = pred.clone();
        let input = node.children.remove(0);
        return push_conjuncts(input, pred.into_conjuncts());
    }
    node
}

/// Push conjuncts as deep as possible over `input`, wrapping what remains
/// in a Select.
fn push_conjuncts(input: LogicalExpr, conjuncts: Vec<ScalarExpr>) -> LogicalExpr {
    match input.op.clone() {
        // Merge into an inner join's predicate, or route to one side.
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred,
        } => {
            let mut children = input.children;
            let right = children.pop().expect("join right");
            let left = children.pop().expect("join left");
            let left_cols = left.output_cols();
            let right_cols = right.output_cols();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_join = pred.into_conjuncts();
            for c in conjuncts {
                let used = c.used_cols();
                if !used.is_empty() && used.iter().all(|u| left_cols.contains(u)) {
                    to_left.push(c);
                } else if !used.is_empty() && used.iter().all(|u| right_cols.contains(u)) {
                    to_right.push(c);
                } else {
                    to_join.push(c);
                }
            }
            let left = if to_left.is_empty() {
                left
            } else {
                push_conjuncts(left, to_left)
            };
            let right = if to_right.is_empty() {
                right
            } else {
                push_conjuncts(right, to_right)
            };
            LogicalExpr::new(
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    pred: ScalarExpr::and(to_join),
                },
                vec![left, right],
            )
        }
        // Left-variants: predicates on left-side columns only may push to
        // the left child without changing semantics.
        LogicalOp::Join { kind, pred } => {
            let mut children = input.children;
            let right = children.pop().expect("join right");
            let left = children.pop().expect("join left");
            let left_cols = left.output_cols();
            let (to_left, residual): (Vec<ScalarExpr>, Vec<ScalarExpr>) =
                conjuncts.into_iter().partition(|c| {
                    let used = c.used_cols();
                    !used.is_empty() && used.iter().all(|u| left_cols.contains(u))
                });
            let left = if to_left.is_empty() {
                left
            } else {
                push_conjuncts(left, to_left)
            };
            let joined = LogicalExpr::new(LogicalOp::Join { kind, pred }, vec![left, right]);
            wrap_select(joined, residual)
        }
        // Merge stacked selects.
        LogicalOp::Select { pred } => {
            let mut all = conjuncts;
            all.extend(pred.into_conjuncts());
            let child = input.children.into_iter().next().expect("select child");
            push_conjuncts(child, all)
        }
        // Push through a projection when the conjunct only references
        // pass-through columns.
        LogicalOp::Project { exprs } => {
            let passthrough: Vec<ColId> = exprs
                .iter()
                .filter_map(|(c, e)| match e {
                    ScalarExpr::ColRef(src) if src == c => Some(*c),
                    _ => None,
                })
                .collect();
            let (pushable, residual): (Vec<ScalarExpr>, Vec<ScalarExpr>) = conjuncts
                .into_iter()
                .partition(|c| c.used_cols().iter().all(|u| passthrough.contains(u)));
            let child = input.children.into_iter().next().expect("project child");
            let child = if pushable.is_empty() {
                child
            } else {
                push_conjuncts(child, pushable)
            };
            wrap_select(
                LogicalExpr::new(LogicalOp::Project { exprs }, vec![child]),
                residual,
            )
        }
        _ => wrap_select(input, conjuncts),
    }
}

fn wrap_select(input: LogicalExpr, conjuncts: Vec<ScalarExpr>) -> LogicalExpr {
    if conjuncts.is_empty() {
        input
    } else {
        LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(conjuncts),
            },
            vec![input],
        )
    }
}

// =====================================================================
// Static partition elimination
// =====================================================================

fn eliminate_partitions(expr: LogicalExpr) -> LogicalExpr {
    let mut node = LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(eliminate_partitions)
            .collect(),
    };
    if let LogicalOp::Select { pred } = &node.op {
        if let LogicalOp::Get { table, cols, parts } = &node.children[0].op {
            if let Some(p) = &table.partitioning {
                if parts.is_none() {
                    if let Some(part_col) = cols.get(p.column) {
                        if let Some(kept) = prune_partitions(pred, *part_col, p) {
                            let new_get = LogicalOp::Get {
                                table: table.clone(),
                                cols: cols.clone(),
                                parts: Some(kept),
                            };
                            node.children[0] = LogicalExpr::leaf(new_get);
                        }
                    }
                }
            }
        }
    }
    node
}

/// Intersect the partition list implied by every conjunct on the partition
/// column. `None` = no restriction found.
fn prune_partitions(
    pred: &ScalarExpr,
    part_col: ColId,
    p: &orca_catalog::Partitioning,
) -> Option<Vec<usize>> {
    let mut kept: Option<Vec<usize>> = None;
    for conj in pred.conjuncts() {
        let parts = partition_range_for(conj, part_col).map(|(lo, hi)| p.parts_for_range(lo, hi));
        if let Some(parts) = parts {
            kept = Some(match kept {
                None => parts,
                Some(prev) => prev.into_iter().filter(|i| parts.contains(i)).collect(),
            });
        }
    }
    kept
}

/// The `[lo, hi]` window a conjunct admits on `col`, if it is a simple
/// range/equality predicate on that column.
fn partition_range_for(conj: &ScalarExpr, col: ColId) -> Option<(i64, i64)> {
    if let ScalarExpr::Cmp { op, left, right } = conj {
        let (c, v, op) = match (left.as_ref(), right.as_ref()) {
            (ScalarExpr::ColRef(c), ScalarExpr::Const(d)) => (*c, d.as_i64()?, *op),
            (ScalarExpr::Const(d), ScalarExpr::ColRef(c)) => (*c, d.as_i64()?, op.commute()),
            _ => return None,
        };
        if c != col {
            return None;
        }
        return Some(match op {
            CmpOp::Eq => (v, v),
            CmpOp::Lt => (i64::MIN, v - 1),
            CmpOp::Le => (i64::MIN, v),
            CmpOp::Gt => (v + 1, i64::MAX),
            CmpOp::Ge => (v, i64::MAX),
            CmpOp::Ne => return None,
        });
    }
    None
}

// =====================================================================
// CTE inlining heuristic
// =====================================================================

/// Count consumers of each CTE and inline producers consumed at most once.
/// (Orca makes this decision cost-based; a count heuristic captures the
/// common cases and keeps the producer/consumer model for real sharing.)
fn inline_single_consumer_ctes(expr: LogicalExpr) -> LogicalExpr {
    let mut node = LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(inline_single_consumer_ctes)
            .collect(),
    };
    if let LogicalOp::Sequence { id } = node.op {
        let main = node.children.pop().expect("sequence main");
        let producer = node.children.pop().expect("sequence producer");
        let count = count_consumers(&main, id);
        if count == 0 {
            return main;
        }
        if count == 1 {
            let LogicalOp::CteProducer { cols, .. } = &producer.op else {
                // Unexpected shape; keep as-is.
                return LogicalExpr::new(LogicalOp::Sequence { id }, vec![producer, main]);
            };
            let body = producer.children.into_iter().next().expect("producer body");
            return inline_consumer(main, id, &cols.clone(), &body);
        }
        return LogicalExpr::new(LogicalOp::Sequence { id }, vec![producer, main]);
    }
    node
}

fn count_consumers(expr: &LogicalExpr, id: CteId) -> usize {
    let own = matches!(&expr.op, LogicalOp::CteConsumer { id: cid, .. } if *cid == id) as usize;
    own + expr
        .children
        .iter()
        .map(|c| count_consumers(c, id))
        .sum::<usize>()
}

fn inline_consumer(
    expr: LogicalExpr,
    id: CteId,
    producer_cols: &[ColId],
    body: &LogicalExpr,
) -> LogicalExpr {
    if let LogicalOp::CteConsumer {
        id: cid,
        cols,
        producer_cols: pcols,
    } = &expr.op
    {
        if *cid == id {
            debug_assert_eq!(pcols, producer_cols);
            // Rename the producer's outputs to the consumer's ids.
            let exprs: Vec<(ColId, ScalarExpr)> = cols
                .iter()
                .zip(pcols)
                .map(|(c, p)| (*c, ScalarExpr::ColRef(*p)))
                .collect();
            return LogicalExpr::new(LogicalOp::Project { exprs }, vec![body.clone()]);
        }
    }
    LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(|c| inline_consumer(c, id, producer_cols, body))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Distribution, Partitioning, TableDesc};
    use orca_common::{DataType, MdId, SysId};
    use orca_expr::logical::AggStage;
    use orca_expr::logical::TableRef;
    use orca_expr::pretty::explain_logical;
    use orca_expr::scalar::AggFunc;
    use std::sync::Arc;

    fn table(oid: u64, name: &str) -> TableRef {
        TableRef(Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, oid, 1),
            name,
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        )))
    }

    fn get(oid: u64, name: &str, first: u32) -> LogicalExpr {
        LogicalExpr::leaf(LogicalOp::Get {
            table: table(oid, name),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    #[test]
    fn exists_becomes_semi_join() {
        let registry = ColumnRegistry::new();
        // SELECT * FROM t WHERE EXISTS (SELECT * FROM s WHERE s.a = t.a)
        let sub = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::col_eq_col(ColId(10), ColId(0)),
            },
            vec![get(2, "s", 10)],
        );
        let q = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::Exists {
                    negated: false,
                    subquery: Box::new(sub),
                },
            },
            vec![get(1, "t", 0)],
        );
        let out = preprocess(&q, &registry).unwrap();
        let text = explain_logical(&out);
        assert!(text.contains("LeftSemiJoin"), "{text}");
        assert!(text.contains("(c10 = c0)"), "{text}");
        assert!(!out.has_subquery());
    }

    #[test]
    fn not_in_becomes_anti_join() {
        let registry = ColumnRegistry::new();
        let q = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::InSubquery {
                    expr: Box::new(ScalarExpr::col(ColId(0))),
                    subquery: Box::new(get(2, "s", 10)),
                    subquery_col: ColId(10),
                    negated: true,
                },
            },
            vec![get(1, "t", 0)],
        );
        let out = preprocess(&q, &registry).unwrap();
        let text = explain_logical(&out);
        assert!(text.contains("LeftAntiSemiJoin"), "{text}");
        assert!(text.contains("(c0 = c10)"), "{text}");
    }

    #[test]
    fn correlated_scalar_agg_regroups() {
        let registry = ColumnRegistry::new();
        // Reserve ids 0..20 for the base-table columns used below.
        for i in 0..20 {
            registry.fresh(&format!("c{i}"), DataType::Int);
        }
        let avg_col = registry.fresh("max_b", DataType::Double);
        // WHERE t.b > (SELECT max(s.b) FROM s WHERE s.a = t.a)
        let sub = LogicalExpr::new(
            LogicalOp::GbAgg {
                group_cols: vec![],
                aggs: vec![(
                    avg_col,
                    ScalarExpr::Agg {
                        func: AggFunc::Max,
                        arg: Some(Box::new(ScalarExpr::col(ColId(11)))),
                        distinct: false,
                    },
                )],
                stage: AggStage::Single,
            },
            vec![LogicalExpr::new(
                LogicalOp::Select {
                    pred: ScalarExpr::col_eq_col(ColId(10), ColId(0)),
                },
                vec![get(2, "s", 10)],
            )],
        );
        let q = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::cmp(
                    CmpOp::Gt,
                    ScalarExpr::col(ColId(1)),
                    ScalarExpr::ScalarSubquery {
                        subquery: Box::new(sub),
                        subquery_col: avg_col,
                    },
                ),
            },
            vec![get(1, "t", 0)],
        );
        let out = preprocess(&q, &registry).unwrap();
        let text = explain_logical(&out);
        // LOJ on the correlation key, agg regrouped by s.a (c10).
        assert!(text.contains("LeftOuterJoin"), "{text}");
        assert!(text.contains("GbAgg by [c10]"), "{text}");
        assert!(!out.has_subquery());
    }

    #[test]
    fn pushdown_routes_conjuncts() {
        // Select(t.a<5 AND s.b>7 AND t.a=s.a) over cross join → per-side
        // Selects plus a join condition.
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::Const(Datum::Bool(true)),
            },
            vec![get(1, "t", 0), get(2, "s", 10)],
        );
        let q = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(vec![
                    ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(0)), ScalarExpr::int(5)),
                    ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(11)), ScalarExpr::int(7)),
                    ScalarExpr::col_eq_col(ColId(0), ColId(10)),
                ]),
            },
            vec![join],
        );
        let registry = ColumnRegistry::new();
        let out = preprocess(&q, &registry).unwrap();
        let text = explain_logical(&out);
        // Join predicate got the equi conjunct.
        assert!(text.contains("InnerJoin on (c0 = c10)"), "{text}");
        // Table-local conjuncts sit below the join.
        let join_line = text.lines().position(|l| l.contains("InnerJoin")).unwrap();
        let lt_line = text.lines().position(|l| l.contains("(c0 < 5)")).unwrap();
        let gt_line = text.lines().position(|l| l.contains("(c11 > 7)")).unwrap();
        assert!(lt_line > join_line && gt_line > join_line, "{text}");
    }

    #[test]
    fn partition_elimination_restricts_get() {
        let t = TableDesc::new(
            MdId::new(SysId::Gpdb, 7, 1),
            "fact",
            vec![
                ColumnMeta::new("k", DataType::Int),
                ColumnMeta::new("d", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        )
        .with_partitioning(Partitioning::range(1, 0, 100, 10));
        let get = LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(Arc::new(t)),
            cols: vec![ColId(0), ColId(1)],
            parts: None,
        });
        let q = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(vec![
                    ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(ColId(1)), ScalarExpr::int(20)),
                    ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(1)), ScalarExpr::int(40)),
                ]),
            },
            vec![get],
        );
        let registry = ColumnRegistry::new();
        let out = preprocess(&q, &registry).unwrap();
        let text = explain_logical(&out);
        assert!(text.contains("parts=2/10"), "{text}");
    }

    #[test]
    fn single_consumer_cte_inlined_shared_kept() {
        let registry = ColumnRegistry::new();
        let producer = LogicalExpr::new(
            LogicalOp::CteProducer {
                id: CteId(1),
                cols: vec![ColId(0), ColId(1)],
            },
            vec![get(1, "t", 0)],
        );
        let consumer = |first: u32| {
            LogicalExpr::leaf(LogicalOp::CteConsumer {
                id: CteId(1),
                cols: vec![ColId(first), ColId(first + 1)],
                producer_cols: vec![ColId(0), ColId(1)],
            })
        };
        // One consumer → inlined (no Sequence).
        let single = LogicalExpr::new(
            LogicalOp::Sequence { id: CteId(1) },
            vec![producer.clone(), consumer(20)],
        );
        let out = preprocess(&single, &registry).unwrap();
        let text = explain_logical(&out);
        assert!(!text.contains("Sequence"), "{text}");
        assert!(text.contains("Get(t)"), "{text}");
        assert_eq!(out.output_cols(), vec![ColId(20), ColId(21)]);
        // Two consumers → shared producer kept.
        let both = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(20), ColId(30)),
            },
            vec![consumer(20), consumer(30)],
        );
        let shared = LogicalExpr::new(LogicalOp::Sequence { id: CteId(1) }, vec![producer, both]);
        let out = preprocess(&shared, &registry).unwrap();
        let text = explain_logical(&out);
        assert!(text.contains("Sequence"), "{text}");
        assert!(text.contains("CTEConsumer"), "{text}");
    }
}
