//! The parallel search engine (§4.2).
//!
//! "Optimization process is broken to small work units called optimization
//! jobs. Orca currently has seven different types of optimization jobs:
//! Exp(g), Exp(gexpr), Imp(g), Imp(gexpr), Opt(g, req), Opt(gexpr, req),
//! Xform(gexpr, t)."
//!
//! Each job type below is a re-entrant state machine on the GPOS scheduler
//! (`orca_gpos::sched`): it spawns children, suspends, and resumes when
//! they complete. Jobs with the same *goal* — exploring the same group,
//! optimizing the same `(group, request)` pair — are deduplicated through
//! the scheduler's goal queues, exactly as §4.2 describes ("incoming jobs
//! are queued as long as there exists an active job with the same goal").
//!
//! Costing applies Cascades-style branch-and-bound: `Opt(g, req)` seeds
//! each `Opt(gexpr, req)` job with the cost of the context's incumbent
//! best, and the job abandons an alternative (or an enforcer chain) as
//! soon as its accumulated cost *strictly exceeds* that bound. Because
//! only provably-worse candidates are discarded — equal-cost ones survive
//! for the deterministic tie-break in `OptContext::add` — pruning never
//! changes the chosen plan (see the invariant in `memo.rs`).

use crate::cost::{CostCtx, CostModel, StreamInfo};
use crate::enforce::{derive_delivered, enforcement_chains, request_alternatives};
use crate::memo::{Candidate, ExprId, GroupEst, GroupId, Memo, Operator};
use crate::props::{DerivedProps, ReqId, ReqdProps};
use crate::rules::{Rule, RuleCtx, RuleSet};
use orca_catalog::MdAccessor;
use orca_common::hash::FnvHashMap;
use orca_common::{OrcaError, Result};
use orca_expr::physical::PhysicalOp;
use orca_expr::props::DistSpec;
use orca_expr::ColumnRegistry;
use orca_gpos::sched::{Job, JobHandle, Scheduler, StepResult};
use std::sync::Arc;

/// Goal keys for job deduplication (the per-group job queues of §4.2).
/// `Opt` goals carry the *interned* request id, so hashing a goal — done on
/// every `spawn_goal` and every queue probe — mixes two `u32`s instead of
/// walking an order/distribution spec, and cloning the key is a copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GoalKey {
    Exp(GroupId),
    Imp(GroupId),
    Opt(GroupId, ReqId),
}

/// Shared context for all jobs in one optimization session.
pub struct SearchCtx<'a> {
    pub memo: &'a Memo,
    pub rules: &'a RuleSet,
    pub registry: &'a ColumnRegistry,
    pub md: &'a MdAccessor,
    pub cost: &'a CostModel,
}

type Sched<'a> = Scheduler<SearchCtx<'a>, GoalKey>;
type Handle<'h, 'a> = JobHandle<'h, SearchCtx<'a>, GoalKey>;

/// Run the exploration phase from the root group (step 1 of §4.1) on the
/// full worker pool.
///
/// Exploration is fully parallel. When a transformation output targeted at
/// group `g` collides with an identical sub-expression spelled standalone,
/// the duplicate-detection index proves the two groups logically
/// equivalent and the Memo *merges* them (§4.2, `Memo::merge`) — so the
/// insertion race that once forced this phase onto one worker no longer
/// decides where a shape lives. Determinism now comes from confluence:
/// whatever order insertions and merges interleave in, exploration is run
/// to a fixpoint (below) whose final memo content is the closure of the
/// initial memo under the enabled rules — identical across worker counts
/// up to group-id renaming.
///
/// The fixpoint: a merge can enlarge a group AFTER a deep rule (one whose
/// pattern binds into child-group contents, e.g. join associativity)
/// already fired on some parent expression, leaving bindings unseen — and
/// *which* bindings were missed depends on thread timing. So after every
/// pass in which the merge counter advanced, the driver re-arms exactly
/// the deep rules (`Memo::reset_exploration`) and runs another pass.
/// Shallow rules stay fired: their output depends only on their own
/// expression and is invariant under child re-canonicalization. Each pass
/// either merges nothing (done) or permanently reduces the number of
/// canonical groups, so the loop terminates.
pub fn explore(ctx: &SearchCtx<'_>, root: GroupId, workers: usize) -> Result<()> {
    explore_with_deadline(ctx, root, workers, None).map(|_| ())
}

/// Exploration with an optional stage deadline (§4.1 multi-stage).
/// Returns after the merge-confluence fixpoint is reached, or `Ok(true)`
/// when the deadline expired first: a timed-out pass leaves a *consistent*
/// memo (every id resolves, every inserted expression is complete — jobs
/// finish their current step before workers observe the abort), it is just
/// not closed under the rule set. Only hard errors propagate as `Err`.
pub fn explore_with_deadline(
    ctx: &SearchCtx<'_>,
    root: GroupId,
    workers: usize,
    deadline: Option<std::time::Instant>,
) -> Result<bool> {
    let deep = ctx.rules.deep_exploration_indices();
    loop {
        let merged_before = ctx.memo.metrics().snapshot().groups_merged;
        let sched: Sched<'_> = Scheduler::new();
        if let Some(d) = deadline {
            sched.abort_signal().set_deadline(d);
        }
        match sched.run(ctx, vec![Box::new(ExploreGroupJob { gid: root })], workers) {
            Ok(()) => {}
            Err(OrcaError::Timeout(_)) => return Ok(true),
            Err(e) => return Err(e),
        }
        let merged_after = ctx.memo.metrics().snapshot().groups_merged;
        if merged_after == merged_before {
            return Ok(false);
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            // Timed out mid-fixpoint: the memo is valid (all ids resolve),
            // just not closed under the deep rules. §4.1 stage semantics
            // accept a truncated search.
            return Ok(true);
        }
        ctx.memo.reset_exploration(&deep);
    }
}

/// Run the implementation phase (step 3 of §4.1).
pub fn implement(ctx: &SearchCtx<'_>, root: GroupId, workers: usize) -> Result<()> {
    implement_with_deadline(ctx, root, workers, None).map(|_| ())
}

/// Implementation with an optional stage deadline. Returns `Ok(true)` when
/// the deadline truncated the phase (see [`explore_with_deadline`]).
pub fn implement_with_deadline(
    ctx: &SearchCtx<'_>,
    root: GroupId,
    workers: usize,
    deadline: Option<std::time::Instant>,
) -> Result<bool> {
    let sched: Sched<'_> = Scheduler::new();
    if let Some(d) = deadline {
        sched.abort_signal().set_deadline(d);
    }
    match sched.run(
        ctx,
        vec![Box::new(ImplementGroupJob { gid: root })],
        workers,
    ) {
        Ok(()) => Ok(false),
        Err(OrcaError::Timeout(_)) => Ok(true),
        Err(e) => Err(e),
    }
}

/// Scheduler-side statistics of one optimization phase (feeds the §7.2.2
/// resource report).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchRunStats {
    pub jobs_spawned: usize,
    pub job_steps: usize,
    /// Goal requests deduplicated against an active or finished job.
    pub goal_hits: usize,
    /// The phase's deadline expired before the job graph drained; whatever
    /// contexts were completed by then are valid (candidates are recorded
    /// atomically, after full costing), but the search is not exhaustive.
    pub timed_out: bool,
}

/// Run the optimization phase for the root request (step 4 of §4.1).
/// Returns scheduler statistics for the §7.2.2 report.
pub fn optimize(
    ctx: &SearchCtx<'_>,
    root: GroupId,
    req: &ReqdProps,
    workers: usize,
) -> Result<SearchRunStats> {
    optimize_with_deadline(ctx, root, req, workers, None)
}

/// Optimization with an optional stage deadline.
pub fn optimize_with_deadline(
    ctx: &SearchCtx<'_>,
    root: GroupId,
    req: &ReqdProps,
    workers: usize,
    deadline: Option<std::time::Instant>,
) -> Result<SearchRunStats> {
    let sched: Sched<'_> = Scheduler::new();
    if let Some(d) = deadline {
        sched.abort_signal().set_deadline(d);
    }
    // Intern the root request once; everything below runs in id space.
    let rid = ctx.memo.intern_req(req);
    let timed_out = match sched.run(
        ctx,
        vec![Box::new(OptimizeGroupJob {
            gid: root,
            rid,
            spawned: false,
        })],
        workers,
    ) {
        Ok(()) => false,
        Err(OrcaError::Timeout(_)) => true,
        Err(e) => return Err(e),
    };
    Ok(SearchRunStats {
        jobs_spawned: sched.jobs_spawned(),
        job_steps: sched.steps_executed(),
        goal_hits: sched.goal_hits(),
        timed_out,
    })
}

// =====================================================================
// Exp(g) — explore a group: "generate logically equivalent expressions
// of all group expressions in group g".
// =====================================================================

struct ExploreGroupJob {
    gid: GroupId,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for ExploreGroupJob {
    fn name(&self) -> &'static str {
        "Exp(g)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        // Loop until no expression is left unexplored: transformations add
        // new expressions to this group while we wait, and merges migrate
        // whole expression sets in. The gate-held accessor re-resolves the
        // canonical group on every step — `self.gid` may have become a
        // drained shell since the job was spawned.
        let (gid, to_spawn) = ctx.memo.with_group(self.gid, |gid, g| {
            let ids: Vec<ExprId> = g
                .exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| e.op.is_logical() && !e.dead && !e.explore_spawned)
                .map(|(i, _)| i)
                .collect();
            for &i in &ids {
                g.exprs[i].explore_spawned = true;
            }
            if ids.is_empty() {
                g.explored = true;
            }
            (gid, ids)
        });
        self.gid = gid;
        if to_spawn.is_empty() {
            return StepResult::Done;
        }
        for eid in to_spawn {
            h.spawn(Box::new(ExploreExprJob {
                gid,
                eid,
                spawned_children: false,
            }));
        }
        StepResult::Suspended
    }
}

// =====================================================================
// Exp(gexpr) — explore one expression: first explore child groups (deep
// rule patterns bind into them), then fire exploration xforms.
// =====================================================================

struct ExploreExprJob {
    gid: GroupId,
    eid: ExprId,
    spawned_children: bool,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for ExploreExprJob {
    fn name(&self) -> &'static str {
        "Exp(gexpr)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        if !self.spawned_children {
            self.spawned_children = true;
            // Merges can relocate the expression between job spawn and this
            // step; resolve to its live location and canonical children.
            let (gid, eid, _, children) = ctx.memo.expr_op_children(self.gid, self.eid);
            self.gid = gid;
            self.eid = eid;
            for c in children {
                h.spawn_goal(GoalKey::Exp(c), || Box::new(ExploreGroupJob { gid: c }));
            }
            return StepResult::Suspended;
        }
        spawn_xforms(h, ctx, self.gid, self.eid, true);
        StepResult::Done
    }
}

/// Queue Xform jobs for every enabled, not-yet-applied rule of one kind.
fn spawn_xforms<'a>(
    h: &Handle<'_, 'a>,
    ctx: &SearchCtx<'a>,
    gid: GroupId,
    eid: ExprId,
    exploration: bool,
) {
    let rules = ctx.rules.of_kind(exploration);
    // Claim the not-yet-applied rules atomically on the expression's LIVE
    // copy (the `(gid, eid)` captured at spawn time may have been forwarded
    // by a merge; the gate-held accessor re-resolves it). Claiming under
    // the expression's group lock keeps each `(expr, rule)` pair fired at
    // most once even when two jobs race onto the same migrated expression.
    let (gid, eid, fire) = ctx.memo.with_expr(gid, eid, |e| {
        rules
            .into_iter()
            .filter(|(idx, _)| e.applied_rules.insert(*idx))
            .map(|(_, r)| r)
            .collect::<Vec<_>>()
    });
    for rule in fire {
        h.spawn(Box::new(XformJob { gid, eid, rule }));
    }
}

// =====================================================================
// Xform(gexpr, t) — apply one rule to one expression.
// =====================================================================

struct XformJob {
    gid: GroupId,
    eid: ExprId,
    rule: Arc<dyn Rule>,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for XformJob {
    fn name(&self) -> &'static str {
        "Xform(gexpr,t)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        let rctx = RuleCtx {
            registry: ctx.registry,
            md: ctx.md,
        };
        // Track the expression to its live location; rules re-resolve
        // internally too, but copy-in should target the canonical group.
        let (gid, eid) = ctx.memo.resolve_expr(self.gid, self.eid);
        match self.rule.apply(ctx.memo, gid, eid, &rctx) {
            Ok(results) => {
                for partial in results {
                    partial.copy_in(ctx.memo, gid);
                }
            }
            Err(e) => h.abort_signal().abort_with(e),
        }
        StepResult::Done
    }
}

// =====================================================================
// Imp(g) / Imp(gexpr) — implementation phase.
// =====================================================================

struct ImplementGroupJob {
    gid: GroupId,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for ImplementGroupJob {
    fn name(&self) -> &'static str {
        "Imp(g)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        let (gid, to_spawn) = ctx.memo.with_group(self.gid, |gid, g| {
            let ids: Vec<ExprId> = g
                .exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| e.op.is_logical() && !e.dead && !e.implement_spawned)
                .map(|(i, _)| i)
                .collect();
            for &i in &ids {
                g.exprs[i].implement_spawned = true;
            }
            if ids.is_empty() {
                g.implemented = true;
            }
            (gid, ids)
        });
        self.gid = gid;
        if to_spawn.is_empty() {
            return StepResult::Done;
        }
        for eid in to_spawn {
            h.spawn(Box::new(ImplementExprJob {
                gid,
                eid,
                spawned_children: false,
            }));
        }
        StepResult::Suspended
    }
}

struct ImplementExprJob {
    gid: GroupId,
    eid: ExprId,
    spawned_children: bool,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for ImplementExprJob {
    fn name(&self) -> &'static str {
        "Imp(gexpr)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        if !self.spawned_children {
            self.spawned_children = true;
            let (gid, eid, _, children) = ctx.memo.expr_op_children(self.gid, self.eid);
            self.gid = gid;
            self.eid = eid;
            for c in children {
                h.spawn_goal(GoalKey::Imp(c), || Box::new(ImplementGroupJob { gid: c }));
            }
            return StepResult::Suspended;
        }
        spawn_xforms(h, ctx, self.gid, self.eid, false);
        StepResult::Done
    }
}

// =====================================================================
// Opt(g, req) — "return the plan with the least estimated cost that is
// rooted by an operator in group g and satisfies optimization request
// req".
// =====================================================================

struct OptimizeGroupJob {
    gid: GroupId,
    rid: ReqId,
    spawned: bool,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for OptimizeGroupJob {
    fn name(&self) -> &'static str {
        "Opt(g,req)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        if !self.spawned {
            self.spawned = true;
            // The optimization phase is merge-free (all inserts by then are
            // enforcers, whose self-referential keys can never collide
            // across groups), but resolve to the canonical group anyway so
            // ids captured before the implement phase stay valid.
            self.gid = ctx.memo.resolve(self.gid);
            let exprs: Vec<ExprId> = {
                let group = ctx.memo.group(self.gid);
                let g = group.read();
                g.physical_exprs().map(|(i, _)| i).collect()
            };
            // Seed the branch-and-bound upper limit from the incumbent
            // best of this very context (present when the goal was already
            // optimized through another parent's request).
            let bound = ctx.memo.best_cost(self.gid, self.rid);
            for eid in exprs {
                h.spawn(Box::new(OptimizeExprJob {
                    gid: self.gid,
                    eid,
                    rid: self.rid,
                    alts: None,
                    bound,
                }));
            }
            return StepResult::Suspended;
        }
        StepResult::Done
    }
}

// =====================================================================
// Opt(gexpr, req) — cost one expression under one request, across all of
// its child-request alternatives, adding enforcers where needed.
// =====================================================================

/// One child-request alternative, carried in both representations: the
/// values feed property derivation and the content-based shape fingerprint
/// (interned id *values* are arrival-order dependent and must never reach
/// it), while the ids feed goal spawning, context probes and candidate
/// storage.
struct Alt {
    reqs: Vec<ReqdProps>,
    ids: Vec<ReqId>,
}

struct OptimizeExprJob {
    gid: GroupId,
    eid: ExprId,
    rid: ReqId,
    /// Child-request alternatives, filled on the first step.
    alts: Option<Vec<Alt>>,
    /// Branch-and-bound upper limit: the cost of this context's incumbent
    /// best when the job was spawned. Refreshed (only ever tightened)
    /// during costing; a candidate whose partial cost strictly exceeds it
    /// is abandoned. `None` until the context produces its first plan.
    bound: Option<f64>,
}

impl<'a> Job<SearchCtx<'a>, GoalKey> for OptimizeExprJob {
    fn name(&self) -> &'static str {
        "Opt(gexpr,req)"
    }

    fn step(&mut self, h: &Handle<'_, 'a>, ctx: &SearchCtx<'a>) -> StepResult {
        if h.abort_signal().is_aborted() {
            return StepResult::Done;
        }
        let (gid, eid, op, children) = ctx.memo.expr_op_children(self.gid, self.eid);
        self.gid = gid;
        self.eid = eid;
        let Operator::Physical(op) = op else {
            h.abort_signal()
                .abort_with(OrcaError::Internal("Opt job on logical expression".into()));
            return StepResult::Done;
        };
        if self.alts.is_none() {
            let req = ctx.memo.req_props(self.rid);
            let alts: Vec<Alt> = request_alternatives(&op, &req)
                .into_iter()
                .map(|reqs| {
                    let ids = reqs.iter().map(|r| ctx.memo.intern_req(r)).collect();
                    Alt { reqs, ids }
                })
                .collect();
            for alt in &alts {
                debug_assert_eq!(alt.reqs.len(), children.len());
                for (child, &crid) in children.iter().zip(&alt.ids) {
                    let gid = *child;
                    h.spawn_goal(GoalKey::Opt(gid, crid), || {
                        Box::new(OptimizeGroupJob {
                            gid,
                            rid: crid,
                            spawned: false,
                        })
                    });
                }
            }
            self.alts = Some(alts);
            return StepResult::Suspended;
        }
        // All child goals complete: cost every alternative.
        if let Err(e) = self.finish(ctx, &op, &children) {
            h.abort_signal().abort_with(e);
        }
        StepResult::Done
    }
}

impl OptimizeExprJob {
    fn finish(&mut self, ctx: &SearchCtx<'_>, op: &PhysicalOp, children: &[GroupId]) -> Result<()> {
        let alts = self.alts.take().expect("set in first step");
        let req = ctx.memo.req_props(self.rid);
        // Estimation snapshots (`Memo::group_est`): width, skew and stats
        // handles computed once per group instead of once per candidate.
        let own = group_est(ctx, self.gid)?;
        let child_ests: Vec<Arc<GroupEst>> = children
            .iter()
            .map(|c| group_est(ctx, *c))
            .collect::<Result<_>>()?;

        // Child-cost fast path: alternatives frequently re-request the same
        // `(child, creq)` context (e.g. `Any` from several join variants).
        // Memoize the lock-protected `best_for` probe locally so each
        // distinct context is read once per job.
        let mut child_best: FnvHashMap<(GroupId, ReqId), Option<(f64, DerivedProps)>> =
            FnvHashMap::default();

        // Branch-and-bound bound: tightest of the spawn-time seed and the
        // context's current incumbent (other jobs may have improved it
        // while this one waited on child goals).
        let mut bound = match (self.bound, ctx.memo.best_cost(self.gid, self.rid)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Strict comparison: an equal-cost candidate is NOT pruned, so the
        // deterministic tie-break in `OptContext::add` still sees it.
        let exceeds = |cost: f64, bound: Option<f64>| bound.is_some_and(|b| cost > b);

        'alts: for alt in alts {
            // Collect the best child plans for this alternative, aborting
            // as soon as the accumulated child cost alone beats the bound.
            let mut child_costs = Vec::with_capacity(children.len());
            let mut child_derived: Vec<DerivedProps> = Vec::with_capacity(children.len());
            let mut ok = true;
            let mut child_sum = 0.0;
            for (child, &crid) in children.iter().zip(&alt.ids) {
                let best = child_best.entry((*child, crid)).or_insert_with(|| {
                    let group = ctx.memo.group(*child);
                    let g = group.read();
                    g.best_for(crid).map(|c| (c.cost, c.derived.clone()))
                });
                match best {
                    Some((cost, derived)) => {
                        child_sum += *cost;
                        child_costs.push(*cost);
                        child_derived.push(derived.clone());
                        if exceeds(child_sum, bound) {
                            ctx.memo.metrics().note_context_pruned();
                            continue 'alts;
                        }
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let delivered = derive_delivered(op, &child_derived, &own.output_cols);

            // Local cost, computed on *per-segment* stream sizes: a
            // replicated child is processed in full on every segment,
            // while a hashed/random child splits across segments. This is
            // exactly what makes broadcast joins lose on large inputs.
            let parallelism = parallelism_for(ctx, &delivered.dist, &own);
            let cost_ctx = CostCtx {
                output: StreamInfo::per_segment(own.stats.rows, own.width, parallelism),
                children: child_ests
                    .iter()
                    .zip(&child_derived)
                    .map(|(est, d)| {
                        let child_par = parallelism_for(ctx, &d.dist, est);
                        StreamInfo::per_segment(est.stats.rows, est.width, child_par)
                    })
                    .collect(),
                parallelism: 1.0,
            };
            let local = ctx.cost.op_cost(op, &cost_ctx);
            let base_cost: f64 = local + child_costs.iter().sum::<f64>();
            if exceeds(base_cost, bound) {
                ctx.memo.metrics().note_context_pruned();
                continue;
            }

            // Enforce missing properties; each chain is its own candidate.
            'chains: for chain in enforcement_chains(&delivered, &req) {
                let mut cost = base_cost;
                let mut cur_dist = delivered.dist.clone();
                for enf in &chain.ops {
                    let par = parallelism_for(ctx, &cur_dist, &own);
                    let enf_ctx = CostCtx {
                        output: StreamInfo::new(own.stats.rows, own.width),
                        children: vec![StreamInfo::new(own.stats.rows, own.width)],
                        parallelism: par,
                    };
                    cost += ctx.cost.op_cost(enf, &enf_ctx);
                    if let PhysicalOp::Motion { kind } = enf {
                        cur_dist = kind.delivered_dist();
                    }
                    if exceeds(cost, bound) {
                        ctx.memo.metrics().note_context_pruned();
                        continue 'chains;
                    }
                }
                // The chain survived the bound: record its enforcers in
                // the Memo (Figure 6 fidelity) and add the candidate.
                // Pruned chains leave no trace.
                for enf in &chain.ops {
                    ctx.memo.insert_enforcer(self.gid, enf.clone());
                }
                debug_assert!(chain.delivered.satisfies(&req));
                // Fingerprint from the request *values*, never the ids:
                // ids are arrival-order dependent across worker counts.
                let fingerprint = Candidate::shape_fingerprint(op, &alt.reqs, &chain.ops);
                ctx.memo.add_candidate(
                    self.gid,
                    self.rid,
                    Candidate {
                        expr: self.eid,
                        child_reqs: alt.ids.clone(),
                        enforcers: chain.ops.clone(),
                        cost,
                        fingerprint,
                        derived: chain.delivered.clone(),
                    },
                );
                // Tighten the bound with the candidate we just proved.
                if bound.is_none_or(|b| cost < b) {
                    bound = Some(cost);
                }
            }
        }
        Ok(())
    }
}

/// Effective parallelism of a stream with the given distribution,
/// discounting skew on hashed keys (precomputed in the group's estimation
/// snapshot).
fn parallelism_for(ctx: &SearchCtx<'_>, dist: &DistSpec, est: &GroupEst) -> f64 {
    match dist {
        DistSpec::Singleton | DistSpec::Replicated => 1.0,
        DistSpec::Hashed(cols) => {
            let skew = cols.iter().map(|c| est.skew_of(*c)).fold(0.0_f64, f64::max);
            ctx.cost.effective_parallelism(skew)
        }
        DistSpec::Any | DistSpec::Random => ctx.cost.cluster.num_segments as f64,
    }
}

fn group_est(ctx: &SearchCtx<'_>, gid: GroupId) -> Result<Arc<GroupEst>> {
    ctx.memo
        .group_est(gid, ctx.registry)
        .ok_or_else(|| OrcaError::Internal(format!("group {gid} missing statistics")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsDeriver;
    use orca_catalog::provider::MdProvider as _;
    use orca_catalog::stats::ColumnStats;
    use orca_catalog::{ColumnMeta, Distribution, MdCache, MemoryProvider, TableStats};
    use orca_common::{ColId, DataType, Datum, SegmentConfig};
    use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::ScalarExpr;

    /// Build the paper's running example end to end through the search:
    /// SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a, with
    /// T1 hashed on a, T2 hashed on a (so T2 must be redistributed on b).
    fn setup() -> (Arc<MemoryProvider>, Arc<ColumnRegistry>, LogicalExpr) {
        let provider = Arc::new(MemoryProvider::new());
        let registry = Arc::new(ColumnRegistry::new());
        for name in ["T1", "T2"] {
            let id = provider.register(
                name,
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            );
            let rows = if name == "T1" { 10_000.0 } else { 50_000.0 };
            let values: Vec<Datum> = (0..1000).map(|i| Datum::Int(i % 500)).collect();
            let stats = TableStats::new(rows, 2)
                .set_column(0, ColumnStats::from_column(&values, 16))
                .set_column(1, ColumnStats::from_column(&values, 16));
            provider.set_stats(id, stats);
            registry.fresh(&format!("{name}.a"), DataType::Int);
            registry.fresh(&format!("{name}.b"), DataType::Int);
        }
        let t1 = TableRef(
            provider
                .table(provider.table_by_name("T1").unwrap())
                .unwrap(),
        );
        let t2 = TableRef(
            provider
                .table(provider.table_by_name("T2").unwrap())
                .unwrap(),
        );
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
            },
            vec![
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t1,
                    cols: vec![ColId(0), ColId(1)],
                    parts: None,
                }),
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t2,
                    cols: vec![ColId(2), ColId(3)],
                    parts: None,
                }),
            ],
        );
        (provider, registry, join)
    }

    fn run_search(workers: usize) -> (Memo, GroupId, ReqdProps, Arc<ColumnRegistry>) {
        let (provider, registry, join) = setup();
        let md = MdAccessor::new(MdCache::new(), provider);
        let memo = Memo::new();
        let root = memo.copy_in(&join);
        let rules = RuleSet::all();
        let cost = CostModel::new(Default::default(), SegmentConfig::mpp_16());
        let ctx = SearchCtx {
            memo: &memo,
            rules: &rules,
            registry: &registry,
            md: &md,
            cost: &cost,
        };
        explore(&ctx, root, workers).unwrap();
        StatsDeriver::new(&memo, &md, &registry, 16)
            .derive(root)
            .unwrap();
        // Stats for every canonical group (rules created some).
        for g in memo.canonical_groups() {
            StatsDeriver::new(&memo, &md, &registry, 16)
                .derive(g)
                .unwrap();
        }
        implement(&ctx, root, workers).unwrap();
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(0)]));
        optimize(&ctx, root, &req, workers).unwrap();
        (memo, root, req, registry)
    }

    #[test]
    fn running_example_full_search() {
        let (memo, root, req, _) = run_search(1);
        // Exploration added the commuted join (Figure 6 shows both
        // [1,2] and [2,1] plus hash/NL implementations).
        let group = memo.group(root);
        let g = group.read();
        let names: Vec<String> = g.exprs.iter().map(|e| e.op.name()).collect();
        assert!(names.iter().filter(|n| *n == "InnerJoin").count() >= 2);
        assert!(names.iter().any(|n| n == "InnerHashJoin"));
        assert!(names.iter().any(|n| n == "InnerNLJoin"));
        // A best plan exists for the root request.
        let best = g
            .best_for(memo.intern_req(&req))
            .expect("plan for root request");
        assert!(best.cost.is_finite() && best.cost > 0.0);
        // The winning candidate satisfies the request.
        assert!(best.derived.satisfies(&req));
        // Enforcers were recorded in the Memo (Figure 6's black boxes).
        assert!(g.exprs.iter().any(|e| e.is_enforcer));
    }

    #[test]
    fn parallel_search_matches_serial_cost() {
        // Exploration now runs on the full worker pool (no serial pin), so
        // the 4-worker run exercises concurrent exploration end to end.
        let (memo1, root1, req, _) = run_search(1);
        let (memo4, root4, req4, _) = run_search(4);
        let rid1 = memo1.intern_req(&req);
        let rid4 = memo4.intern_req(&req4);
        let c1 = memo1.group(root1).read().best_for(rid1).unwrap().cost;
        let c4 = memo4.group(root4).read().best_for(rid4).unwrap().cost;
        assert!(
            (c1 - c4).abs() < 1e-9,
            "parallel and serial optimization must agree: {c1} vs {c4}"
        );
        // Confluence: both runs must converge on the same memo content —
        // same number of canonical groups and live expressions.
        assert_eq!(
            memo1.num_canonical_groups(),
            memo4.num_canonical_groups(),
            "serial and parallel exploration reached different group counts"
        );
        assert_eq!(memo1.num_exprs(), memo4.num_exprs());
        // Equal cost is necessary but not sufficient: the deterministic
        // tie-break must make the *extracted plans* structurally identical
        // even though group/expr ids differ between the two runs.
        let p1 = crate::extract::extract_plan(&memo1, root1, &req).unwrap();
        let p4 = crate::extract::extract_plan(&memo4, root4, &req4).unwrap();
        assert_eq!(
            p1,
            p4,
            "serial plan:\n{}\nparallel plan:\n{}",
            orca_expr::pretty::explain_physical(&p1),
            orca_expr::pretty::explain_physical(&p4)
        );
        // Both memos pass the dedup/directory cross-check.
        memo1.check_integrity().unwrap();
        memo4.check_integrity().unwrap();
    }

    #[test]
    fn plan_extraction_linkage() {
        let (memo, root, req, _) = run_search(2);
        let plan = crate::extract::extract_plan(&memo, root, &req).unwrap();
        // Shape: GatherMerge/Gather+Sort at top; hash join below; exactly
        // one Redistribute (T2 is hashed on a, the join needs b).
        let text = orca_expr::pretty::explain_physical(&plan);
        assert!(
            text.contains("GatherMerge") || text.contains("Gather"),
            "{text}"
        );
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("Redistribute"), "{text}");
        // Final delivered properties satisfy the request.
        assert!(plan.motion_count() >= 2);
    }
}
