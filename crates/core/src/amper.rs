//! AMPERe — Automatic capture of Minimal Portable Executable Repros (§6.1).
//!
//! "An AMPERe dump is automatically triggered when an unexpected error is
//! encountered, but can also be produced on demand to investigate
//! suboptimal query plans. The dump captures the minimal amount of data
//! needed to reproduce a problem, including the input query, optimizer
//! configurations and metadata."
//!
//! A dump is fully self-contained DXL: replaying it builds a file-based
//! metadata provider from the embedded metadata section and spawns an
//! optimization session identical to the original (Figure 10). Dumps with
//! an `expected_plan` double as regression test cases: "when replaying the
//! dump file, Orca might generate a plan different from the expected one…
//! such discrepancy causes the test case to fail."

use crate::engine::{OptStats, Optimizer, OptimizerConfig};
use orca_catalog::provider::MdProvider;
use orca_common::{OrcaError, Result};
use orca_dxl::{DxlDump, DxlPlan, DxlQuery, MetadataDoc};
use orca_expr::logical::{LogicalExpr, LogicalOp};
use orca_expr::physical::PhysicalPlan;
use orca_expr::scalar::ScalarExpr;
use std::path::Path;
use std::sync::Arc;

/// Harvest the minimal metadata a query needs: every referenced table,
/// its statistics and its indexes ("the dump captures the state of the MD
/// Cache which includes only the metadata acquired during the course of
/// query optimization").
pub fn harvest_metadata(expr: &LogicalExpr, provider: &dyn MdProvider) -> Result<MetadataDoc> {
    let mut doc = MetadataDoc::default();
    let mut seen = Vec::new();
    harvest_rec(expr, provider, &mut doc, &mut seen)?;
    Ok(doc)
}

fn harvest_rec(
    expr: &LogicalExpr,
    provider: &dyn MdProvider,
    doc: &mut MetadataDoc,
    seen: &mut Vec<orca_common::MdId>,
) -> Result<()> {
    if let LogicalOp::Get { table, .. } = &expr.op {
        if !seen.contains(&table.mdid) {
            seen.push(table.mdid);
            doc.tables.push(table.0.clone());
            if let Ok(stats) = provider.stats(table.mdid) {
                doc.stats.push((table.mdid, stats));
            }
            if let Ok(indexes) = provider.indexes(table.mdid) {
                for ix in indexes.iter() {
                    doc.indexes.push(ix.clone());
                }
            }
        }
    }
    // Subquery markers hold whole trees; harvest them too.
    let mut result = Ok(());
    expr.op.for_each_scalar(&mut |s| {
        if result.is_ok() {
            result = harvest_scalar(s, provider, doc, seen);
        }
    });
    result?;
    for c in &expr.children {
        harvest_rec(c, provider, doc, seen)?;
    }
    Ok(())
}

fn harvest_scalar(
    e: &ScalarExpr,
    provider: &dyn MdProvider,
    doc: &mut MetadataDoc,
    seen: &mut Vec<orca_common::MdId>,
) -> Result<()> {
    match e {
        ScalarExpr::Exists { subquery, .. } | ScalarExpr::ScalarSubquery { subquery, .. } => {
            harvest_rec(subquery, provider, doc, seen)
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            harvest_scalar(expr, provider, doc, seen)?;
            harvest_rec(subquery, provider, doc, seen)
        }
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            harvest_scalar(left, provider, doc, seen)?;
            harvest_scalar(right, provider, doc, seen)
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => {
            for x in v {
                harvest_scalar(x, provider, doc, seen)?;
            }
            Ok(())
        }
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => harvest_scalar(x, provider, doc, seen),
        _ => Ok(()),
    }
}

/// Build a dump for a query, optionally recording the error that triggered
/// it (Listing 2's `Stacktrace` section) and an expected plan (test-case
/// mode).
pub fn capture(
    query: &DxlQuery,
    config: &OptimizerConfig,
    provider: &dyn MdProvider,
    error: Option<&OrcaError>,
    expected_plan: Option<DxlPlan>,
) -> Result<DxlDump> {
    let metadata = harvest_metadata(&query.expr, provider)?;
    let stack_trace = error.map(|e| {
        format!(
            "1 orca::OrcaError::{} — {}\n2 orca::engine::Optimizer::optimize\n3 gpos::sched::Scheduler::run",
            e.kind(),
            e.message()
        )
    });
    Ok(DxlDump {
        query: query.clone(),
        config: config.to_kv(),
        metadata,
        stack_trace,
        expected_plan,
    })
}

/// Serialize a dump to disk.
pub fn save(dump: &DxlDump, path: &Path) -> Result<()> {
    std::fs::write(path, orca_dxl::dump_to_dxl(dump))
        .map_err(|e| OrcaError::Dxl(format!("cannot write dump {}: {e}", path.display())))
}

/// Load a dump from disk.
pub fn load(path: &Path) -> Result<DxlDump> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| OrcaError::Dxl(format!("cannot read dump {}: {e}", path.display())))?;
    orca_dxl::parse_dump(&text)
}

/// Replay a dump: rebuild provider + configuration from the dump and run an
/// identical optimization session (Figure 10). The backend system is not
/// involved at all.
pub fn replay(dump: &DxlDump) -> Result<(PhysicalPlan, OptStats)> {
    let provider = Arc::new(orca_dxl::de::provider_from_metadata(&dump.metadata));
    let config = OptimizerConfig::from_kv(&dump.config);
    let optimizer = Optimizer::new(provider, config);
    optimizer.optimize_query(&dump.query)
}

/// Replay a dump as a regression test: fails when the produced plan
/// deviates from the recorded expected plan.
pub fn replay_as_test(dump: &DxlDump) -> Result<PhysicalPlan> {
    let (plan, _) = replay(dump)?;
    if let Some(expected) = &dump.expected_plan {
        if plan != expected.plan {
            return Err(OrcaError::Internal(format!(
                "plan mismatch:\nexpected:\n{}\ngot:\n{}",
                orca_expr::pretty::explain_physical(&expected.plan),
                orca_expr::pretty::explain_physical(&plan)
            )));
        }
    }
    Ok(plan)
}

/// Run an optimization; on failure, capture a dump to `dump_path` before
/// propagating the error (the automatic trigger of §6.1).
pub fn optimize_with_capture(
    optimizer: &Optimizer,
    query: &DxlQuery,
    dump_path: &Path,
) -> Result<(PhysicalPlan, OptStats)> {
    match optimizer.optimize_query(query) {
        Ok(ok) => Ok(ok),
        Err(e) => {
            let dump = capture(
                query,
                &optimizer.config,
                optimizer.provider().as_ref(),
                Some(&e),
                None,
            )?;
            save(&dump, dump_path)?;
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::stats::ColumnStats;
    use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
    use orca_common::{ColId, DataType, Datum};
    use orca_expr::logical::{JoinKind, TableRef};
    use orca_expr::props::{DistSpec, OrderSpec};

    fn setup() -> (Arc<MemoryProvider>, DxlQuery) {
        let provider = Arc::new(MemoryProvider::new());
        let mut columns = Vec::new();
        for name in ["T1", "T2"] {
            let id = provider.register(
                name,
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            );
            let values: Vec<Datum> = (0..500).map(|i| Datum::Int(i % 100)).collect();
            provider.set_stats(
                id,
                TableStats::new(5000.0, 2)
                    .set_column(0, ColumnStats::from_column(&values, 8))
                    .set_column(1, ColumnStats::from_column(&values, 8)),
            );
            columns.push((format!("{name}.a"), DataType::Int));
            columns.push((format!("{name}.b"), DataType::Int));
        }
        let tref = |name: &str| {
            TableRef(
                provider
                    .table(provider.table_by_name(name).unwrap())
                    .unwrap(),
            )
        };
        let expr = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
            },
            vec![
                LogicalExpr::leaf(LogicalOp::Get {
                    table: tref("T1"),
                    cols: vec![ColId(0), ColId(1)],
                    parts: None,
                }),
                LogicalExpr::leaf(LogicalOp::Get {
                    table: tref("T2"),
                    cols: vec![ColId(2), ColId(3)],
                    parts: None,
                }),
            ],
        );
        let query = DxlQuery {
            expr,
            output_cols: vec![ColId(0)],
            order: OrderSpec::by(&[ColId(0)]),
            dist: DistSpec::Singleton,
            columns,
        };
        (provider, query)
    }

    #[test]
    fn harvest_collects_each_table_once() {
        let (provider, query) = setup();
        let doc = harvest_metadata(&query.expr, provider.as_ref()).unwrap();
        assert_eq!(doc.tables.len(), 2);
        assert_eq!(doc.stats.len(), 2);
    }

    #[test]
    fn dump_roundtrip_and_replay_produces_identical_plan() {
        let (provider, query) = setup();
        let optimizer = Optimizer::new(provider.clone(), OptimizerConfig::default());
        let (plan, stats) = optimizer.optimize_query(&query).unwrap();
        // Capture with the plan as the expected plan (test-case mode).
        let dump = capture(
            &query,
            &optimizer.config,
            provider.as_ref() as &dyn MdProvider,
            None,
            Some(DxlPlan {
                plan: plan.clone(),
                cost: stats.plan_cost,
            }),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("orca_amper_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.dxl");
        save(&dump, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, dump);
        // Replay *without* the live provider reproduces the same plan.
        let replayed = replay_as_test(&loaded).unwrap();
        assert_eq!(replayed, plan);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_fault_triggers_dump_with_stacktrace() {
        let (provider, query) = setup();
        let config = OptimizerConfig {
            inject_fault: Some("optimize"),
            ..OptimizerConfig::default()
        };
        let optimizer = Optimizer::new(provider, config);
        let dir = std::env::temp_dir().join("orca_amper_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fault.dxl");
        let err = optimize_with_capture(&optimizer, &query, &path).unwrap_err();
        assert_eq!(err.kind(), "injected");
        let dump = load(&path).unwrap();
        let trace = dump.stack_trace.clone().expect("stack trace recorded");
        assert!(trace.contains("injected"), "{trace}");
        assert_eq!(dump.metadata.tables.len(), 2);
        // The dump replays cleanly once the fault flag is gone (from_kv
        // does not restore inject_fault — a repro runs without the fault).
        let (plan, _) = replay(&dump).unwrap();
        assert!(plan.size() > 0);
        std::fs::remove_file(&path).ok();
    }
}
