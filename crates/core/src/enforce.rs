//! The property-enforcement framework (§4.1 step 4, Figure 7).
//!
//! Three pieces, all operator-driven:
//!
//! 1. [`request_alternatives`] — "for each incoming request, each physical
//!    group expression passes corresponding requests to child groups
//!    depending on the incoming requirements and operator's local
//!    requirements". A hash join, for example, offers co-located,
//!    broadcast-inner and gather-everything alternatives (Figure 7a's
//!    footnote 2).
//! 2. [`derive_delivered`] — combine child plans' delivered properties into
//!    this operator's delivered properties (Figure 7b).
//! 3. [`enforcement_chains`] — when delivered ≠ required, the ways to plug
//!    in enforcers (Figure 7c shows the two alternatives for
//!    `{Singleton, <T1.a>}`: Sort-below-GatherMerge vs. Gather-then-Sort).

use crate::props::{DerivedProps, ReqdProps};
use orca_catalog::Distribution;
use orca_common::ColId;
use orca_expr::physical::{MotionKind, PhysicalOp};
use orca_expr::props::{DistSpec, OrderSpec};

/// Child-request alternatives for one operator under one request. Each
/// entry has exactly `op.arity()` child requests.
pub fn request_alternatives(op: &PhysicalOp, req: &ReqdProps) -> Vec<Vec<ReqdProps>> {
    match op {
        // Leaves: a single, empty alternative.
        PhysicalOp::TableScan { .. }
        | PhysicalOp::IndexScan { .. }
        | PhysicalOp::CteScan { .. }
        | PhysicalOp::ConstTable { .. }
        // Slicer-internal leaf; never enters the Memo, but the leaf shape
        // keeps this total over PhysicalOp.
        | PhysicalOp::ExchangeRecv { .. } => vec![vec![]],

        // Streaming pass-through operators push the request down. A filter
        // commutes with any motion, so it also offers the child its native
        // distribution and leaves the motion to the enforcement step above
        // itself — the enforcer is then costed on the *filtered* row count,
        // which is what makes predicate-below-motion plans win whenever the
        // predicate is selective.
        PhysicalOp::Filter { .. } => {
            let mut alts = vec![vec![req.clone()]];
            if !matches!(req.dist, DistSpec::Any) {
                alts.push(vec![req.without_dist()]);
            }
            alts
        }

        PhysicalOp::Project { exprs } => {
            // Push down only the parts whose columns survive below.
            // Pass-through entries keep their ColId, so "col defined by a
            // non-trivial expression" = not a pure self-reference.
            let passthrough: Vec<ColId> = exprs
                .iter()
                .filter_map(|(c, e)| match e {
                    orca_expr::scalar::ScalarExpr::ColRef(src) if src == c => Some(*c),
                    _ => None,
                })
                .collect();
            let order = if req.order.cols().iter().all(|c| passthrough.contains(c)) {
                req.order.clone()
            } else {
                OrderSpec::any()
            };
            let dist = match &req.dist {
                DistSpec::Hashed(cols) if !cols.iter().all(|c| passthrough.contains(c)) => {
                    DistSpec::Any
                }
                d => d.clone(),
            };
            vec![vec![ReqdProps {
                order,
                dist,
                rewindable: false,
            }]]
        }

        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            ..
        } => {
            let mut alts = vec![
                // (1) Align child distributions on the join condition so
                // tuples to be joined are co-located (Figure 7a).
                vec![
                    ReqdProps::hashed(left_keys.clone()),
                    ReqdProps::hashed(right_keys.clone()),
                ],
                // (2) Broadcast the (build) inner side.
                vec![ReqdProps::any(), ReqdProps::replicated()],
                // (3) Gather both to the master and join there.
                vec![
                    ReqdProps::singleton(OrderSpec::any()),
                    ReqdProps::singleton(OrderSpec::any()),
                ],
            ];
            // (4) Replicated outer is only sound for inner joins (an outer
            // row must not be duplicated across segments for LOJ/semi).
            if matches!(kind, orca_expr::JoinKind::Inner) {
                alts.push(vec![ReqdProps::replicated(), ReqdProps::any()]);
            }
            alts
        }

        PhysicalOp::NLJoin { kind, .. } => {
            let rewind = |r: ReqdProps| r.with_rewind();
            let mut alts = vec![
                vec![ReqdProps::any(), rewind(ReqdProps::replicated())],
                vec![
                    ReqdProps::singleton(OrderSpec::any()),
                    rewind(ReqdProps::singleton(OrderSpec::any())),
                ],
            ];
            if matches!(kind, orca_expr::JoinKind::Inner) {
                alts.push(vec![ReqdProps::replicated(), rewind(ReqdProps::any())]);
            }
            alts
        }

        // A Local-stage aggregate computes partials in place, whatever the
        // child's distribution — its Global partner combines them later.
        PhysicalOp::HashAgg {
            stage: orca_expr::logical::AggStage::Local,
            ..
        } => vec![vec![ReqdProps::any()]],
        PhysicalOp::StreamAgg {
            stage: orca_expr::logical::AggStage::Local,
            group_cols,
            ..
        } => vec![vec![ReqdProps::any().with_order(OrderSpec::by(group_cols))]],

        PhysicalOp::HashAgg { group_cols, .. } => {
            if group_cols.is_empty() {
                // Scalar aggregate: must see all rows in one place. The
                // parallel alternative is the split-agg rule's job.
                vec![vec![ReqdProps::singleton(OrderSpec::any())]]
            } else {
                vec![
                    vec![ReqdProps::hashed(group_cols.clone())],
                    vec![ReqdProps::singleton(OrderSpec::any())],
                ]
            }
        }

        PhysicalOp::StreamAgg { group_cols, .. } => {
            let order = OrderSpec::by(group_cols);
            vec![
                vec![ReqdProps::hashed(group_cols.clone()).with_order(order.clone())],
                vec![ReqdProps::singleton(order)],
            ]
        }

        PhysicalOp::Sort { .. } => vec![vec![req.without_order()]],

        PhysicalOp::Limit { order, .. } => {
            // Offset/limit semantics need a single stream in the right
            // order.
            vec![vec![ReqdProps::singleton(order.clone())]]
        }

        PhysicalOp::Motion { .. } => vec![vec![req.without_dist()]],

        PhysicalOp::Spool => vec![vec![ReqdProps {
            order: req.order.clone(),
            dist: req.dist.clone(),
            rewindable: false,
        }]],

        PhysicalOp::Sequence { .. } => {
            // Producer side unconstrained; consumer side gets the request.
            vec![vec![ReqdProps::any(), req.clone()]]
        }

        PhysicalOp::CteProducer { .. } => vec![vec![ReqdProps::any()]],

        PhysicalOp::AssertOneRow => {
            // Must observe the full stream to assert cardinality.
            vec![vec![ReqdProps::singleton(OrderSpec::any())]]
        }

        PhysicalOp::UnionAll { input_cols, .. } => {
            let n = input_cols.len();
            vec![
                vec![ReqdProps::any(); n],
                vec![ReqdProps::singleton(OrderSpec::any()); n],
            ]
        }

        PhysicalOp::HashSetOp { input_cols, .. } => {
            // Correctness needs identical rows co-located: hash each child
            // on all of its columns, or gather everything.
            let hashed: Vec<ReqdProps> = input_cols
                .iter()
                .map(|cols| ReqdProps::hashed(cols.clone()))
                .collect();
            let n = input_cols.len();
            vec![hashed, vec![ReqdProps::singleton(OrderSpec::any()); n]]
        }
    }
}

/// Map a base table's distribution to a `DistSpec` over the scan's output
/// column ids.
pub fn table_dist_spec(dist: &Distribution, cols: &[ColId]) -> DistSpec {
    match dist {
        Distribution::Hashed(idxs) => {
            let mapped: Option<Vec<ColId>> = idxs.iter().map(|i| cols.get(*i).copied()).collect();
            match mapped {
                Some(cols) => DistSpec::Hashed(cols),
                None => DistSpec::Random,
            }
        }
        Distribution::Random => DistSpec::Random,
        Distribution::Replicated => DistSpec::Replicated,
        Distribution::Singleton => DistSpec::Singleton,
    }
}

/// Combine child delivered properties into this operator's delivered
/// properties (Figure 7b: "after child best plans are found, InnerHashJoin
/// combines child properties to determine the delivered distribution and
/// sort order").
pub fn derive_delivered(
    op: &PhysicalOp,
    child: &[DerivedProps],
    output_cols: &[ColId],
) -> DerivedProps {
    match op {
        PhysicalOp::TableScan { table, cols, .. } => DerivedProps::new(
            OrderSpec::any(),
            table_dist_spec(&table.distribution, cols),
            true,
        ),
        PhysicalOp::IndexScan {
            table,
            cols,
            key_cols,
            ..
        } => DerivedProps::new(
            OrderSpec::by(key_cols),
            table_dist_spec(&table.distribution, cols),
            true,
        ),
        PhysicalOp::Filter { .. } => child[0].clone(),
        PhysicalOp::Project { .. } => DerivedProps::new(
            child[0].order.project(output_cols),
            child[0].dist.project(output_cols),
            child[0].rewindable,
        ),
        PhysicalOp::HashJoin { .. } => DerivedProps::new(
            OrderSpec::any(),
            join_dist(&child[0].dist, &child[1].dist),
            false,
        ),
        PhysicalOp::NLJoin { .. } => DerivedProps::new(
            child[0].order.clone(),
            join_dist(&child[0].dist, &child[1].dist),
            false,
        ),
        PhysicalOp::HashAgg { .. } => {
            DerivedProps::new(OrderSpec::any(), child[0].dist.project(output_cols), false)
        }
        PhysicalOp::StreamAgg { .. } => DerivedProps::new(
            child[0].order.project(output_cols),
            child[0].dist.project(output_cols),
            false,
        ),
        PhysicalOp::Sort { order } => DerivedProps::new(order.clone(), child[0].dist.clone(), true),
        PhysicalOp::Limit { .. } => child[0].clone(),
        PhysicalOp::Motion { kind } => DerivedProps::new(
            kind.delivered_order(&child[0].order),
            kind.delivered_dist(),
            false,
        ),
        PhysicalOp::Spool => DerivedProps::new(child[0].order.clone(), child[0].dist.clone(), true),
        PhysicalOp::Sequence { .. } => child[1].clone(),
        PhysicalOp::CteProducer { .. } => {
            DerivedProps::new(OrderSpec::any(), child[0].dist.clone(), true)
        }
        // Conservative: the consumer re-reads materialized per-segment data
        // with no co-location claim.
        PhysicalOp::CteScan { .. } => DerivedProps::new(OrderSpec::any(), DistSpec::Random, true),
        PhysicalOp::ConstTable { .. } => {
            DerivedProps::new(OrderSpec::any(), DistSpec::Singleton, true)
        }
        PhysicalOp::AssertOneRow => child[0].clone(),
        // Slicer-internal leaf (never in the Memo): delivers whatever the
        // interconnect hands it — nothing can be promised statically.
        PhysicalOp::ExchangeRecv { .. } => {
            DerivedProps::new(OrderSpec::any(), DistSpec::Any, false)
        }
        PhysicalOp::UnionAll { .. } | PhysicalOp::HashSetOp { .. } => {
            let all_singleton = child.iter().all(|c| c.dist == DistSpec::Singleton);
            DerivedProps::new(
                OrderSpec::any(),
                if all_singleton {
                    DistSpec::Singleton
                } else {
                    DistSpec::Random
                },
                false,
            )
        }
    }
}

fn join_dist(outer: &DistSpec, inner: &DistSpec) -> DistSpec {
    match (outer, inner) {
        (DistSpec::Singleton, DistSpec::Singleton) => DistSpec::Singleton,
        // Replicated outer: results live where the inner lives.
        (DistSpec::Replicated, d) => d.clone(),
        (DistSpec::Hashed(c), _) => DistSpec::Hashed(c.clone()),
        (DistSpec::Random, _) => DistSpec::Random,
        // Singleton outer with distributed inner, or replicated inner with
        // non-hashed outer: results follow the outer.
        (d, _) => d.clone(),
    }
}

/// One way of patching a delivered-properties gap with enforcers.
#[derive(Debug, Clone)]
pub struct EnforcerChain {
    /// Enforcer operators, innermost first.
    pub ops: Vec<PhysicalOp>,
    /// Properties delivered after the whole chain.
    pub delivered: DerivedProps,
}

/// All enforcement chains turning `delivered` into something satisfying
/// `req`. Empty `ops` (identity chain) is returned when already satisfied.
/// Multiple chains reflect genuinely different plans the cost model should
/// arbitrate (Figure 7c).
pub fn enforcement_chains(delivered: &DerivedProps, req: &ReqdProps) -> Vec<EnforcerChain> {
    if delivered.satisfies(req) {
        return vec![EnforcerChain {
            ops: vec![],
            delivered: delivered.clone(),
        }];
    }
    let mut chains: Vec<EnforcerChain> = Vec::new();

    // Plan A: enforce order below the motion (sorted streams + order-
    // preserving gather).
    {
        let mut ops = Vec::new();
        let mut cur = delivered.clone();
        if !cur.order.satisfies(&req.order) && !req.order.is_any() {
            ops.push(PhysicalOp::Sort {
                order: req.order.clone(),
            });
            cur.order = req.order.clone();
            cur.rewindable = true;
        }
        if !cur.dist.satisfies(&req.dist) {
            let kind = match &req.dist {
                DistSpec::Singleton if !req.order.is_any() => {
                    MotionKind::GatherMerge(req.order.clone())
                }
                DistSpec::Singleton => MotionKind::Gather,
                DistSpec::Hashed(cols) => MotionKind::Redistribute(cols.clone()),
                DistSpec::Replicated => MotionKind::Broadcast,
                DistSpec::Any | DistSpec::Random => unreachable!("satisfied above"),
            };
            cur.order = kind.delivered_order(&cur.order);
            cur.dist = kind.delivered_dist();
            cur.rewindable = false;
            ops.push(PhysicalOp::Motion { kind });
        }
        // Motion may have destroyed the order (non-merge motions).
        if !cur.order.satisfies(&req.order) {
            ops.push(PhysicalOp::Sort {
                order: req.order.clone(),
            });
            cur.order = req.order.clone();
            cur.rewindable = true;
        }
        if req.rewindable && !cur.rewindable {
            ops.push(PhysicalOp::Spool);
            cur.rewindable = true;
        }
        debug_assert!(cur.satisfies(req), "chain A must satisfy the request");
        chains.push(EnforcerChain {
            ops,
            delivered: cur,
        });
    }

    // Plan B: when both distribution and order must change toward a
    // singleton, also offer motion-first + sort-at-the-master (Figure 7c's
    // right-hand plan).
    if req.dist == DistSpec::Singleton
        && !delivered.dist.satisfies(&req.dist)
        && !req.order.is_any()
        && !delivered.order.satisfies(&req.order)
    {
        let mut ops = vec![PhysicalOp::Motion {
            kind: MotionKind::Gather,
        }];
        let mut cur = DerivedProps::new(OrderSpec::any(), DistSpec::Singleton, false);
        ops.push(PhysicalOp::Sort {
            order: req.order.clone(),
        });
        cur.order = req.order.clone();
        cur.rewindable = true;
        if req.rewindable && !cur.rewindable {
            ops.push(PhysicalOp::Spool);
        }
        debug_assert!(cur.satisfies(req), "chain B must satisfy the request");
        chains.push(EnforcerChain {
            ops,
            delivered: cur,
        });
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_expr::JoinKind;

    fn join_op() -> PhysicalOp {
        PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(0)],
            right_keys: vec![ColId(3)],
            residual: None,
        }
    }

    #[test]
    fn hash_join_offers_colocated_broadcast_gather() {
        let alts = request_alternatives(&join_op(), &ReqdProps::any());
        assert_eq!(alts.len(), 4); // + replicated-outer for inner joins
        assert_eq!(
            alts[0],
            vec![
                ReqdProps::hashed(vec![ColId(0)]),
                ReqdProps::hashed(vec![ColId(3)])
            ]
        );
        assert_eq!(alts[1][1].dist, DistSpec::Replicated);
        assert_eq!(alts[2][0].dist, DistSpec::Singleton);
        // Semi joins drop the replicated-outer alternative.
        let semi = PhysicalOp::HashJoin {
            kind: JoinKind::LeftSemi,
            left_keys: vec![ColId(0)],
            right_keys: vec![ColId(3)],
            residual: None,
        };
        assert_eq!(request_alternatives(&semi, &ReqdProps::any()).len(), 3);
    }

    #[test]
    fn nl_join_inner_must_be_rewindable() {
        let op = PhysicalOp::NLJoin {
            kind: JoinKind::LeftSemi,
            pred: orca_expr::scalar::ScalarExpr::col_eq_col(ColId(0), ColId(3)),
        };
        for alt in request_alternatives(&op, &ReqdProps::any()) {
            assert!(alt[1].rewindable, "inner child must be rewindable");
            assert!(!alt[0].rewindable);
        }
    }

    #[test]
    fn figure7_running_example_chains() {
        // InnerHashJoin with co-located children delivers
        // {Hashed(T1.a), Any-order}; the request is {Singleton, <T1.a>}.
        let delivered =
            DerivedProps::new(OrderSpec::any(), DistSpec::Hashed(vec![ColId(0)]), false);
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(0)]));
        let chains = enforcement_chains(&delivered, &req);
        assert_eq!(chains.len(), 2, "Figure 7c shows exactly two plans");
        // Plan A: Sort on segments, then GatherMerge.
        let a: Vec<String> = chains[0].ops.iter().map(|o| o.name()).collect();
        assert!(a[0].starts_with("Sort"));
        assert!(a[1].starts_with("GatherMerge"));
        // Plan B: Gather, then Sort at the master.
        let b: Vec<String> = chains[1].ops.iter().map(|o| o.name()).collect();
        assert_eq!(b[0], "Gather");
        assert!(b[1].starts_with("Sort"));
        for c in &chains {
            assert!(c.delivered.satisfies(&req));
        }
    }

    #[test]
    fn identity_chain_when_satisfied() {
        let delivered = DerivedProps::new(OrderSpec::by(&[ColId(1)]), DistSpec::Singleton, true);
        let req = ReqdProps::singleton(OrderSpec::by(&[ColId(1)]));
        let chains = enforcement_chains(&delivered, &req);
        assert_eq!(chains.len(), 1);
        assert!(chains[0].ops.is_empty());
    }

    #[test]
    fn redistribute_then_sort_for_hashed_ordered_request() {
        let delivered = DerivedProps::new(OrderSpec::any(), DistSpec::Random, false);
        let req = ReqdProps::hashed(vec![ColId(2)]).with_order(OrderSpec::by(&[ColId(1)]));
        let chains = enforcement_chains(&delivered, &req);
        // Chain A: Sort first (destroyed by redistribute) is wasteful but
        // the implementation sorts, redistributes, re-sorts; verify the
        // final delivered properties are right regardless.
        for c in &chains {
            assert!(c.delivered.satisfies(&req));
            assert!(c.ops.iter().any(|o| matches!(
                o,
                PhysicalOp::Motion {
                    kind: MotionKind::Redistribute(_)
                }
            )));
        }
    }

    #[test]
    fn spool_added_for_rewind() {
        let delivered = DerivedProps::new(OrderSpec::any(), DistSpec::Replicated, false);
        let req = ReqdProps::replicated().with_rewind();
        let chains = enforcement_chains(&delivered, &req);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].ops, vec![PhysicalOp::Spool]);
        assert!(chains[0].delivered.rewindable);
    }

    #[test]
    fn table_dist_mapping() {
        assert_eq!(
            table_dist_spec(&Distribution::Hashed(vec![1]), &[ColId(10), ColId(11)]),
            DistSpec::Hashed(vec![ColId(11)])
        );
        assert_eq!(
            table_dist_spec(&Distribution::Replicated, &[]),
            DistSpec::Replicated
        );
        assert_eq!(
            table_dist_spec(&Distribution::Random, &[]),
            DistSpec::Random
        );
    }

    #[test]
    fn derived_props_for_scan_and_motion() {
        use orca_catalog::{ColumnMeta, TableDesc};
        use orca_common::{DataType, MdId, SysId};
        use orca_expr::logical::TableRef;
        use std::sync::Arc;
        let t = TableRef(Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t",
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Hashed(vec![0]),
        )));
        let scan = PhysicalOp::TableScan {
            table: t,
            cols: vec![ColId(5)],
            parts: None,
        };
        let d = derive_delivered(&scan, &[], &[ColId(5)]);
        assert_eq!(d.dist, DistSpec::Hashed(vec![ColId(5)]));
        assert!(d.rewindable);
        let motion = PhysicalOp::Motion {
            kind: MotionKind::Gather,
        };
        let d2 = derive_delivered(&motion, &[d], &[ColId(5)]);
        assert_eq!(d2.dist, DistSpec::Singleton);
        assert!(!d2.rewindable);
    }
}
