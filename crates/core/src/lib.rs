//! `orca` — the query optimizer itself: a modular, multi-core, Cascades-style
//! top-down optimizer reproducing *Orca: A Modular Query Optimizer
//! Architecture for Big Data* (SIGMOD 2014).
//!
//! The crate mirrors Figure 3's component layout:
//!
//! * [`memo`] — the Memo: groups of logically equivalent expressions with
//!   built-in duplicate detection (§3, §4.1).
//! * [`props`] — optimization requests (required sort order, distribution,
//!   rewindability) and the property-enforcement framework (§4.1 step 4).
//! * [`rules`] — transformation rules: exploration and implementation,
//!   individually activatable (§3 "Transformations").
//! * [`stats`] — statistics derivation on the compact Memo with
//!   promise-based expression selection (§4.1 step 2).
//! * [`cost`] — the MPP-aware cost model (segments, motions, spilling,
//!   skew).
//! * [`search`] — the seven optimization job types of §4.2 running on the
//!   GPOS scheduler, giving multi-core optimization.
//! * [`extract`] — plan extraction over the request linkage structure
//!   (Figure 6).
//! * [`preprocess`] — the pre-Memo normalization pass: subquery unnesting,
//!   predicate pushdown, static partition elimination, CTE inlining
//!   heuristics (see DESIGN.md §2 for how this maps to Orca).
//! * [`engine`] — the optimizer facade: configuration, multi-stage
//!   optimization, DXL entry points.
//! * [`amper`] — AMPERe: automatic capture and replay of minimal repros
//!   (§6.1).
//! * [`taqo`] — TAQO: testing the accuracy of the cost model by sampling
//!   plans from the Memo and rank-correlating estimated vs. actual cost
//!   (§6.2).

pub mod amper;
pub mod cost;
pub mod enforce;
pub mod engine;
pub mod extract;
pub mod memo;
pub mod preprocess;
pub mod props;
pub mod rules;
pub mod search;
pub mod stats;
pub mod taqo;

pub use cost::CostModel;
pub use engine::{OptStats, Optimizer, OptimizerConfig, StageConfig};
pub use memo::{GroupId, Memo};
pub use props::ReqdProps;
