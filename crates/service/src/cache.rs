//! The versioned plan cache.
//!
//! Entries are keyed by a *version-normalized* query fingerprint
//! (`orca_dxl::query_fingerprint`), so the same query shape always lands on
//! the same slot regardless of catalog versions. Each entry records the
//! exact `MdId` set (versions included) the optimizer touched while
//! producing it; a lookup presents the id set a fresh optimization *would*
//! touch, and any mismatch means some `bump_table_version` happened in
//! between — the stale entry is evicted on the spot and the lookup misses.
//!
//! Sharded like the Memo's dedup index to keep concurrent sessions off each
//! other's locks, with per-shard LRU eviction under a byte budget that
//! skips pinned entries (prepared statements stay resident).

use crate::ServiceStats;
use orca::OptStats;
use orca_common::MdId;
use orca_expr::physical::PhysicalPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The cached payload: the serialized plan document, the in-memory plan
/// tree (so cache hits can go straight to the executor without
/// re-parsing DXL), and the optimizer diagnostics of the run that
/// produced it.
#[derive(Debug)]
pub struct CachedPlan {
    pub plan_dxl: String,
    /// The physical plan itself, executable as-is on a cache hit.
    pub plan: PhysicalPlan,
    pub cost: f64,
    pub stats: OptStats,
}

impl CachedPlan {
    /// Accounting size of one entry against the byte budget.
    fn bytes(&self, md_ids: &[MdId]) -> u64 {
        // DXL text dominates; the plan tree is charged per node, the id
        // set and fixed struct overhead are approximated.
        self.plan_dxl.len() as u64 + plan_nodes(&self.plan) * 96 + md_ids.len() as u64 * 24 + 128
    }
}

fn plan_nodes(p: &PhysicalPlan) -> u64 {
    1 + p.children.iter().map(plan_nodes).sum::<u64>()
}

#[derive(Debug)]
struct Entry {
    md_ids: Vec<MdId>,
    payload: Arc<CachedPlan>,
    bytes: u64,
    last_used: u64,
    pins: u32,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    bytes: u64,
}

/// Result of a cache probe.
#[derive(Debug)]
pub enum CacheLookup {
    Hit(Arc<CachedPlan>),
    /// An entry existed but its recorded `MdId` versions no longer match
    /// the current catalog: it has been evicted.
    Stale,
    Miss,
}

#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
    /// Per-shard byte budget.
    shard_budget: u64,
    /// LRU clock: bumped on every touch; cheap and deterministic enough
    /// (exact wall-clock recency is not needed, only relative order).
    tick: AtomicU64,
    pub evictions: AtomicU64,
    pub invalidations: AtomicU64,
}

impl PlanCache {
    pub fn new(total_bytes: u64, shards: usize) -> PlanCache {
        let n = shards.max(1).next_power_of_two();
        PlanCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (n - 1) as u64,
            shard_budget: (total_bytes / n as u64).max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        // Fingerprints are FNV-mixed already; low bits select the shard.
        &self.shards[(fingerprint & self.mask) as usize]
    }

    /// Probe for `fingerprint`. `current_ids` is the sorted, deduped id set
    /// a fresh optimization of this query would record (the query's tables
    /// at their *current* catalog versions).
    pub fn lookup(&self, fingerprint: u64, current_ids: &[MdId]) -> CacheLookup {
        let mut shard = self.shard(fingerprint).lock();
        let Some(entry) = shard.map.get_mut(&fingerprint) else {
            return CacheLookup::Miss;
        };
        if entry.md_ids != current_ids {
            // Some referenced table was re-versioned since this plan was
            // cached; drop it now rather than waiting for LRU pressure.
            let stale = shard.map.remove(&fingerprint).expect("entry just seen");
            shard.bytes -= stale.bytes;
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Stale;
        }
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        CacheLookup::Hit(entry.payload.clone())
    }

    /// Insert (or replace) the plan for `fingerprint`. Evicts
    /// least-recently-used unpinned entries until the shard fits its
    /// budget; over-budget pinned entries are tolerated.
    pub fn insert(&self, fingerprint: u64, md_ids: Vec<MdId>, payload: Arc<CachedPlan>) {
        let bytes = payload.bytes(&md_ids);
        let mut shard = self.shard(fingerprint).lock();
        if let Some(old) = shard.map.remove(&fingerprint) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        shard.map.insert(
            fingerprint,
            Entry {
                md_ids,
                payload,
                bytes,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                pins: 0,
            },
        );
        while shard.bytes > self.shard_budget {
            let victim = shard
                .map
                .iter()
                .filter(|(fp, e)| e.pins == 0 && **fp != fingerprint)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            let Some(fp) = victim else { break };
            let evicted = shard.map.remove(&fp).expect("victim just seen");
            shard.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pin an entry so LRU pressure cannot evict it (version invalidation
    /// still can — a stale plan is useless however popular). Returns `None`
    /// if the fingerprint is not resident.
    pub fn pin(self: &Arc<Self>, fingerprint: u64) -> Option<PinGuard> {
        let mut shard = self.shard(fingerprint).lock();
        let entry = shard.map.get_mut(&fingerprint)?;
        entry.pins += 1;
        Some(PinGuard {
            cache: self.clone(),
            fingerprint,
        })
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Whether a (non-stale-checked) entry exists for `fingerprint`.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.shard(fingerprint)
            .lock()
            .map
            .contains_key(&fingerprint)
    }

    /// Merge this cache's counters into a stats snapshot (used by
    /// `Service::stats`).
    pub fn fill_stats(&self, stats: &mut ServiceStats) {
        stats.cache_evictions = self.evictions.load(Ordering::Relaxed);
        stats.cache_invalidations = self.invalidations.load(Ordering::Relaxed);
    }
}

/// RAII pin: the entry stays eviction-exempt until the guard drops.
#[derive(Debug)]
pub struct PinGuard {
    cache: Arc<PlanCache>,
    fingerprint: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut shard = self.cache.shard(self.fingerprint).lock();
        if let Some(e) = shard.map.get_mut(&self.fingerprint) {
            e.pins = e.pins.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::{MdId, SysId};

    fn plan(text: &str) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            plan_dxl: text.to_string(),
            plan: PhysicalPlan::leaf(orca_expr::physical::PhysicalOp::ConstTable {
                cols: Vec::new(),
                rows: Vec::new(),
            }),
            cost: 1.0,
            stats: OptStats::default(),
        })
    }

    fn ids(v: u32) -> Vec<MdId> {
        vec![MdId::new(SysId::Gpdb, 1, v)]
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let c = PlanCache::new(1 << 20, 4);
        assert!(matches!(c.lookup(42, &ids(1)), CacheLookup::Miss));
        c.insert(42, ids(1), plan("p"));
        assert!(matches!(c.lookup(42, &ids(1)), CacheLookup::Hit(_)));
        // Version moved on → stale, evicted, then a plain miss.
        assert!(matches!(c.lookup(42, &ids(2)), CacheLookup::Stale));
        assert!(matches!(c.lookup(42, &ids(2)), CacheLookup::Miss));
        assert_eq!(c.invalidations.load(Ordering::Relaxed), 1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        // One shard, budget fits ~2 entries of this size.
        let c = PlanCache::new(600, 1);
        c.insert(1, ids(1), plan("x"));
        c.insert(2, ids(1), plan("y"));
        // Touch 1 so 2 is the LRU victim.
        assert!(matches!(c.lookup(1, &ids(1)), CacheLookup::Hit(_)));
        c.insert(3, ids(1), plan("z"));
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let c = Arc::new(PlanCache::new(600, 1));
        c.insert(1, ids(1), plan("x"));
        let guard = c.pin(1).expect("resident");
        c.insert(2, ids(1), plan("y"));
        c.insert(3, ids(1), plan("z"));
        // 1 is pinned: pressure lands on 2 instead.
        assert!(c.contains(1));
        assert!(!c.contains(2));
        drop(guard);
        c.insert(4, ids(1), plan("w"));
        // Unpinned now and least recently used → evictable.
        assert!(!c.contains(1));
    }
}
