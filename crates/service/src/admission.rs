//! Admission control: a bounded set of concurrent optimizations plus a
//! FIFO overflow queue.
//!
//! The gate is the service's load shedder. At most `max_concurrent`
//! requests optimize at once; up to `queue_depth` more wait in arrival
//! order; everyone else is rejected immediately so the caller can degrade
//! to a heuristic plan instead of piling onto a saturated optimizer.
//!
//! Deliberately built on `std::sync::{Mutex, Condvar}` — the vendored
//! `parking_lot` shim has no condition variable, and the queue wait path
//! needs timed blocking for per-request deadlines.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of [`AdmissionGate::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free; no waiting.
    Immediate,
    /// Waited in the overflow queue for this long before getting a slot.
    Queued(Duration),
    /// Overflow queue full — shed immediately.
    Rejected,
    /// The request's deadline expired while still queued.
    TimedOut,
}

#[derive(Debug, Default)]
struct GateState {
    running: usize,
    /// Ticket ids in arrival order; the head is next to admit.
    queue: VecDeque<u64>,
}

#[derive(Debug)]
pub struct AdmissionGate {
    max_concurrent: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl AdmissionGate {
    pub fn new(max_concurrent: usize, queue_depth: usize) -> AdmissionGate {
        AdmissionGate {
            max_concurrent: max_concurrent.max(1),
            queue_depth,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Try to enter the optimize section. On `Immediate`/`Queued` the
    /// caller MUST call [`AdmissionGate::release`] when done; on
    /// `Rejected`/`TimedOut` it must not.
    pub fn acquire(&self, ticket: u64, deadline: Option<Instant>) -> Admission {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.running < self.max_concurrent && st.queue.is_empty() {
            st.running += 1;
            return Admission::Immediate;
        }
        if st.queue.len() >= self.queue_depth {
            return Admission::Rejected;
        }
        let enqueued = Instant::now();
        st.queue.push_back(ticket);
        loop {
            if st.running < self.max_concurrent && st.queue.front() == Some(&ticket) {
                st.queue.pop_front();
                st.running += 1;
                // The next waiter may also be admittable (multiple releases
                // can land between our wakeups).
                self.cv.notify_all();
                return Admission::Queued(enqueued.elapsed());
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.queue.retain(|t| *t != ticket);
                        // Our departure may unblock the head-of-line check
                        // for whoever is behind us.
                        self.cv.notify_all();
                        return Admission::TimedOut;
                    }
                    let (guard, _) = self.cv.wait_timeout(st, d - now).expect("gate poisoned");
                    st = guard;
                }
                None => st = self.cv.wait(st).expect("gate poisoned"),
            }
        }
    }

    /// Leave the optimize section, waking queued waiters.
    pub fn release(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.running = st.running.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// Currently-running count (tests / introspection).
    pub fn running(&self) -> usize {
        self.state.lock().expect("gate poisoned").running
    }

    /// Currently-queued count (tests / introspection).
    pub fn queued(&self) -> usize {
        self.state.lock().expect("gate poisoned").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn immediate_until_full_then_rejects_past_queue() {
        let g = AdmissionGate::new(2, 1);
        assert_eq!(g.acquire(1, None), Admission::Immediate);
        assert_eq!(g.acquire(2, None), Admission::Immediate);
        // Slots full, queue depth 1: the third waits (use a deadline so the
        // test can't hang), the fourth is rejected while 3 occupies the
        // queue.
        let g = Arc::new(AdmissionGate::new(1, 0));
        assert_eq!(g.acquire(1, None), Admission::Immediate);
        assert_eq!(g.acquire(2, None), Admission::Rejected);
        g.release();
        assert_eq!(g.acquire(3, None), Admission::Immediate);
    }

    #[test]
    fn queued_request_times_out_at_deadline() {
        let g = AdmissionGate::new(1, 4);
        assert_eq!(g.acquire(1, None), Admission::Immediate);
        let d = Instant::now() + Duration::from_millis(20);
        assert_eq!(g.acquire(2, Some(d)), Admission::TimedOut);
        assert_eq!(g.queued(), 0);
        g.release();
    }

    #[test]
    fn fifo_order_and_handoff() {
        let g = Arc::new(AdmissionGate::new(1, 8));
        assert_eq!(g.acquire(0, None), Admission::Immediate);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let g = g.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so queue order is deterministic: the gate
                // is held by ticket 0 until all four are queued, so the
                // queue length only grows during this phase.
                while g.queued() != (t - 1) as usize {
                    std::thread::yield_now();
                }
                let a = g.acquire(t, None);
                assert!(matches!(a, Admission::Queued(_)));
                order.lock().unwrap().push(t);
                g.release();
            }));
        }
        // Wait until all four are queued, then open the gate.
        while g.queued() < 4 {
            std::thread::yield_now();
        }
        g.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(g.running(), 0);
    }
}
