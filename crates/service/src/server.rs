//! TCP front-end for the optimizer service: the paper's §3 deployment
//! shape, where Orca runs as a standalone process and clients exchange
//! DXL documents with it over a socket.
//!
//! The wire protocol reuses the executor interconnect's length-prefixed
//! frame layout (`[len: u32 LE][type: u8][payload]`, decoded by the same
//! resumable [`FrameReader`]) with its own frame-type namespace:
//!
//! * client → server: [`FRAME_REQ`] `{deadline_ms: u64, dxl: str}`
//!   (`deadline_ms == 0` means "use the service default"), and
//!   [`FRAME_CANCEL`] to close the in-flight response stream early;
//! * server → client: [`FRAME_PLAN`] (the [`PlanHeader`] — cost bits,
//!   degraded flag, plan source, fingerprint, plan DXL), zero or more
//!   [`FRAME_ROWS`] row batches, then exactly one terminator: a
//!   [`FRAME_DONE`] receipt or a typed [`FRAME_ERR`] `(kind, message)`
//!   pair that the client rebuilds into the same [`OrcaError`] variant.
//!
//! One connection is one session: the server opens a [`SessionId`] on
//! accept and closes it on disconnect. Requests on a connection run
//! sequentially through [`Service::submit_streaming`], so row batches
//! hit the socket as the serial cursor produces them — a client can
//! consume the head of a large result while the tail is still being
//! computed, or cancel and leave the producer to be torn down. Errors
//! are answers, not disconnects: a failed request emits `FRAME_ERR` and
//! the connection stays usable for the next request.
//!
//! Shutdown is a graceful drain: the listener stops accepting, idle
//! connections notice the flag at the next poll tick, and a connection
//! mid-response finishes writing it before exiting.

use crate::{PlanHeader, PlanSource, Service, SessionId, StreamSink};
use orca_common::{OrcaError, Result};
use orca_executor::codec;
use orca_executor::net::frame::{decode_abort, FrameReader};
use orca_executor::Row;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Client request: `{deadline_ms: u64, dxl: str}`.
pub const FRAME_REQ: u8 = 0x10;
/// Client cancel: close the current response stream early (no payload).
pub const FRAME_CANCEL: u8 = 0x11;
/// Response header: `{cost_bits: u64, degraded: u8, source: u8,
/// fingerprint: u64, plan_dxl: str}`.
pub const FRAME_PLAN: u8 = 0x20;
/// One result-row batch: `{nrows: u32, rows: [ncols: u32, datums...]}`.
pub const FRAME_ROWS: u8 = 0x21;
/// Success receipt: `{rows: u64, streamed: u8, early: u8,
/// latency_us: u64}`.
pub const FRAME_DONE: u8 = 0x22;
/// Typed failure: `{kind: str, message: str}` (same layout as the
/// interconnect's abort frame, so [`decode_abort`] rebuilds the variant).
pub const FRAME_ERR: u8 = 0x23;

/// Idle-poll granularity: how often a parked connection or the accept
/// loop re-checks shutdown, and how often a stalled write retries.
const POLL: Duration = Duration::from_millis(10);

/// Extra slack a client allows past its request deadline before calling
/// the server unresponsive: covers execution of the planned query, which
/// the optimization deadline does not bound.
const CLIENT_GRACE: Duration = Duration::from_secs(30);

fn net_err(what: &str, e: std::io::Error) -> OrcaError {
    OrcaError::Net(format!("{what}: {e}"))
}

/// Build one service frame: length prefix counting the type byte.
fn frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    codec::put_u32(&mut out, (payload.len() + 1) as u32);
    out.push(ty);
    out.extend_from_slice(payload);
    out
}

/// Write a whole frame through a socket with a short send timeout,
/// retrying short writes at poll granularity. `deadline` bounds how
/// long a stalled client may wedge the response (the per-connection
/// deadline).
fn write_all_poll(sock: &mut TcpStream, buf: &[u8], deadline: Option<Instant>) -> Result<()> {
    let mut off = 0;
    while off < buf.len() {
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(OrcaError::Timeout(
                    "response write exceeded the request deadline".into(),
                ));
            }
        }
        match sock.write(&buf[off..]) {
            Ok(0) => return Err(OrcaError::Net("peer closed connection".into())),
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Blocked sends already waited out the socket's send
                // timeout in the kernel; just re-check the deadline.
            }
            Err(e) => return Err(net_err("write failed", e)),
        }
    }
    Ok(())
}

fn source_code(s: PlanSource) -> u8 {
    match s {
        PlanSource::Cache => 0,
        PlanSource::Fresh => 1,
        PlanSource::Coalesced => 2,
        PlanSource::Fallback => 3,
    }
}

fn source_from_code(b: u8) -> Result<PlanSource> {
    Ok(match b {
        0 => PlanSource::Cache,
        1 => PlanSource::Fresh,
        2 => PlanSource::Coalesced,
        3 => PlanSource::Fallback,
        _ => return Err(OrcaError::Net(format!("bad plan source code {b}"))),
    })
}

fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut p = Vec::new();
    codec::put_u32(&mut p, rows.len() as u32);
    for row in rows {
        codec::put_u32(&mut p, row.len() as u32);
        for d in row {
            codec::encode_datum(&mut p, d);
        }
    }
    p
}

fn decode_rows(payload: &[u8]) -> Result<Vec<Row>> {
    let mut c = codec::Cursor::new(payload);
    let nrows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let ncols = c.u32()? as usize;
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(codec::decode_datum(&mut c)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// The connection-side [`StreamSink`]: forwards the plan header and each
/// row batch to the socket as frames, polling the connection's reader
/// between batches so a client [`FRAME_CANCEL`] closes the stream early.
struct ConnSink<'a> {
    sock: &'a mut TcpStream,
    reader: &'a mut FrameReader<TcpStream>,
    service: &'a Service,
    deadline: Option<Instant>,
    rows_sent: u64,
    early: bool,
}

impl ConnSink<'_> {
    fn write_frame(&mut self, ty: u8, payload: &[u8]) -> Result<()> {
        let buf = frame(ty, payload);
        write_all_poll(self.sock, &buf, self.deadline)?;
        let m = &self.service.metrics;
        m.net_frames_tx.fetch_add(1, Ordering::Relaxed);
        m.net_bytes_tx
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

impl StreamSink for ConnSink<'_> {
    fn on_plan(&mut self, h: &PlanHeader<'_>) -> Result<()> {
        let mut p = Vec::new();
        codec::put_u64(&mut p, h.cost.to_bits());
        p.push(h.degraded as u8);
        p.push(source_code(h.source));
        codec::put_u64(&mut p, h.fingerprint);
        codec::put_str(&mut p, h.plan_dxl);
        self.write_frame(FRAME_PLAN, &p)
    }

    fn on_rows(&mut self, rows: &[Row]) -> Result<bool> {
        // Drain anything the client sent since the last batch; a cancel
        // ends the stream before this batch is encoded or written. The
        // socket flips to nonblocking for the poll so an idle client
        // costs nothing, then back so the request loop's reads keep
        // waiting in the kernel (`O_NONBLOCK` lives on the shared file
        // description, so the reader's dup sees the flip too). A read
        // error (client gone) propagates and aborts the producer.
        self.sock
            .set_nonblocking(true)
            .map_err(|e| net_err("set_nonblocking failed", e))?;
        let polled = self.poll_client_frames();
        let restore = self.sock.set_nonblocking(false);
        match polled? {
            Cancelled::Yes => {
                self.early = true;
                return Ok(false);
            }
            Cancelled::No => {}
        }
        restore.map_err(|e| net_err("set_nonblocking failed", e))?;
        self.write_frame(FRAME_ROWS, &encode_rows(rows))?;
        self.rows_sent += rows.len() as u64;
        Ok(true)
    }
}

enum Cancelled {
    Yes,
    No,
}

impl ConnSink<'_> {
    fn poll_client_frames(&mut self) -> Result<Cancelled> {
        while let Some((ty, payload)) = self.reader.poll_frame()? {
            let m = &self.service.metrics;
            m.net_frames_rx.fetch_add(1, Ordering::Relaxed);
            m.net_bytes_rx
                .fetch_add(payload.len() as u64 + 5, Ordering::Relaxed);
            if ty == FRAME_CANCEL {
                return Ok(Cancelled::Yes);
            }
        }
        Ok(Cancelled::No)
    }
}

/// One accepted connection: a session, a frame reader, and a request
/// loop that runs until the peer disconnects or the server drains.
struct Conn {
    service: Arc<Service>,
    sock: TcpStream,
    reader: FrameReader<TcpStream>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
}

impl Conn {
    fn run(mut self) {
        let session = self.service.open_session();
        loop {
            match self.reader.poll_frame() {
                Ok(Some((ty, payload))) => {
                    let m = &self.service.metrics;
                    m.net_frames_rx.fetch_add(1, Ordering::Relaxed);
                    m.net_bytes_rx
                        .fetch_add(payload.len() as u64 + 5, Ordering::Relaxed);
                    if ty == FRAME_REQ && self.handle(session, &payload).is_err() {
                        // Response frames stopped reaching the peer;
                        // nothing more can be said on this socket.
                        break;
                    }
                    // Anything else here is a stale cancel from a
                    // response that already finished: ignore it.
                }
                // The read already waited out the socket's receive
                // timeout in the kernel; no extra sleep needed.
                Ok(None) => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                }
                Err(_) => break, // peer closed or sent garbage
            }
        }
        let _ = self.service.close_session(session);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Serve one request end to end. `Err` means the *socket* failed —
    /// request-level failures are answered in-band with `FRAME_ERR`.
    fn handle(&mut self, session: SessionId, payload: &[u8]) -> Result<()> {
        self.service
            .metrics
            .net_requests
            .fetch_add(1, Ordering::Relaxed);
        let parsed = (|| -> Result<(u64, String)> {
            let mut c = codec::Cursor::new(payload);
            Ok((c.u64()?, c.str()?))
        })();
        let (deadline_ms, dxl) = match parsed {
            Ok(req) => req,
            Err(e) => return self.answer_err(&e, None),
        };
        let budget = if deadline_ms == 0 {
            self.service.config().default_deadline
        } else {
            Some(Duration::from_millis(deadline_ms))
        };
        let deadline = budget.map(|b| Instant::now() + b + CLIENT_GRACE);

        let mut sink = ConnSink {
            sock: &mut self.sock,
            reader: &mut self.reader,
            service: &self.service,
            deadline,
            rows_sent: 0,
            early: false,
        };
        let started = Instant::now();
        let result = self
            .service
            .submit_streaming(session, &dxl, budget, &mut sink);
        let (rows_sent, early) = (sink.rows_sent, sink.early);

        match result {
            Ok(ticket) => {
                let streamed = ticket
                    .response
                    .execution
                    .as_ref()
                    .is_some_and(|e| e.streamed);
                let m = &self.service.metrics;
                if streamed {
                    m.net_streamed.fetch_add(1, Ordering::Relaxed);
                }
                if early {
                    m.net_early_closed.fetch_add(1, Ordering::Relaxed);
                }
                let mut p = Vec::new();
                codec::put_u64(&mut p, rows_sent);
                p.push(streamed as u8);
                p.push(early as u8);
                codec::put_u64(&mut p, started.elapsed().as_micros() as u64);
                let buf = frame(FRAME_DONE, &p);
                write_all_poll(&mut self.sock, &buf, deadline)?;
                m.net_frames_tx.fetch_add(1, Ordering::Relaxed);
                m.net_bytes_tx
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => self.answer_err(&e, deadline),
        }
    }

    fn answer_err(&mut self, e: &OrcaError, deadline: Option<Instant>) -> Result<()> {
        let mut p = Vec::new();
        codec::put_str(&mut p, e.kind());
        codec::put_str(&mut p, e.message());
        let buf = frame(FRAME_ERR, &p);
        write_all_poll(&mut self.sock, &buf, deadline)?;
        let m = &self.service.metrics;
        m.net_frames_tx.fetch_add(1, Ordering::Relaxed);
        m.net_bytes_tx
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// The threaded TCP server fronting a [`Service`]: one acceptor thread,
/// one handler thread per connection, graceful drain on [`shutdown`].
///
/// [`shutdown`]: ServiceServer::shutdown
pub struct ServiceServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServiceServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `service`.
    pub fn start(service: Arc<Service>, addr: &str) -> Result<ServiceServer> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("bind failed", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| net_err("set_nonblocking failed", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| net_err("local_addr failed", e))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicU64::new(0));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            let conns = Arc::clone(&conns);
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            let reader_sock = match sock.try_clone() {
                                Ok(s) => s,
                                Err(_) => continue, // drop the connection
                            };
                            let _ = sock.set_nodelay(true);
                            // Blocking socket with short kernel timeouts:
                            // idle request reads park in the kernel and
                            // wake the instant bytes arrive, yet still
                            // surface every POLL tick to check shutdown.
                            if sock.set_read_timeout(Some(POLL)).is_err()
                                || sock.set_write_timeout(Some(POLL)).is_err()
                            {
                                continue;
                            }
                            service
                                .metrics
                                .net_connections
                                .fetch_add(1, Ordering::Relaxed);
                            active.fetch_add(1, Ordering::Relaxed);
                            let conn = Conn {
                                service: Arc::clone(&service),
                                sock,
                                reader: FrameReader::new(reader_sock),
                                shutdown: Arc::clone(&shutdown),
                                active: Arc::clone(&active),
                            };
                            let mut guard = conns.lock().unwrap();
                            guard.retain(|h| !h.is_finished());
                            guard.push(thread::spawn(move || conn.run()));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
                        Err(_) => thread::sleep(POLL), // transient accept error
                    }
                }
            })
        };

        Ok(ServiceServer {
            addr,
            shutdown,
            active,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, let every connection finish the
    /// response it is writing (idle ones exit at the next poll tick),
    /// and join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The plan header of a streamed response, as received by the client.
#[derive(Debug, Clone)]
pub struct ClientPlan {
    pub plan_dxl: String,
    pub cost: f64,
    pub degraded: bool,
    pub source: PlanSource,
    pub fingerprint: u64,
}

/// The success receipt terminating a streamed response.
#[derive(Debug, Clone, Copy)]
pub struct ClientDone {
    /// Rows the server sent (equals the rows received unless the stream
    /// was cancelled mid-batch).
    pub rows: u64,
    /// The first row batch was written before the producer finished —
    /// the response genuinely streamed.
    pub streamed: bool,
    /// The stream was closed early by a client cancel.
    pub early: bool,
    /// Server-side end-to-end latency for the request.
    pub latency: Duration,
}

/// One fully-received streamed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub plan: ClientPlan,
    pub rows: Vec<Row>,
    pub done: ClientDone,
}

/// Blocking client for [`ServiceServer`]: submits DXL, receives the
/// plan header, row batches, and the receipt. Reusable across requests
/// on one connection (= one server session).
pub struct ServiceClient {
    sock: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl ServiceClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServiceClient> {
        let sock = TcpStream::connect(addr).map_err(|e| net_err("connect failed", e))?;
        let _ = sock.set_nodelay(true);
        // Reads wake at poll granularity so a wall deadline can fire
        // even when the server goes silent.
        sock.set_read_timeout(Some(POLL))
            .map_err(|e| net_err("set_read_timeout failed", e))?;
        let reader_sock = sock.try_clone().map_err(|e| net_err("clone failed", e))?;
        Ok(ServiceClient {
            sock,
            reader: FrameReader::new(reader_sock),
        })
    }

    /// Submit a DXL query and collect the whole streamed response.
    /// `deadline` is the server-side optimization budget (`None` = the
    /// service default) and also bounds — plus [`CLIENT_GRACE`] — how
    /// long this client waits before declaring the server unresponsive.
    pub fn submit(&mut self, dxl: &str, deadline: Option<Duration>) -> Result<ClientResponse> {
        self.submit_limit(dxl, deadline, None)
    }

    /// [`submit`](ServiceClient::submit), cancelling the stream once
    /// `limit` rows have arrived (`Some(0)` cancels before reading the
    /// first frame — rows may still arrive that were already in flight).
    pub fn submit_limit(
        &mut self,
        dxl: &str,
        deadline: Option<Duration>,
        limit: Option<u64>,
    ) -> Result<ClientResponse> {
        let mut p = Vec::new();
        codec::put_u64(
            &mut p,
            deadline.map_or(0, |d| (d.as_millis() as u64).max(1)),
        );
        codec::put_str(&mut p, dxl);
        self.write_frame(FRAME_REQ, &p)?;
        let wall = deadline.map(|d| Instant::now() + d + CLIENT_GRACE);

        let mut cancelled = false;
        if limit == Some(0) {
            self.write_frame(FRAME_CANCEL, &[])?;
            cancelled = true;
        }

        let mut plan: Option<ClientPlan> = None;
        let mut rows: Vec<Row> = Vec::new();
        loop {
            let (ty, payload) = self.next_frame(wall)?;
            match ty {
                FRAME_PLAN => {
                    let mut c = codec::Cursor::new(&payload);
                    plan = Some(ClientPlan {
                        cost: f64::from_bits(c.u64()?),
                        degraded: c.u8()? != 0,
                        source: source_from_code(c.u8()?)?,
                        fingerprint: c.u64()?,
                        plan_dxl: c.str()?,
                    });
                }
                FRAME_ROWS => {
                    rows.extend(decode_rows(&payload)?);
                    if let Some(limit) = limit {
                        if !cancelled && rows.len() as u64 >= limit {
                            self.write_frame(FRAME_CANCEL, &[])?;
                            cancelled = true;
                        }
                    }
                }
                FRAME_DONE => {
                    let mut c = codec::Cursor::new(&payload);
                    let done = ClientDone {
                        rows: c.u64()?,
                        streamed: c.u8()? != 0,
                        early: c.u8()? != 0,
                        latency: Duration::from_micros(c.u64()?),
                    };
                    let plan = plan.ok_or_else(|| {
                        OrcaError::Net("response finished without a plan header".into())
                    })?;
                    return Ok(ClientResponse { plan, rows, done });
                }
                FRAME_ERR => return Err(decode_abort(&payload)?),
                other => {
                    return Err(OrcaError::Net(format!("unexpected frame type {other}")));
                }
            }
        }
    }

    fn write_frame(&mut self, ty: u8, payload: &[u8]) -> Result<()> {
        let buf = frame(ty, payload);
        self.sock
            .write_all(&buf)
            .map_err(|e| net_err("write failed", e))
    }

    fn next_frame(&mut self, wall: Option<Instant>) -> Result<(u8, Vec<u8>)> {
        loop {
            if let Some(f) = self.reader.poll_frame()? {
                return Ok(f);
            }
            if let Some(w) = wall {
                if Instant::now() > w {
                    return Err(OrcaError::Net(
                        "no response within the request deadline".into(),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecuteConfig, ServiceConfig};
    use orca_catalog::provider::{MdProvider, MemoryProvider};
    use orca_catalog::{ColumnMeta, Distribution};
    use orca_common::{DataType, Datum, SegmentConfig};
    use orca_dxl::{query_to_dxl, DxlQuery};
    use orca_executor::Database;
    use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
    use orca_expr::props::{DistSpec, OrderSpec};
    use orca_expr::scalar::{CmpOp, ScalarExpr};
    use orca_expr::ColumnRegistry;

    /// Two hashed tables of `rows` rows each, loaded into a database.
    fn provider_and_db(rows: i64) -> (Arc<MemoryProvider>, Arc<Database>) {
        let p = Arc::new(MemoryProvider::new());
        let mut db = Database::new(SegmentConfig::default());
        for name in ["t0", "t1"] {
            p.register(
                name,
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            );
            let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
            let data = (0..rows)
                .map(|i| vec![Datum::Int(i), Datum::Int(i * 2)])
                .collect();
            db.load_table(desc, data).unwrap();
        }
        (p, Arc::new(db))
    }

    fn join_query(p: &MemoryProvider) -> DxlQuery {
        let registry = ColumnRegistry::new();
        let mut tables = Vec::new();
        let mut first_col = Vec::new();
        for name in ["t0", "t1"] {
            let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
            let cols: Vec<_> = desc
                .columns
                .iter()
                .map(|c| registry.fresh(&format!("{name}.{}", c.name), c.dtype))
                .collect();
            first_col.push(cols[0]);
            tables.push(LogicalExpr::leaf(LogicalOp::Get {
                table: TableRef(desc),
                cols,
                parts: None,
            }));
        }
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::col(first_col[0]),
                    ScalarExpr::col(first_col[1]),
                ),
            },
            tables,
        );
        DxlQuery {
            output_cols: vec![first_col[0]],
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
            expr: join,
        }
    }

    fn serial_streaming_service(rows: i64) -> (Arc<Service>, String) {
        let (p, db) = provider_and_db(rows);
        let q = join_query(&p);
        let cfg = ServiceConfig {
            execute: Some(ExecuteConfig {
                parallel: false,
                batch_rows: 8,
                ..ExecuteConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let svc = Arc::new(Service::new(p, cfg));
        svc.attach_database(db);
        (svc, query_to_dxl(&q))
    }

    #[test]
    fn tcp_round_trip_matches_in_process() {
        let (svc, dxl) = serial_streaming_service(64);

        // In-process reference result (also warms the plan cache).
        let session = svc.open_session();
        let inproc = svc
            .submit_with_deadline(session, &dxl, None)
            .unwrap()
            .response;
        let expected = inproc.execution.as_ref().unwrap().rows.clone();
        assert_eq!(expected.len(), 64);

        let mut server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.addr()).unwrap();
        let resp = client.submit(&dxl, None).unwrap();

        assert_eq!(resp.plan.source, PlanSource::Cache);
        assert_eq!(resp.plan.plan_dxl, inproc.plan_dxl);
        assert_eq!(resp.plan.fingerprint, inproc.fingerprint);
        assert_eq!(resp.rows, expected);
        assert_eq!(resp.done.rows, 64);
        assert!(!resp.done.early);

        // A second request reuses the same connection and session.
        let again = client.submit(&dxl, None).unwrap();
        assert_eq!(again.rows, expected);

        let st = svc.stats();
        assert_eq!(st.net_connections, 1);
        assert_eq!(st.net_requests, 2);
        assert!(st.net_frames_tx >= 6); // 2 × (plan + ≥1 rows + done)
        assert!(st.net_bytes_tx > 0);
        assert!(st.net_frames_rx >= 2);
        server.shutdown();
    }

    #[test]
    fn tcp_parallel_engine_replays_chunks() {
        let (p, db) = provider_and_db(40);
        let q = join_query(&p);
        let cfg = ServiceConfig {
            execute: Some(ExecuteConfig {
                workers: 2,
                batch_rows: 8,
                ..ExecuteConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let svc = Arc::new(Service::new(p, cfg));
        svc.attach_database(db);

        let server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.addr()).unwrap();
        let resp = client.submit(&query_to_dxl(&q), None).unwrap();
        assert_eq!(resp.plan.source, PlanSource::Fresh);
        assert_eq!(resp.rows.len(), 40);
        assert_eq!(resp.done.rows, 40);
        // The parallel engine materializes before replaying: never
        // reported as genuinely streamed.
        assert!(!resp.done.streamed);
    }

    #[test]
    fn tcp_errors_are_typed_and_the_connection_survives() {
        let (svc, dxl) = serial_streaming_service(8);
        let server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.addr()).unwrap();

        let err = client.submit("this is not DXL", None).unwrap_err();
        assert_eq!(err.kind(), "dxl", "got: {err:?}");

        // The failed request answered in-band; the connection still works.
        let ok = client.submit(&dxl, None).unwrap();
        assert_eq!(ok.rows.len(), 8);
        assert_eq!(svc.stats().net_requests, 2);
        drop(server);
    }

    #[test]
    fn tcp_cancel_closes_the_stream_early() {
        let (svc, dxl) = serial_streaming_service(512);
        let server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let mut client = ServiceClient::connect(server.addr()).unwrap();

        // Cancel before reading anything: the sink sees it at the first
        // would-send moment, so no row frame is ever written.
        let resp = client.submit_limit(&dxl, None, Some(0)).unwrap();
        assert!(resp.done.early);
        assert_eq!(resp.done.rows, 0);
        assert!(resp.rows.is_empty());

        // The request still succeeded and the connection still works.
        let full = client.submit(&dxl, None).unwrap();
        assert_eq!(full.rows.len(), 512);
        assert!(!full.done.early);

        let st = svc.stats();
        assert_eq!(st.net_early_closed, 1);
        assert_eq!(st.executed, 2);
        drop(server);
    }

    #[test]
    fn shutdown_drains_connections_and_stops_accepting() {
        let (svc, dxl) = serial_streaming_service(8);
        let mut server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut client = ServiceClient::connect(addr).unwrap();
        client.submit(&dxl, None).unwrap();
        assert_eq!(server.active_connections(), 1);
        assert_eq!(svc.live_sessions(), 1);

        server.shutdown();
        assert_eq!(server.active_connections(), 0);
        assert_eq!(svc.live_sessions(), 0, "drain must close the session");

        // The listener is gone: new connections are refused outright or
        // die on first use.
        let refused = match ServiceClient::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.submit(&dxl, None).is_err(),
        };
        assert!(refused, "a drained server must not serve new requests");
        server.shutdown(); // idempotent
    }
}
