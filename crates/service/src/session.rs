//! Session management.
//!
//! The paper's optimizer-as-a-service picture (§3) has many host processes
//! holding long-lived connections to one optimizer process. A [`Session`]
//! is our in-process stand-in for one such connection: it owns a
//! per-session `MdAccessor` (its metadata pins outlive individual requests,
//! so repeat submissions hit the shared `MdCache`) and per-session request
//! accounting.

use orca_catalog::MdAccessor;
use orca_common::hash::FnvHashMap;
use orca_common::{OrcaError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Opaque session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// One client connection's state.
pub struct Session {
    pub id: SessionId,
    /// Session-scoped metadata access: pins accumulate across requests and
    /// release when the session closes (accessor drop).
    pub accessor: MdAccessor,
    pub submitted: AtomicU64,
}

impl Session {
    pub fn requests_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }
}

/// Directory of live sessions.
#[derive(Default)]
pub struct SessionManager {
    sessions: Mutex<FnvHashMap<u64, Arc<Session>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    pub fn open(&self, accessor: MdAccessor) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let session = Arc::new(Session {
            id,
            accessor,
            submitted: AtomicU64::new(0),
        });
        self.sessions.lock().insert(id.0, session);
        id
    }

    pub fn get(&self, id: SessionId) -> Result<Arc<Session>> {
        self.sessions
            .lock()
            .get(&id.0)
            .cloned()
            .ok_or_else(|| OrcaError::Internal(format!("unknown or closed session {}", id.0)))
    }

    /// Close a session, releasing its metadata pins once in-flight requests
    /// holding the `Arc` finish.
    pub fn close(&self, id: SessionId) -> Result<()> {
        self.sessions
            .lock()
            .remove(&id.0)
            .map(|_| ())
            .ok_or_else(|| OrcaError::Internal(format!("unknown or closed session {}", id.0)))
    }

    pub fn live_count(&self) -> usize {
        self.sessions.lock().len()
    }
}
