//! Optimizer-as-a-service (§3): an in-process serving layer in front of
//! [`orca::Optimizer`].
//!
//! The paper's headline architectural claim is that Orca runs *outside*
//! the host DBMS as a standalone service exchanging DXL. This crate
//! supplies the serving substrate that claim implies:
//!
//! * **sessions** ([`session`]) — one per client connection, each owning a
//!   per-session `MdAccessor` over the shared metadata cache;
//! * **admission control** ([`admission`]) — a bounded set of concurrent
//!   optimizations with a FIFO overflow queue and per-request deadlines;
//! * **a versioned plan cache** ([`cache`]) — keyed on a
//!   version-normalized query fingerprint, invalidated by `MdId` version
//!   drift, evicted LRU under a byte budget;
//! * **graceful degradation** — on deadline expiry or queue rejection the
//!   service answers with the best-so-far plan or the legacy planner's
//!   heuristic plan, tagged `degraded: true`, instead of an error;
//! * **in-flight request coalescing** — a cache-missing request whose
//!   fingerprint *and* versioned `MdId` set match an optimization already
//!   in flight does not take a second admission slot: it parks on the
//!   leader's in-flight entry and reuses the leader's response (tagged
//!   [`PlanSource::Coalesced`]), execution result included. The leader
//!   publishes only clean results — degraded, fallback, and error outcomes
//!   release the followers to optimize on their own;
//! * **a shared scan-fragment cache** ([`orca_executor::FragmentCache`]) —
//!   one byte-budgeted cache attached to every engine the execute path
//!   builds, so concurrent and repeated queries share materialized scan
//!   fragments (cooperative scans) across requests;
//! * **executor memory grants** ([`grants`]) — every execute-after-optimize
//!   request is admitted against a global executor-memory pool sized by
//!   [`ServiceConfig::executor_memory_bytes`]; the grant (seeded from the
//!   optimizer's cost estimate) becomes the query's
//!   [`orca_executor::MemoryTracker`], and a degraded (smaller) grant
//!   tightens the per-operator budget so the query spills instead of
//!   failing;
//! * **metrics** ([`metrics`]) — admission/cache/sharing counters and
//!   optimize latency percentiles.
//!
//! ```text
//! submit(dxl) ─ parse ─ rebind tables to current versions ─ fingerprint
//!    ├─ cache hit (id set matches) ──────────────────────► cached plan
//!    └─ miss/stale ─┬─ identical request in flight ─ await ► coalesced
//!                   └─ admission gate ─┬─ admitted ─ optimize(deadline)
//!                                      │     ├─ done ── cache + return
//!                                      │     ├─ truncated ─ degraded plan
//!                                      │     └─ timeout ─ fallback, degraded
//!                                      └─ rejected/queue-timeout ─ fallback
//! ```

pub mod admission;
pub mod cache;
pub mod grants;
pub mod metrics;
pub mod server;
pub mod session;

pub use admission::{Admission, AdmissionGate};
pub use cache::{CacheLookup, CachedPlan, PinGuard, PlanCache};
pub use grants::{MemoryGrant, MemoryGrantBroker};
pub use metrics::{ServiceMetrics, ServiceStats};
pub use server::{ServiceClient, ServiceServer};
pub use session::{Session, SessionId, SessionManager};

use orca::engine::QueryReqs;
use orca::{OptStats, Optimizer, OptimizerConfig};
use orca_catalog::provider::MdProvider;
use orca_catalog::MdAccessor;
use orca_common::{ColId, MdId, OrcaError, Result};
use orca_dxl::{plan_to_dxl, query_fingerprint, DxlPlan, DxlQuery};
use orca_executor::{
    Cursor, CursorOptions, Database, ExecStats, FragmentCache, MemoryBudget, MemoryTracker,
    ParallelConfig, ParallelEngine, ParallelStats, Row,
};
use orca_expr::logical::TableRef;
use orca_expr::physical::PhysicalPlan;
use orca_expr::ColumnRegistry;
use orca_planner::LegacyPlanner;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub optimizer: OptimizerConfig,
    /// Concurrent optimizations admitted at once. `0` = the optimizer's
    /// worker count (the default: one full search saturates the pool, so
    /// admitting more only adds queueing inside the scheduler).
    pub max_concurrent: usize,
    /// FIFO overflow queue depth; arrivals beyond it are shed to the
    /// fallback planner.
    pub queue_depth: usize,
    /// Per-request optimization budget (admission wait + search). `None` =
    /// unbounded.
    pub default_deadline: Option<Duration>,
    /// Plan-cache byte budget across all shards.
    pub cache_bytes: u64,
    /// Plan-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Byte budget of the shared scan-fragment cache the execute path
    /// attaches to every engine it builds.
    pub fragment_cache_bytes: u64,
    /// Global executor-memory pool every execution is admitted against
    /// (grants, fragment cache, and CTE spools all draw on it). `0` =
    /// unbounded: every request gets its full ask immediately and nothing
    /// queues or degrades.
    pub executor_memory_bytes: u64,
    /// Execute plans after planning (requires [`Service::attach_database`]);
    /// `None` = planning-only service.
    pub execute: Option<ExecuteConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            optimizer: OptimizerConfig::default(),
            max_concurrent: 0,
            queue_depth: 32,
            default_deadline: None,
            cache_bytes: 8 << 20,
            cache_shards: 8,
            fragment_cache_bytes: 32 << 20,
            executor_memory_bytes: 0,
            execute: None,
        }
    }
}

/// How the execute-after-optimize path runs plans.
#[derive(Debug, Clone)]
pub struct ExecuteConfig {
    /// Run on the [`ParallelEngine`]; `false` = the serial engine.
    pub parallel: bool,
    /// Compute workers for the parallel engine; `0` = host parallelism.
    pub workers: usize,
    /// Interconnect batch size in rows.
    pub batch_rows: usize,
    /// Interconnect channel capacity in batches (backpressure window).
    pub channel_capacity: usize,
    /// Per-query execution deadline.
    pub deadline: Option<Duration>,
    /// Run kernels through the vectorized columnar engine (`false` =
    /// row-at-a-time interpretation; results are byte-identical).
    pub columnar: bool,
}

impl Default for ExecuteConfig {
    fn default() -> ExecuteConfig {
        ExecuteConfig {
            parallel: true,
            workers: 0,
            batch_rows: 256,
            channel_capacity: 4,
            deadline: None,
            columnar: true,
        }
    }
}

impl ExecuteConfig {
    fn parallel_config(&self) -> ParallelConfig {
        let mut cfg = ParallelConfig::default();
        if self.workers != 0 {
            cfg.workers = self.workers;
        }
        cfg.batch_rows = self.batch_rows;
        cfg.channel_capacity = self.channel_capacity;
        cfg.deadline = self.deadline;
        cfg.columnar = self.columnar;
        cfg
    }
}

/// Outcome of executing a plan on the attached database.
#[derive(Debug, Clone)]
pub struct ExecSummary {
    /// The query's result rows, projected to its output columns.
    pub rows: Vec<Row>,
    /// Wall time of the execution alone (also folded into the service's
    /// execute-latency reservoir).
    pub latency: Duration,
    pub stats: ExecStats,
    /// Parallel-engine diagnostics; `None` when the serial engine ran.
    pub parallel: Option<ParallelStats>,
    /// Executor-memory bytes this query was granted on admission.
    pub mem_granted: u64,
    /// The grant was smaller than requested — the query ran with a
    /// tightened per-operator budget and spilled sooner.
    pub mem_degraded: bool,
    /// Time spent waiting in the memory-grant queue.
    pub mem_wait: Duration,
    /// Latency to the first delivered batch (streaming serial runs only;
    /// `None` on the parallel engine, which materializes before merging).
    pub first_batch: Option<Duration>,
    /// The first batch was delivered before the producer had finished the
    /// full result — the cursor genuinely streamed.
    pub streamed: bool,
}

/// Where a response's plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// Served from the plan cache (no optimization ran).
    Cache,
    /// Freshly optimized this request.
    Fresh,
    /// Reused from an identical request that was already in flight when
    /// this one arrived (no optimization and no execution ran here).
    Coalesced,
    /// The legacy planner's heuristic plan (always `degraded`).
    Fallback,
}

/// The service's answer to one submitted query.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// Serialized DXL plan document (Figure 2's output message).
    pub plan_dxl: String,
    pub cost: f64,
    /// The plan is best-effort: a truncated search's best-so-far result or
    /// the fallback planner's heuristic, not the exhaustive optimum.
    pub degraded: bool,
    pub source: PlanSource,
    /// Version-normalized query fingerprint (the cache key's identity
    /// half); stable across catalog version bumps.
    pub fingerprint: u64,
    /// Time spent in the admission queue.
    pub queue_wait: Duration,
    /// End-to-end service latency for this request.
    pub latency: Duration,
    /// Diagnostics of the optimization that produced the plan (`None` for
    /// fallback plans; for cache hits, the stats of the original run).
    pub stats: Option<OptStats>,
    /// Result of executing the plan, when the service is configured with
    /// an [`ExecuteConfig`] and a database is attached.
    pub execution: Option<ExecSummary>,
}

/// Receipt for one submission.
#[derive(Debug, Clone)]
pub struct PlanTicket {
    pub id: u64,
    pub session: SessionId,
    pub response: PlanResponse,
}

/// The streaming response header: everything about the plan that is
/// known before the first result row, sent to a [`StreamSink`] ahead of
/// the rows.
#[derive(Debug, Clone, Copy)]
pub struct PlanHeader<'a> {
    pub plan_dxl: &'a str,
    pub cost: f64,
    pub degraded: bool,
    pub source: PlanSource,
    pub fingerprint: u64,
}

/// Receives a streaming response: the plan header first, then result
/// rows batch by batch *as execution produces them* (the serial cursor
/// path genuinely streams; the parallel engine materializes first and
/// replays in batch-sized chunks). Implemented by the TCP front-end's
/// connection writer ([`server`]); any in-process consumer that wants
/// incremental delivery can implement it too.
pub trait StreamSink {
    /// The response header, exactly once, before any rows.
    fn on_plan(&mut self, header: &PlanHeader<'_>) -> Result<()>;
    /// One batch of result rows. Return `Ok(false)` to close the stream
    /// early: the producer stops, the request still succeeds, and the
    /// rows delivered so far are the response.
    fn on_rows(&mut self, rows: &[Row]) -> Result<bool>;
}

/// One in-flight optimization that identical later requests attach to
/// instead of taking their own admission slot.
struct Inflight {
    /// The exact versioned id set the leader optimizes against; a request
    /// that resolved to different versions must not reuse the result.
    md_ids: Vec<MdId>,
    /// `None` until the leader finishes. Then `Some(outcome)`, where the
    /// outcome is `None` when the leader produced nothing shareable
    /// (degraded, fallback, or error) and followers proceed on their own.
    done: Mutex<Option<Option<PlanResponse>>>,
    cv: Condvar,
}

/// RAII registration of the in-flight leader. Publishing a clean result
/// hands it to every parked follower; dropping without publishing (any
/// degraded/fallback/error exit) releases them empty-handed so nobody
/// hangs on a leader that went sideways.
struct InflightLease<'a> {
    service: &'a Service,
    fingerprint: u64,
    entry: Arc<Inflight>,
    published: bool,
}

impl InflightLease<'_> {
    fn publish(mut self, response: &PlanResponse) {
        self.finish(Some(response.clone()));
    }

    fn finish(&mut self, outcome: Option<PlanResponse>) {
        if self.published {
            return;
        }
        self.published = true;
        self.service
            .inflight
            .lock()
            .unwrap()
            .remove(&self.fingerprint);
        *self.entry.done.lock().unwrap() = Some(outcome);
        self.entry.cv.notify_all();
    }
}

impl Drop for InflightLease<'_> {
    fn drop(&mut self) {
        self.finish(None);
    }
}

/// How a cache-missing request relates to the in-flight table.
enum InflightJoin<'a> {
    /// First of its kind: registered, must publish (or drop) the lease.
    Lead(InflightLease<'a>),
    /// Attached to an identical in-flight request and got its result.
    Shared(Box<PlanResponse>),
    /// Proceed solo: a version-skewed twin is in flight, or the awaited
    /// leader had nothing shareable, or the wait hit this request's
    /// deadline.
    Alone,
}

/// The optimizer service.
pub struct Service {
    optimizer: Optimizer,
    config: ServiceConfig,
    sessions: SessionManager,
    gate: AdmissionGate,
    cache: Arc<PlanCache>,
    metrics: ServiceMetrics,
    next_ticket: AtomicU64,
    /// Execution backend for the execute-after-optimize path; absent in a
    /// planning-only deployment.
    database: RwLock<Option<Arc<Database>>>,
    /// Shared scan-fragment cache attached to every engine the execute
    /// path builds (cross-query cooperative scans).
    fragments: Arc<FragmentCache>,
    /// Admits executions against the global executor-memory pool.
    grants: Arc<MemoryGrantBroker>,
    /// Process-wide executor-memory accounting: operator state, spooled
    /// CTEs, and cached fragments all charge here.
    exec_budget: Arc<MemoryBudget>,
    /// Optimizations currently in flight, by query fingerprint.
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
}

impl Service {
    pub fn new(provider: Arc<dyn MdProvider>, config: ServiceConfig) -> Service {
        let optimizer = Optimizer::new(provider, config.optimizer.clone());
        let max_concurrent = if config.max_concurrent == 0 {
            optimizer.config.workers
        } else {
            config.max_concurrent
        };
        let exec_budget = Arc::new(MemoryBudget::new(config.executor_memory_bytes));
        Service {
            gate: AdmissionGate::new(max_concurrent, config.queue_depth),
            cache: Arc::new(PlanCache::new(config.cache_bytes, config.cache_shards)),
            metrics: ServiceMetrics::new(),
            sessions: SessionManager::new(),
            next_ticket: AtomicU64::new(0),
            database: RwLock::new(None),
            fragments: Arc::new(
                FragmentCache::new(config.fragment_cache_bytes)
                    .with_process_budget(Arc::clone(&exec_budget)),
            ),
            grants: Arc::new(MemoryGrantBroker::new(config.executor_memory_bytes)),
            exec_budget,
            inflight: Mutex::new(HashMap::new()),
            optimizer,
            config,
        }
    }

    /// Attach (or replace) the execution backend. With
    /// [`ServiceConfig::execute`] set, every subsequent response also
    /// carries the executed result rows.
    ///
    /// The shared fragment cache is keyed on (table name, `MdId` version,
    /// fingerprint), so replacing a database with one that reuses table
    /// names *and* versions for different data must bump versions first —
    /// otherwise stale fragments would satisfy new scans.
    pub fn attach_database(&self, db: Arc<Database>) {
        *self.database.write().unwrap() = Some(db);
    }

    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The shared scan-fragment cache the execute path attaches to every
    /// engine it builds.
    pub fn fragments(&self) -> &Arc<FragmentCache> {
        &self.fragments
    }

    /// The executor-memory grant broker executions are admitted through.
    pub fn grants(&self) -> &Arc<MemoryGrantBroker> {
        &self.grants
    }

    /// Process-wide executor-memory accounting (operator state, spooled
    /// CTEs, cached fragments).
    pub fn exec_budget(&self) -> &Arc<MemoryBudget> {
        &self.exec_budget
    }

    /// Open a session: mints a per-session `MdAccessor` over the shared
    /// metadata cache.
    pub fn open_session(&self) -> SessionId {
        let accessor = MdAccessor::new(
            self.optimizer.cache().clone(),
            self.optimizer.provider().clone(),
        );
        self.sessions.open(accessor)
    }

    pub fn close_session(&self, id: SessionId) -> Result<()> {
        self.sessions.close(id)
    }

    pub fn live_sessions(&self) -> usize {
        self.sessions.live_count()
    }

    /// Submit a DXL query document under the configured default deadline.
    pub fn submit(&self, session: SessionId, dxl: &str) -> Result<PlanTicket> {
        self.submit_with_deadline(session, dxl, self.config.default_deadline)
    }

    /// Submit with an explicit per-request budget (overrides the default).
    pub fn submit_with_deadline(
        &self,
        session: SessionId,
        dxl: &str,
        budget: Option<Duration>,
    ) -> Result<PlanTicket> {
        let query = orca_dxl::parse_query(dxl, self.optimizer.provider().as_ref())?;
        self.submit_query(session, &query, budget)
    }

    /// Submit an already-parsed query document (what in-process callers and
    /// the bench harness use to skip XML parsing).
    pub fn submit_query(
        &self,
        session: SessionId,
        query: &DxlQuery,
        budget: Option<Duration>,
    ) -> Result<PlanTicket> {
        self.submit_query_inner(session, query, budget, None)
    }

    /// Submit a DXL document and stream the response through `sink`: the
    /// plan header first, then result rows batch by batch. The returned
    /// ticket's `execution.rows` is empty — the rows went to the sink.
    pub fn submit_streaming(
        &self,
        session: SessionId,
        dxl: &str,
        budget: Option<Duration>,
        sink: &mut dyn StreamSink,
    ) -> Result<PlanTicket> {
        let query = orca_dxl::parse_query(dxl, self.optimizer.provider().as_ref())?;
        self.submit_query_inner(session, &query, budget, Some(sink))
    }

    /// [`Service::submit_streaming`] for an already-parsed document.
    pub fn submit_query_streaming(
        &self,
        session: SessionId,
        query: &DxlQuery,
        budget: Option<Duration>,
        sink: &mut dyn StreamSink,
    ) -> Result<PlanTicket> {
        self.submit_query_inner(session, query, budget, Some(sink))
    }

    fn submit_query_inner(
        &self,
        session: SessionId,
        query: &DxlQuery,
        budget: Option<Duration>,
        mut sink: Option<&mut dyn StreamSink>,
    ) -> Result<PlanTicket> {
        let started = Instant::now();
        let deadline = budget.map(|b| started + b);
        let sess = self.sessions.get(session)?;
        sess.submitted.fetch_add(1, Ordering::Relaxed);
        let ticket_id = self.next_ticket.fetch_add(1, Ordering::Relaxed);

        // Rebind every table to its *current* catalog version. DXL carries
        // explicit versioned MdIds, so without this a resubmission after
        // `bump_table_version` would silently optimize against stale
        // metadata — and the cache could never be told apart from it.
        let expr = query.expr.try_map_tables(&mut |t: &TableRef| {
            sess.accessor.table_by_name(&t.name).map(TableRef)
        })?;
        let query = DxlQuery {
            expr,
            output_cols: query.output_cols.clone(),
            order: query.order.clone(),
            dist: query.dist.clone(),
            columns: query.columns.clone(),
        };
        let fingerprint = query_fingerprint(&query);
        let mut current_ids: Vec<MdId> = Vec::new();
        query.expr.visit_tables(&mut |t| current_ids.push(t.mdid));
        current_ids.sort();
        current_ids.dedup();

        match self.cache.lookup(fingerprint, &current_ids) {
            CacheLookup::Hit(cached) => {
                ServiceMetrics::bump(&self.metrics.cache_hits);
                if let Some(s) = sink.as_deref_mut() {
                    s.on_plan(&PlanHeader {
                        plan_dxl: &cached.plan_dxl,
                        cost: cached.cost,
                        degraded: false,
                        source: PlanSource::Cache,
                        fingerprint,
                    })?;
                }
                let execution =
                    self.maybe_execute(&cached.plan, &query.output_cols, cached.cost, sink)?;
                return Ok(self.ticket(
                    ticket_id,
                    session,
                    PlanResponse {
                        plan_dxl: cached.plan_dxl.clone(),
                        cost: cached.cost,
                        degraded: false,
                        source: PlanSource::Cache,
                        fingerprint,
                        queue_wait: Duration::ZERO,
                        latency: started.elapsed(),
                        stats: Some(cached.stats.clone()),
                        execution,
                    },
                ));
            }
            CacheLookup::Stale | CacheLookup::Miss => {
                ServiceMetrics::bump(&self.metrics.cache_misses);
            }
        }

        // Coalesce with an identical request already in flight: same
        // fingerprint, same versioned id set. A follower parks on the
        // leader's entry instead of taking an admission slot, and reuses
        // the leader's full response — execution result included.
        // Streaming submissions bypass the in-flight table on both sides:
        // their rows go to the wire as they are produced, so there is no
        // materialized response to share and nothing to replay.
        let lease = if sink.is_some() {
            None
        } else {
            match self.join_inflight(fingerprint, &current_ids, deadline) {
                InflightJoin::Lead(lease) => Some(lease),
                InflightJoin::Shared(response) => {
                    ServiceMetrics::bump(&self.metrics.coalesced);
                    let mut response = *response;
                    response.source = PlanSource::Coalesced;
                    response.queue_wait = Duration::ZERO;
                    response.latency = started.elapsed();
                    return Ok(self.ticket(ticket_id, session, response));
                }
                InflightJoin::Alone => None,
            }
        };

        let queue_wait = match self.gate.acquire(ticket_id, deadline) {
            Admission::Immediate => Duration::ZERO,
            Admission::Queued(w) => {
                ServiceMetrics::bump(&self.metrics.queued);
                w
            }
            Admission::Rejected => {
                ServiceMetrics::bump(&self.metrics.rejected);
                return self.fallback(
                    ticket_id,
                    session,
                    &sess.accessor,
                    &query,
                    fingerprint,
                    started,
                    Duration::ZERO,
                    sink,
                );
            }
            Admission::TimedOut => {
                ServiceMetrics::bump(&self.metrics.queued);
                return self.fallback(
                    ticket_id,
                    session,
                    &sess.accessor,
                    &query,
                    fingerprint,
                    started,
                    started.elapsed(),
                    sink,
                );
            }
        };
        ServiceMetrics::bump(&self.metrics.admitted);
        let result = self
            .optimizer
            .optimize_query_with_deadline(&query, deadline);
        self.gate.release();

        match result {
            Ok((plan, stats)) => {
                let plan_dxl = plan_to_dxl(&DxlPlan {
                    plan: plan.clone(),
                    cost: stats.plan_cost,
                });
                let degraded = stats.timed_out;
                if degraded {
                    // Best-so-far from a truncated search: usable, but not
                    // worth caching — the next uncontended request should
                    // produce (and cache) the real optimum.
                    ServiceMetrics::bump(&self.metrics.degraded);
                } else {
                    self.cache.insert(
                        fingerprint,
                        stats.md_ids.clone(),
                        Arc::new(CachedPlan {
                            plan_dxl: plan_dxl.clone(),
                            plan: plan.clone(),
                            cost: stats.plan_cost,
                            stats: stats.clone(),
                        }),
                    );
                }
                self.metrics.record_latency(started.elapsed());
                if let Some(s) = sink.as_deref_mut() {
                    s.on_plan(&PlanHeader {
                        plan_dxl: &plan_dxl,
                        cost: stats.plan_cost,
                        degraded,
                        source: PlanSource::Fresh,
                        fingerprint,
                    })?;
                }
                let execution =
                    self.maybe_execute(&plan, &query.output_cols, stats.plan_cost, sink)?;
                let response = PlanResponse {
                    plan_dxl,
                    cost: stats.plan_cost,
                    degraded,
                    source: PlanSource::Fresh,
                    fingerprint,
                    queue_wait,
                    latency: started.elapsed(),
                    stats: Some(stats),
                    execution,
                };
                match lease {
                    // Only clean results are shared; a truncated search's
                    // best-so-far is not worth fanning out (mirrors the
                    // don't-cache-degraded rule above). Dropping the lease
                    // releases followers to optimize on their own.
                    Some(lease) if !degraded => lease.publish(&response),
                    _ => {}
                }
                Ok(self.ticket(ticket_id, session, response))
            }
            Err(OrcaError::Timeout(_)) => self.fallback(
                ticket_id,
                session,
                &sess.accessor,
                &query,
                fingerprint,
                started,
                queue_wait,
                sink,
            ),
            Err(e) => Err(e),
        }
    }

    /// Pin a cached plan (by response fingerprint) so LRU pressure cannot
    /// evict it — prepared-statement semantics. Version invalidation still
    /// applies.
    pub fn pin_plan(&self, fingerprint: u64) -> Option<PinGuard> {
        self.cache.pin(fingerprint)
    }

    /// Register as in-flight leader for `fingerprint`, or attach to an
    /// identical request already in flight and await its result.
    fn join_inflight(
        &self,
        fingerprint: u64,
        md_ids: &[MdId],
        deadline: Option<Instant>,
    ) -> InflightJoin<'_> {
        let entry = {
            let mut map = self.inflight.lock().unwrap();
            match map.get(&fingerprint) {
                Some(e) if e.md_ids == md_ids => Arc::clone(e),
                // Same shape against different catalog versions: neither
                // reusable nor worth displacing — optimize solo.
                Some(_) => return InflightJoin::Alone,
                None => {
                    let e = Arc::new(Inflight {
                        md_ids: md_ids.to_vec(),
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    map.insert(fingerprint, Arc::clone(&e));
                    return InflightJoin::Lead(InflightLease {
                        service: self,
                        fingerprint,
                        entry: e,
                        published: false,
                    });
                }
            }
        };
        match self.await_inflight(&entry, deadline) {
            Some(response) => InflightJoin::Shared(Box::new(response)),
            None => InflightJoin::Alone,
        }
    }

    /// Park until the in-flight leader finishes (or this request's own
    /// deadline expires). The 10ms re-check bounds how stale a deadline
    /// can get; the leader's lease guarantees `done` is always set.
    fn await_inflight(&self, entry: &Inflight, deadline: Option<Instant>) -> Option<PlanResponse> {
        let mut done = entry.done.lock().unwrap();
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return None;
            }
            let (guard, _) = entry
                .cv
                .wait_timeout(done, Duration::from_millis(10))
                .unwrap();
            done = guard;
        }
    }

    /// Metrics snapshot.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.metrics.snapshot(0, 0);
        self.cache.fill_stats(&mut s);
        s.cache_bytes = self.cache.bytes();
        s.cache_entries = self.cache.len() as u64;
        let f = self.fragments.stats();
        s.fragment_bytes = f.bytes;
        s.fragment_entries = f.entries;
        s.fragments_reused = f.reused;
        s.fragments_inserted = f.inserted;
        s.fragment_coop_attached = f.coop_attached;
        s.fragment_evictions = f.evictions;
        s.fragment_invalidations = f.invalidations;
        let (admitted, queued, degraded) = self.grants.counters();
        s.mem_admitted = admitted;
        s.mem_queued = queued;
        s.mem_degraded_grants = degraded;
        s.mem_regranted = self.grants.regranted();
        s.mem_used_bytes = self.exec_budget.used_bytes();
        s.mem_peak_bytes = self.exec_budget.peak_bytes();
        s
    }

    fn ticket(&self, id: u64, session: SessionId, response: PlanResponse) -> PlanTicket {
        PlanTicket {
            id,
            session,
            response,
        }
    }

    /// Heuristic degradation path: the legacy bottom-up planner is orders
    /// of magnitude cheaper than the Memo search, so it always answers —
    /// the serving equivalent of the §4.1 stage fallback.
    #[allow(clippy::too_many_arguments)]
    fn fallback(
        &self,
        ticket_id: u64,
        session: SessionId,
        accessor: &MdAccessor,
        query: &DxlQuery,
        fingerprint: u64,
        started: Instant,
        queue_wait: Duration,
        mut sink: Option<&mut dyn StreamSink>,
    ) -> Result<PlanTicket> {
        let registry = ColumnRegistry::new();
        for (name, ty) in &query.columns {
            registry.fresh(name, *ty);
        }
        let (plan, cost) =
            LegacyPlanner::new(accessor, &registry).plan(&query.expr, &query.order)?;
        ServiceMetrics::bump(&self.metrics.degraded);
        let plan_dxl = plan_to_dxl(&DxlPlan {
            plan: plan.clone(),
            cost,
        });
        if let Some(s) = sink.as_deref_mut() {
            s.on_plan(&PlanHeader {
                plan_dxl: &plan_dxl,
                cost,
                degraded: true,
                source: PlanSource::Fallback,
                fingerprint,
            })?;
        }
        let execution = self.maybe_execute(&plan, &query.output_cols, cost, sink)?;
        Ok(self.ticket(
            ticket_id,
            session,
            PlanResponse {
                plan_dxl,
                cost,
                degraded: true,
                source: PlanSource::Fallback,
                fingerprint,
                queue_wait,
                latency: started.elapsed(),
                stats: None,
                execution,
            },
        ))
    }

    /// Execute-after-optimize: run `plan` on the attached database when
    /// the service is configured to. Quietly skipped (returns `None`)
    /// when execution is off or no database is attached; execution
    /// *errors* are not quiet — a plan that fails to run is a failed
    /// request.
    fn maybe_execute(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        cost: f64,
        mut sink: Option<&mut dyn StreamSink>,
    ) -> Result<Option<ExecSummary>> {
        let Some(exec_cfg) = &self.config.execute else {
            return Ok(None);
        };
        let guard = self.database.read().unwrap();
        let Some(db) = guard.as_ref() else {
            return Ok(None);
        };
        // Admission: size the initial grant from the optimizer's cost
        // estimate, then hold it (RAII) for the whole execution. A
        // degraded grant tightens the tracker's per-segment budget, which
        // forces earlier spilling instead of failure.
        let desired = Self::grant_estimate(cost, &db.cluster);
        let grant = self.grants.request(desired);
        let tracker = Arc::new(MemoryTracker::granted(
            grant.bytes(),
            db.cluster.num_segments,
            Some(Arc::clone(&self.exec_budget)),
        ));
        if grant.degraded {
            // A degraded grant may renegotiate upward once, at the first
            // would-spill moment, if other queries have drained their
            // grants back into the pool by then.
            tracker.set_regrant(grant.regrant_hook());
        }
        let t0 = Instant::now();
        let summary = if exec_cfg.parallel {
            let engine = ParallelEngine::with_config(db, exec_cfg.parallel_config())
                .with_fragments(Arc::clone(&self.fragments))
                .with_memory(Arc::clone(&tracker));
            let r = engine.run(plan, output_cols)?;
            let mut rows = r.rows;
            if let Some(s) = sink.as_deref_mut() {
                // The gang merge materialized the rowset; replay it to
                // the sink in batch-sized frames so clients see one
                // response shape regardless of engine.
                for chunk in rows.chunks(exec_cfg.batch_rows.max(1)) {
                    if !s.on_rows(chunk)? {
                        break;
                    }
                }
                rows = Vec::new();
            }
            ExecSummary {
                rows,
                latency: t0.elapsed(),
                stats: r.stats,
                parallel: Some(r.parallel),
                mem_granted: grant.bytes(),
                mem_degraded: grant.degraded,
                mem_wait: grant.wait,
                first_batch: None,
                streamed: false,
            }
        } else {
            // The serial path streams through a cursor: rows arrive batch
            // by batch while the producer is still running, instead of one
            // fully-materialized rowset at the end. With a sink attached
            // the batches go straight out and are never buffered here.
            let mut cursor = Cursor::open(
                Arc::clone(db),
                plan,
                output_cols,
                CursorOptions {
                    columnar: exec_cfg.columnar,
                    batch_rows: exec_cfg.batch_rows,
                    fragments: Some(Arc::clone(&self.fragments)),
                    mem: Some(Arc::clone(&tracker)),
                },
            );
            let mut rows = Vec::new();
            let mut first_batch = None;
            let mut streamed = false;
            let mut early_closed = false;
            while let Some(batch) = cursor.next_batch()? {
                if first_batch.is_none() {
                    first_batch = Some(t0.elapsed());
                    streamed = !cursor.producer_finished();
                }
                match sink.as_deref_mut() {
                    Some(s) => {
                        if !s.on_rows(&batch)? {
                            early_closed = true;
                            break;
                        }
                    }
                    None => rows.extend(batch),
                }
            }
            if early_closed {
                // Client closed the stream: cancel the producer and
                // discard what it had queued. The request still counts
                // as executed; the summary reports what actually ran.
                cursor.close();
            }
            let stats = match cursor.summary() {
                Some(r) => r.stats.clone(),
                // Early close raced the producer's abort: no final
                // report exists, and that is fine.
                None => ExecStats::default(),
            };
            ExecSummary {
                rows,
                latency: t0.elapsed(),
                stats,
                parallel: None,
                mem_granted: grant.bytes(),
                mem_degraded: grant.degraded,
                mem_wait: grant.wait,
                first_batch,
                streamed,
            }
        };
        ServiceMetrics::bump(&self.metrics.executed);
        self.metrics.record_exec_latency(summary.latency);
        Ok(Some(summary))
    }

    /// Initial memory grant from the optimizer's cost estimate: scale
    /// simulated seconds to bytes, floored at one full `work_mem` per
    /// segment so an uncontended grant never tightens the configured
    /// operator budget below what the cluster already allows.
    fn grant_estimate(cost: f64, cluster: &orca_common::SegmentConfig) -> u64 {
        let floor = cluster
            .work_mem_bytes
            .saturating_mul(cluster.num_segments.max(1) as u64);
        let cost_bytes = (cost.max(0.0) * (1u64 << 20) as f64).min(1e18) as u64;
        cost_bytes.max(floor)
    }
}

/// Re-exported for callers that submit raw logical trees (tests/bench):
/// build query requirements the same way `optimize_query` does.
pub fn reqs_of(query: &DxlQuery) -> QueryReqs {
    QueryReqs {
        output_cols: query.output_cols.clone(),
        order: query.order.clone(),
        dist: query.dist.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::provider::MemoryProvider;
    use orca_catalog::{ColumnMeta, Distribution};
    use orca_common::{ColId, DataType};
    use orca_expr::logical::{LogicalExpr, LogicalOp};
    use orca_expr::props::DistSpec;
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::{CmpOp, ScalarExpr};

    fn provider_with_tables(n: usize) -> Arc<MemoryProvider> {
        let p = Arc::new(MemoryProvider::new());
        for i in 0..n {
            p.register(
                &format!("t{i}"),
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            );
        }
        p
    }

    fn two_table_query(p: &MemoryProvider) -> DxlQuery {
        let registry = ColumnRegistry::new();
        let mut tables = Vec::new();
        let mut first_col = Vec::new();
        for name in ["t0", "t1"] {
            let mdid = p.table_by_name(name).unwrap();
            let desc = p.table(mdid).unwrap();
            let cols: Vec<ColId> = desc
                .columns
                .iter()
                .map(|c| registry.fresh(&format!("{name}.{}", c.name), c.dtype))
                .collect();
            first_col.push(cols[0]);
            tables.push(LogicalExpr::leaf(LogicalOp::Get {
                table: TableRef(desc),
                cols,
                parts: None,
            }));
        }
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: orca_expr::logical::JoinKind::Inner,
                pred: ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::col(first_col[0]),
                    ScalarExpr::col(first_col[1]),
                ),
            },
            tables,
        );
        DxlQuery {
            output_cols: vec![first_col[0]],
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
            expr: join,
        }
    }

    #[test]
    fn repeat_submission_hits_cache_with_identical_dxl() {
        let p = provider_with_tables(2);
        let svc = Service::new(p.clone(), ServiceConfig::default());
        let s = svc.open_session();
        let q = two_table_query(&p);
        let fresh = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(fresh.response.source, PlanSource::Fresh);
        assert!(!fresh.response.degraded);
        let hit = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(hit.response.source, PlanSource::Cache);
        assert_eq!(hit.response.plan_dxl, fresh.response.plan_dxl);
        assert_eq!(hit.response.cost, fresh.response.cost);
        let st = svc.stats();
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.degraded, 0);
    }

    #[test]
    fn version_bump_invalidates_and_reoptimizes() {
        let p = provider_with_tables(2);
        let svc = Service::new(p.clone(), ServiceConfig::default());
        let s = svc.open_session();
        let q = two_table_query(&p);
        let first = svc.submit_query(s, &q, None).unwrap();
        let t0 = p.table_by_name("t0").unwrap();
        p.bump_table_version(t0).unwrap();
        let second = svc.submit_query(s, &q, None).unwrap();
        // Same query shape → same fingerprint, but the bumped version
        // forces a re-optimization.
        assert_eq!(first.response.fingerprint, second.response.fingerprint);
        assert_eq!(second.response.source, PlanSource::Fresh);
        let st = svc.stats();
        assert_eq!(st.cache_invalidations, 1);
        assert_eq!(st.cache_misses, 2);
        // The re-optimized plan is cached again under the new id set.
        let third = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(third.response.source, PlanSource::Cache);
    }

    #[test]
    fn sessions_open_and_close() {
        let p = provider_with_tables(1);
        let svc = Service::new(p, ServiceConfig::default());
        let a = svc.open_session();
        let b = svc.open_session();
        assert_ne!(a, b);
        assert_eq!(svc.live_sessions(), 2);
        svc.close_session(a).unwrap();
        assert!(svc.close_session(a).is_err());
        assert_eq!(svc.live_sessions(), 1);
        let q = two_table_query_single(&svc);
        assert!(svc.submit_query(a, &q, None).is_err());
        assert!(svc.submit_query(b, &q, None).is_ok());
    }

    #[test]
    fn execute_after_optimize_runs_plans_and_records_latency() {
        use orca_common::{Datum, SegmentConfig};

        let p = provider_with_tables(2);
        let cfg = ServiceConfig {
            execute: Some(ExecuteConfig {
                workers: 2,
                ..ExecuteConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let svc = Service::new(p.clone(), cfg);
        let s = svc.open_session();
        let q = two_table_query(&p);

        // No database attached yet: planning succeeds, execution is
        // quietly skipped.
        let planned = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(planned.response.source, PlanSource::Fresh);
        assert!(planned.response.execution.is_none());

        // Attach data and resubmit: the cache hit executes the cached
        // plan on the parallel engine.
        let mut db = Database::new(SegmentConfig::default());
        for name in ["t0", "t1"] {
            let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
            let rows = (0..20i64)
                .map(|i| vec![Datum::Int(i), Datum::Int(i * 2)])
                .collect();
            db.load_table(desc, rows).unwrap();
        }
        svc.attach_database(Arc::new(db));
        let hit = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(hit.response.source, PlanSource::Cache);
        let exec = hit.response.execution.expect("plan should have executed");
        // t0 ⋈ t1 on a = a over identical 20-row tables → 20 rows.
        assert_eq!(exec.rows.len(), 20);
        let pstats = exec.parallel.expect("parallel engine stats");
        assert_eq!(pstats.workers, 2);
        assert!(pstats.num_slices >= 1);
        let st = svc.stats();
        assert_eq!(st.executed, 1);
        assert_eq!(st.exec_latency_samples, 1);
        assert!(st.p50_execute > Duration::ZERO || st.exec_latency_samples > 0);
    }

    fn stub_response(fingerprint: u64) -> PlanResponse {
        PlanResponse {
            plan_dxl: "plan".into(),
            cost: 1.0,
            degraded: false,
            source: PlanSource::Fresh,
            fingerprint,
            queue_wait: Duration::ZERO,
            latency: Duration::ZERO,
            stats: None,
            execution: None,
        }
    }

    #[test]
    fn follower_reuses_a_published_inflight_result() {
        let p = provider_with_tables(2);
        let svc = Arc::new(Service::new(p.clone(), ServiceConfig::default()));
        let ids = vec![p.table_by_name("t0").unwrap()];

        let lease = match svc.join_inflight(42, &ids, None) {
            InflightJoin::Lead(l) => l,
            _ => panic!("first joiner must lead"),
        };
        let follower = {
            let svc = Arc::clone(&svc);
            let ids = ids.clone();
            std::thread::spawn(move || match svc.join_inflight(42, &ids, None) {
                InflightJoin::Shared(r) => r,
                InflightJoin::Lead(_) => panic!("identical request must not re-lead"),
                InflightJoin::Alone => panic!("identical request must coalesce"),
            })
        };
        lease.publish(&stub_response(42));
        let got = follower.join().unwrap();
        assert_eq!(got.plan_dxl, "plan");
        // The entry is unregistered on publish: the next arrival leads.
        assert!(matches!(
            svc.join_inflight(42, &ids, None),
            InflightJoin::Lead(_)
        ));
    }

    #[test]
    fn dropped_lease_releases_followers_empty_handed() {
        let p = provider_with_tables(2);
        let svc = Arc::new(Service::new(p.clone(), ServiceConfig::default()));
        let ids = vec![p.table_by_name("t0").unwrap()];
        let lease = match svc.join_inflight(7, &ids, None) {
            InflightJoin::Lead(l) => l,
            _ => panic!("first joiner must lead"),
        };
        let entry = Arc::clone(&lease.entry);
        let follower = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.await_inflight(&entry, None))
        };
        drop(lease); // leader went degraded/fallback/error
        assert!(
            follower.join().unwrap().is_none(),
            "followers must fall through, not hang or reuse"
        );
        assert!(svc.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn version_skewed_twin_does_not_coalesce() {
        let p = provider_with_tables(2);
        let svc = Service::new(p.clone(), ServiceConfig::default());
        let ids_a = vec![p.table_by_name("t0").unwrap()];
        let ids_b = vec![p.table_by_name("t1").unwrap()];
        let _lease = match svc.join_inflight(9, &ids_a, None) {
            InflightJoin::Lead(l) => l,
            _ => panic!("first joiner must lead"),
        };
        // Same fingerprint, different id set: optimize solo, unregistered.
        assert!(matches!(
            svc.join_inflight(9, &ids_b, None),
            InflightJoin::Alone
        ));
    }

    #[test]
    fn concurrent_identical_submissions_account_for_every_source() {
        let p = provider_with_tables(2);
        let svc = Arc::new(Service::new(p.clone(), ServiceConfig::default()));
        let q = two_table_query(&p);
        let n = 6;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let q = q.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let s = svc.open_session();
                    barrier.wait();
                    svc.submit_query(s, &q, None).unwrap().response
                })
            })
            .collect();
        let responses: Vec<PlanResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut counts = HashMap::new();
        for r in &responses {
            assert!(!r.degraded);
            assert_eq!(r.plan_dxl, responses[0].plan_dxl, "all must get one plan");
            *counts.entry(r.source).or_insert(0u64) += 1;
        }
        assert_eq!(counts.get(&PlanSource::Fallback), None);
        let st = svc.stats();
        // Every response source must be reflected in the counters, however
        // the race resolved.
        assert_eq!(
            st.coalesced,
            counts.get(&PlanSource::Coalesced).copied().unwrap_or(0)
        );
        assert_eq!(
            st.cache_hits,
            counts.get(&PlanSource::Cache).copied().unwrap_or(0)
        );
        assert!(counts.get(&PlanSource::Fresh).copied().unwrap_or(0) >= 1);
        assert!(svc.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn execute_path_shares_scan_fragments_across_requests() {
        use orca_common::{Datum, SegmentConfig};

        let p = provider_with_tables(2);
        let cfg = ServiceConfig {
            execute: Some(ExecuteConfig {
                parallel: false,
                columnar: true,
                ..ExecuteConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let svc = Service::new(p.clone(), cfg);
        let s = svc.open_session();
        let mut db = Database::new(SegmentConfig::default());
        for name in ["t0", "t1"] {
            let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
            let rows = (0..20i64)
                .map(|i| vec![Datum::Int(i), Datum::Int(i * 2)])
                .collect();
            db.load_table(desc, rows).unwrap();
        }
        svc.attach_database(Arc::new(db));
        let q = two_table_query(&p);
        let first = svc.submit_query(s, &q, None).unwrap();
        let second = svc.submit_query(s, &q, None).unwrap();
        let (a, b) = (
            first.response.execution.expect("executed"),
            second.response.execution.expect("executed"),
        );
        assert_eq!(a.rows, b.rows, "shared fragments must not change results");
        let st = svc.stats();
        assert!(st.fragments_inserted > 0, "first run must materialize");
        assert!(st.fragments_reused > 0, "second run must reuse");
        assert!(st.fragment_bytes > 0);
        assert_eq!(st.fragment_entries, st.fragments_inserted);
        assert_eq!(st.fragment_evictions, 0);
    }

    fn two_table_query_single(svc: &Service) -> DxlQuery {
        let registry = ColumnRegistry::new();
        let mdid = svc.optimizer().provider().table_by_name("t0").unwrap();
        let desc = svc.optimizer().provider().table(mdid).unwrap();
        let cols: Vec<ColId> = desc
            .columns
            .iter()
            .map(|c| registry.fresh(&c.name, c.dtype))
            .collect();
        DxlQuery {
            output_cols: vec![cols[0]],
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
            expr: LogicalExpr::leaf(LogicalOp::Get {
                table: TableRef(desc),
                cols,
                parts: None,
            }),
        }
    }
}
