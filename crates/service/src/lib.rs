//! Optimizer-as-a-service (§3): an in-process serving layer in front of
//! [`orca::Optimizer`].
//!
//! The paper's headline architectural claim is that Orca runs *outside*
//! the host DBMS as a standalone service exchanging DXL. This crate
//! supplies the serving substrate that claim implies:
//!
//! * **sessions** ([`session`]) — one per client connection, each owning a
//!   per-session `MdAccessor` over the shared metadata cache;
//! * **admission control** ([`admission`]) — a bounded set of concurrent
//!   optimizations with a FIFO overflow queue and per-request deadlines;
//! * **a versioned plan cache** ([`cache`]) — keyed on a
//!   version-normalized query fingerprint, invalidated by `MdId` version
//!   drift, evicted LRU under a byte budget;
//! * **graceful degradation** — on deadline expiry or queue rejection the
//!   service answers with the best-so-far plan or the legacy planner's
//!   heuristic plan, tagged `degraded: true`, instead of an error;
//! * **metrics** ([`metrics`]) — admission/cache counters and optimize
//!   latency percentiles.
//!
//! ```text
//! submit(dxl) ─ parse ─ rebind tables to current versions ─ fingerprint
//!    ├─ cache hit (id set matches) ──────────────────────► cached plan
//!    └─ miss/stale ─ admission gate ─┬─ admitted ─ optimize(deadline)
//!                                    │     ├─ done ── cache + return
//!                                    │     ├─ truncated ─ degraded plan
//!                                    │     └─ timeout ─ fallback, degraded
//!                                    └─ rejected/queue-timeout ─ fallback
//! ```

pub mod admission;
pub mod cache;
pub mod metrics;
pub mod session;

pub use admission::{Admission, AdmissionGate};
pub use cache::{CacheLookup, CachedPlan, PinGuard, PlanCache};
pub use metrics::{ServiceMetrics, ServiceStats};
pub use session::{Session, SessionId, SessionManager};

use orca::engine::QueryReqs;
use orca::{OptStats, Optimizer, OptimizerConfig};
use orca_catalog::provider::MdProvider;
use orca_catalog::MdAccessor;
use orca_common::{ColId, MdId, OrcaError, Result};
use orca_dxl::{plan_to_dxl, query_fingerprint, DxlPlan, DxlQuery};
use orca_executor::{
    Database, ExecEngine, ExecStats, ParallelConfig, ParallelEngine, ParallelStats, Row,
};
use orca_expr::logical::TableRef;
use orca_expr::physical::PhysicalPlan;
use orca_expr::ColumnRegistry;
use orca_planner::LegacyPlanner;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub optimizer: OptimizerConfig,
    /// Concurrent optimizations admitted at once. `0` = the optimizer's
    /// worker count (the default: one full search saturates the pool, so
    /// admitting more only adds queueing inside the scheduler).
    pub max_concurrent: usize,
    /// FIFO overflow queue depth; arrivals beyond it are shed to the
    /// fallback planner.
    pub queue_depth: usize,
    /// Per-request optimization budget (admission wait + search). `None` =
    /// unbounded.
    pub default_deadline: Option<Duration>,
    /// Plan-cache byte budget across all shards.
    pub cache_bytes: u64,
    /// Plan-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Execute plans after planning (requires [`Service::attach_database`]);
    /// `None` = planning-only service.
    pub execute: Option<ExecuteConfig>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            optimizer: OptimizerConfig::default(),
            max_concurrent: 0,
            queue_depth: 32,
            default_deadline: None,
            cache_bytes: 8 << 20,
            cache_shards: 8,
            execute: None,
        }
    }
}

/// How the execute-after-optimize path runs plans.
#[derive(Debug, Clone)]
pub struct ExecuteConfig {
    /// Run on the [`ParallelEngine`]; `false` = the serial engine.
    pub parallel: bool,
    /// Compute workers for the parallel engine; `0` = host parallelism.
    pub workers: usize,
    /// Interconnect batch size in rows.
    pub batch_rows: usize,
    /// Interconnect channel capacity in batches (backpressure window).
    pub channel_capacity: usize,
    /// Per-query execution deadline.
    pub deadline: Option<Duration>,
    /// Run kernels through the vectorized columnar engine (`false` =
    /// row-at-a-time interpretation; results are byte-identical).
    pub columnar: bool,
}

impl Default for ExecuteConfig {
    fn default() -> ExecuteConfig {
        ExecuteConfig {
            parallel: true,
            workers: 0,
            batch_rows: 256,
            channel_capacity: 4,
            deadline: None,
            columnar: true,
        }
    }
}

impl ExecuteConfig {
    fn parallel_config(&self) -> ParallelConfig {
        let mut cfg = ParallelConfig::default();
        if self.workers != 0 {
            cfg.workers = self.workers;
        }
        cfg.batch_rows = self.batch_rows;
        cfg.channel_capacity = self.channel_capacity;
        cfg.deadline = self.deadline;
        cfg.columnar = self.columnar;
        cfg
    }
}

/// Outcome of executing a plan on the attached database.
#[derive(Debug, Clone)]
pub struct ExecSummary {
    /// The query's result rows, projected to its output columns.
    pub rows: Vec<Row>,
    /// Wall time of the execution alone (also folded into the service's
    /// execute-latency reservoir).
    pub latency: Duration,
    pub stats: ExecStats,
    /// Parallel-engine diagnostics; `None` when the serial engine ran.
    pub parallel: Option<ParallelStats>,
}

/// Where a response's plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Served from the plan cache (no optimization ran).
    Cache,
    /// Freshly optimized this request.
    Fresh,
    /// The legacy planner's heuristic plan (always `degraded`).
    Fallback,
}

/// The service's answer to one submitted query.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// Serialized DXL plan document (Figure 2's output message).
    pub plan_dxl: String,
    pub cost: f64,
    /// The plan is best-effort: a truncated search's best-so-far result or
    /// the fallback planner's heuristic, not the exhaustive optimum.
    pub degraded: bool,
    pub source: PlanSource,
    /// Version-normalized query fingerprint (the cache key's identity
    /// half); stable across catalog version bumps.
    pub fingerprint: u64,
    /// Time spent in the admission queue.
    pub queue_wait: Duration,
    /// End-to-end service latency for this request.
    pub latency: Duration,
    /// Diagnostics of the optimization that produced the plan (`None` for
    /// fallback plans; for cache hits, the stats of the original run).
    pub stats: Option<OptStats>,
    /// Result of executing the plan, when the service is configured with
    /// an [`ExecuteConfig`] and a database is attached.
    pub execution: Option<ExecSummary>,
}

/// Receipt for one submission.
#[derive(Debug, Clone)]
pub struct PlanTicket {
    pub id: u64,
    pub session: SessionId,
    pub response: PlanResponse,
}

/// The optimizer service.
pub struct Service {
    optimizer: Optimizer,
    config: ServiceConfig,
    sessions: SessionManager,
    gate: AdmissionGate,
    cache: Arc<PlanCache>,
    metrics: ServiceMetrics,
    next_ticket: AtomicU64,
    /// Execution backend for the execute-after-optimize path; absent in a
    /// planning-only deployment.
    database: RwLock<Option<Arc<Database>>>,
}

impl Service {
    pub fn new(provider: Arc<dyn MdProvider>, config: ServiceConfig) -> Service {
        let optimizer = Optimizer::new(provider, config.optimizer.clone());
        let max_concurrent = if config.max_concurrent == 0 {
            optimizer.config.workers
        } else {
            config.max_concurrent
        };
        Service {
            gate: AdmissionGate::new(max_concurrent, config.queue_depth),
            cache: Arc::new(PlanCache::new(config.cache_bytes, config.cache_shards)),
            metrics: ServiceMetrics::new(),
            sessions: SessionManager::new(),
            next_ticket: AtomicU64::new(0),
            database: RwLock::new(None),
            optimizer,
            config,
        }
    }

    /// Attach (or replace) the execution backend. With
    /// [`ServiceConfig::execute`] set, every subsequent response also
    /// carries the executed result rows.
    pub fn attach_database(&self, db: Arc<Database>) {
        *self.database.write().unwrap() = Some(db);
    }

    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Open a session: mints a per-session `MdAccessor` over the shared
    /// metadata cache.
    pub fn open_session(&self) -> SessionId {
        let accessor = MdAccessor::new(
            self.optimizer.cache().clone(),
            self.optimizer.provider().clone(),
        );
        self.sessions.open(accessor)
    }

    pub fn close_session(&self, id: SessionId) -> Result<()> {
        self.sessions.close(id)
    }

    pub fn live_sessions(&self) -> usize {
        self.sessions.live_count()
    }

    /// Submit a DXL query document under the configured default deadline.
    pub fn submit(&self, session: SessionId, dxl: &str) -> Result<PlanTicket> {
        self.submit_with_deadline(session, dxl, self.config.default_deadline)
    }

    /// Submit with an explicit per-request budget (overrides the default).
    pub fn submit_with_deadline(
        &self,
        session: SessionId,
        dxl: &str,
        budget: Option<Duration>,
    ) -> Result<PlanTicket> {
        let query = orca_dxl::parse_query(dxl, self.optimizer.provider().as_ref())?;
        self.submit_query(session, &query, budget)
    }

    /// Submit an already-parsed query document (what in-process callers and
    /// the bench harness use to skip XML parsing).
    pub fn submit_query(
        &self,
        session: SessionId,
        query: &DxlQuery,
        budget: Option<Duration>,
    ) -> Result<PlanTicket> {
        let started = Instant::now();
        let deadline = budget.map(|b| started + b);
        let sess = self.sessions.get(session)?;
        sess.submitted.fetch_add(1, Ordering::Relaxed);
        let ticket_id = self.next_ticket.fetch_add(1, Ordering::Relaxed);

        // Rebind every table to its *current* catalog version. DXL carries
        // explicit versioned MdIds, so without this a resubmission after
        // `bump_table_version` would silently optimize against stale
        // metadata — and the cache could never be told apart from it.
        let expr = query.expr.try_map_tables(&mut |t: &TableRef| {
            sess.accessor.table_by_name(&t.name).map(TableRef)
        })?;
        let query = DxlQuery {
            expr,
            output_cols: query.output_cols.clone(),
            order: query.order.clone(),
            dist: query.dist.clone(),
            columns: query.columns.clone(),
        };
        let fingerprint = query_fingerprint(&query);
        let mut current_ids: Vec<MdId> = Vec::new();
        query.expr.visit_tables(&mut |t| current_ids.push(t.mdid));
        current_ids.sort();
        current_ids.dedup();

        match self.cache.lookup(fingerprint, &current_ids) {
            CacheLookup::Hit(cached) => {
                ServiceMetrics::bump(&self.metrics.cache_hits);
                let execution = self.maybe_execute(&cached.plan, &query.output_cols)?;
                return Ok(self.ticket(
                    ticket_id,
                    session,
                    PlanResponse {
                        plan_dxl: cached.plan_dxl.clone(),
                        cost: cached.cost,
                        degraded: false,
                        source: PlanSource::Cache,
                        fingerprint,
                        queue_wait: Duration::ZERO,
                        latency: started.elapsed(),
                        stats: Some(cached.stats.clone()),
                        execution,
                    },
                ));
            }
            CacheLookup::Stale | CacheLookup::Miss => {
                ServiceMetrics::bump(&self.metrics.cache_misses);
            }
        }

        let queue_wait = match self.gate.acquire(ticket_id, deadline) {
            Admission::Immediate => Duration::ZERO,
            Admission::Queued(w) => {
                ServiceMetrics::bump(&self.metrics.queued);
                w
            }
            Admission::Rejected => {
                ServiceMetrics::bump(&self.metrics.rejected);
                return self.fallback(
                    ticket_id,
                    session,
                    &sess.accessor,
                    &query,
                    fingerprint,
                    started,
                    Duration::ZERO,
                );
            }
            Admission::TimedOut => {
                ServiceMetrics::bump(&self.metrics.queued);
                return self.fallback(
                    ticket_id,
                    session,
                    &sess.accessor,
                    &query,
                    fingerprint,
                    started,
                    started.elapsed(),
                );
            }
        };
        ServiceMetrics::bump(&self.metrics.admitted);
        let result = self
            .optimizer
            .optimize_query_with_deadline(&query, deadline);
        self.gate.release();

        match result {
            Ok((plan, stats)) => {
                let plan_dxl = plan_to_dxl(&DxlPlan {
                    plan: plan.clone(),
                    cost: stats.plan_cost,
                });
                let degraded = stats.timed_out;
                if degraded {
                    // Best-so-far from a truncated search: usable, but not
                    // worth caching — the next uncontended request should
                    // produce (and cache) the real optimum.
                    ServiceMetrics::bump(&self.metrics.degraded);
                } else {
                    self.cache.insert(
                        fingerprint,
                        stats.md_ids.clone(),
                        Arc::new(CachedPlan {
                            plan_dxl: plan_dxl.clone(),
                            plan: plan.clone(),
                            cost: stats.plan_cost,
                            stats: stats.clone(),
                        }),
                    );
                }
                self.metrics.record_latency(started.elapsed());
                let execution = self.maybe_execute(&plan, &query.output_cols)?;
                Ok(self.ticket(
                    ticket_id,
                    session,
                    PlanResponse {
                        plan_dxl,
                        cost: stats.plan_cost,
                        degraded,
                        source: PlanSource::Fresh,
                        fingerprint,
                        queue_wait,
                        latency: started.elapsed(),
                        stats: Some(stats),
                        execution,
                    },
                ))
            }
            Err(OrcaError::Timeout(_)) => self.fallback(
                ticket_id,
                session,
                &sess.accessor,
                &query,
                fingerprint,
                started,
                queue_wait,
            ),
            Err(e) => Err(e),
        }
    }

    /// Pin a cached plan (by response fingerprint) so LRU pressure cannot
    /// evict it — prepared-statement semantics. Version invalidation still
    /// applies.
    pub fn pin_plan(&self, fingerprint: u64) -> Option<PinGuard> {
        self.cache.pin(fingerprint)
    }

    /// Metrics snapshot.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.metrics.snapshot(0, 0);
        self.cache.fill_stats(&mut s);
        s
    }

    fn ticket(&self, id: u64, session: SessionId, response: PlanResponse) -> PlanTicket {
        PlanTicket {
            id,
            session,
            response,
        }
    }

    /// Heuristic degradation path: the legacy bottom-up planner is orders
    /// of magnitude cheaper than the Memo search, so it always answers —
    /// the serving equivalent of the §4.1 stage fallback.
    #[allow(clippy::too_many_arguments)]
    fn fallback(
        &self,
        ticket_id: u64,
        session: SessionId,
        accessor: &MdAccessor,
        query: &DxlQuery,
        fingerprint: u64,
        started: Instant,
        queue_wait: Duration,
    ) -> Result<PlanTicket> {
        let registry = ColumnRegistry::new();
        for (name, ty) in &query.columns {
            registry.fresh(name, *ty);
        }
        let (plan, cost) =
            LegacyPlanner::new(accessor, &registry).plan(&query.expr, &query.order)?;
        ServiceMetrics::bump(&self.metrics.degraded);
        let execution = self.maybe_execute(&plan, &query.output_cols)?;
        Ok(self.ticket(
            ticket_id,
            session,
            PlanResponse {
                plan_dxl: plan_to_dxl(&DxlPlan { plan, cost }),
                cost,
                degraded: true,
                source: PlanSource::Fallback,
                fingerprint,
                queue_wait,
                latency: started.elapsed(),
                stats: None,
                execution,
            },
        ))
    }

    /// Execute-after-optimize: run `plan` on the attached database when
    /// the service is configured to. Quietly skipped (returns `None`)
    /// when execution is off or no database is attached; execution
    /// *errors* are not quiet — a plan that fails to run is a failed
    /// request.
    fn maybe_execute(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
    ) -> Result<Option<ExecSummary>> {
        let Some(exec_cfg) = &self.config.execute else {
            return Ok(None);
        };
        let guard = self.database.read().unwrap();
        let Some(db) = guard.as_ref() else {
            return Ok(None);
        };
        let t0 = Instant::now();
        let summary = if exec_cfg.parallel {
            let engine = ParallelEngine::with_config(db, exec_cfg.parallel_config());
            let r = engine.run(plan, output_cols)?;
            ExecSummary {
                rows: r.rows,
                latency: t0.elapsed(),
                stats: r.stats,
                parallel: Some(r.parallel),
            }
        } else {
            let engine = ExecEngine::new(db);
            let r = if exec_cfg.columnar {
                engine.run_columnar(plan, output_cols)?
            } else {
                engine.run(plan, output_cols)?
            };
            ExecSummary {
                rows: r.rows,
                latency: t0.elapsed(),
                stats: r.stats,
                parallel: None,
            }
        };
        ServiceMetrics::bump(&self.metrics.executed);
        self.metrics.record_exec_latency(summary.latency);
        Ok(Some(summary))
    }
}

/// Re-exported for callers that submit raw logical trees (tests/bench):
/// build query requirements the same way `optimize_query` does.
pub fn reqs_of(query: &DxlQuery) -> QueryReqs {
    QueryReqs {
        output_cols: query.output_cols.clone(),
        order: query.order.clone(),
        dist: query.dist.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::provider::MemoryProvider;
    use orca_catalog::{ColumnMeta, Distribution};
    use orca_common::{ColId, DataType};
    use orca_expr::logical::{LogicalExpr, LogicalOp};
    use orca_expr::props::DistSpec;
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::{CmpOp, ScalarExpr};

    fn provider_with_tables(n: usize) -> Arc<MemoryProvider> {
        let p = Arc::new(MemoryProvider::new());
        for i in 0..n {
            p.register(
                &format!("t{i}"),
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            );
        }
        p
    }

    fn two_table_query(p: &MemoryProvider) -> DxlQuery {
        let registry = ColumnRegistry::new();
        let mut tables = Vec::new();
        let mut first_col = Vec::new();
        for name in ["t0", "t1"] {
            let mdid = p.table_by_name(name).unwrap();
            let desc = p.table(mdid).unwrap();
            let cols: Vec<ColId> = desc
                .columns
                .iter()
                .map(|c| registry.fresh(&format!("{name}.{}", c.name), c.dtype))
                .collect();
            first_col.push(cols[0]);
            tables.push(LogicalExpr::leaf(LogicalOp::Get {
                table: TableRef(desc),
                cols,
                parts: None,
            }));
        }
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: orca_expr::logical::JoinKind::Inner,
                pred: ScalarExpr::cmp(
                    CmpOp::Eq,
                    ScalarExpr::col(first_col[0]),
                    ScalarExpr::col(first_col[1]),
                ),
            },
            tables,
        );
        DxlQuery {
            output_cols: vec![first_col[0]],
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
            expr: join,
        }
    }

    #[test]
    fn repeat_submission_hits_cache_with_identical_dxl() {
        let p = provider_with_tables(2);
        let svc = Service::new(p.clone(), ServiceConfig::default());
        let s = svc.open_session();
        let q = two_table_query(&p);
        let fresh = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(fresh.response.source, PlanSource::Fresh);
        assert!(!fresh.response.degraded);
        let hit = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(hit.response.source, PlanSource::Cache);
        assert_eq!(hit.response.plan_dxl, fresh.response.plan_dxl);
        assert_eq!(hit.response.cost, fresh.response.cost);
        let st = svc.stats();
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.degraded, 0);
    }

    #[test]
    fn version_bump_invalidates_and_reoptimizes() {
        let p = provider_with_tables(2);
        let svc = Service::new(p.clone(), ServiceConfig::default());
        let s = svc.open_session();
        let q = two_table_query(&p);
        let first = svc.submit_query(s, &q, None).unwrap();
        let t0 = p.table_by_name("t0").unwrap();
        p.bump_table_version(t0).unwrap();
        let second = svc.submit_query(s, &q, None).unwrap();
        // Same query shape → same fingerprint, but the bumped version
        // forces a re-optimization.
        assert_eq!(first.response.fingerprint, second.response.fingerprint);
        assert_eq!(second.response.source, PlanSource::Fresh);
        let st = svc.stats();
        assert_eq!(st.cache_invalidations, 1);
        assert_eq!(st.cache_misses, 2);
        // The re-optimized plan is cached again under the new id set.
        let third = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(third.response.source, PlanSource::Cache);
    }

    #[test]
    fn sessions_open_and_close() {
        let p = provider_with_tables(1);
        let svc = Service::new(p, ServiceConfig::default());
        let a = svc.open_session();
        let b = svc.open_session();
        assert_ne!(a, b);
        assert_eq!(svc.live_sessions(), 2);
        svc.close_session(a).unwrap();
        assert!(svc.close_session(a).is_err());
        assert_eq!(svc.live_sessions(), 1);
        let q = two_table_query_single(&svc);
        assert!(svc.submit_query(a, &q, None).is_err());
        assert!(svc.submit_query(b, &q, None).is_ok());
    }

    #[test]
    fn execute_after_optimize_runs_plans_and_records_latency() {
        use orca_common::{Datum, SegmentConfig};

        let p = provider_with_tables(2);
        let cfg = ServiceConfig {
            execute: Some(ExecuteConfig {
                workers: 2,
                ..ExecuteConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let svc = Service::new(p.clone(), cfg);
        let s = svc.open_session();
        let q = two_table_query(&p);

        // No database attached yet: planning succeeds, execution is
        // quietly skipped.
        let planned = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(planned.response.source, PlanSource::Fresh);
        assert!(planned.response.execution.is_none());

        // Attach data and resubmit: the cache hit executes the cached
        // plan on the parallel engine.
        let mut db = Database::new(SegmentConfig::default());
        for name in ["t0", "t1"] {
            let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
            let rows = (0..20i64)
                .map(|i| vec![Datum::Int(i), Datum::Int(i * 2)])
                .collect();
            db.load_table(desc, rows).unwrap();
        }
        svc.attach_database(Arc::new(db));
        let hit = svc.submit_query(s, &q, None).unwrap();
        assert_eq!(hit.response.source, PlanSource::Cache);
        let exec = hit.response.execution.expect("plan should have executed");
        // t0 ⋈ t1 on a = a over identical 20-row tables → 20 rows.
        assert_eq!(exec.rows.len(), 20);
        let pstats = exec.parallel.expect("parallel engine stats");
        assert_eq!(pstats.workers, 2);
        assert!(pstats.num_slices >= 1);
        let st = svc.stats();
        assert_eq!(st.executed, 1);
        assert_eq!(st.exec_latency_samples, 1);
        assert!(st.p50_execute > Duration::ZERO || st.exec_latency_samples > 0);
    }

    fn two_table_query_single(svc: &Service) -> DxlQuery {
        let registry = ColumnRegistry::new();
        let mdid = svc.optimizer().provider().table_by_name("t0").unwrap();
        let desc = svc.optimizer().provider().table(mdid).unwrap();
        let cols: Vec<ColId> = desc
            .columns
            .iter()
            .map(|c| registry.fresh(&c.name, c.dtype))
            .collect();
        DxlQuery {
            output_cols: vec![cols[0]],
            order: OrderSpec::any(),
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
            expr: LogicalExpr::leaf(LogicalOp::Get {
                table: TableRef(desc),
                cols,
                parts: None,
            }),
        }
    }
}
