//! Executor memory grants: admission against a global memory budget.
//!
//! Every execute-after-optimize request asks the [`MemoryGrantBroker`]
//! for a grant sized from the optimizer's cost estimate before any
//! kernel runs. The broker tracks a single global pool of executor
//! memory and answers one of three ways:
//!
//! * **immediate** — the pool covers the request; full grant;
//! * **queued** — the pool is exhausted below the minimum grant; the
//!   request parks in FIFO order until enough bytes release;
//! * **degraded** — the pool covers at least the minimum but not the
//!   full request; the query runs with a smaller grant, which tightens
//!   its per-operator budget (`min(work_mem, grant/segments)`) and
//!   forces earlier spilling instead of failure.
//!
//! Grants are RAII ([`MemoryGrant`]): dropping one returns its bytes and
//! wakes the queue. The broker never rejects — a query can always run
//! with the minimum grant and spill its way through, which is exactly
//! the §7.3.2 contrast with engines that fall over under memory
//! pressure.
//!
//! A **degraded** grant additionally carries a one-shot renegotiation
//! right ([`MemoryGrant::regrant_hook`]): the instant the executor is
//! about to take its first spill, it may ask the broker once whether
//! other queries have since drained their grants back into the pool. If
//! bytes are free (and nobody is queued ahead), the grant upgrades
//! toward its original ask and the spill may be avoided entirely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Floor for any grant: even a degraded query gets this much. Keeps the
/// per-operator budget non-trivial so spill fanout stays bounded.
pub const MIN_GRANT_BYTES: u64 = 64 * 1024;

struct Pool {
    available: u64,
    /// FIFO of waiting ticket ids; only the head may claim bytes.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Admits query executions against a global executor-memory budget.
pub struct MemoryGrantBroker {
    pool: Mutex<Pool>,
    ready: Condvar,
    total: u64,
    min_grant: u64,
    admitted: AtomicU64,
    queued: AtomicU64,
    degraded: AtomicU64,
    regranted: AtomicU64,
}

/// The mutable half of a grant, shared with the upgrade hook handed to
/// the executor (which outlives no grant but runs on other threads).
struct GrantInner {
    bytes: AtomicU64,
}

/// One admitted execution's share of the pool. Dropping it releases the
/// bytes and wakes queued requests.
pub struct MemoryGrant {
    broker: Arc<MemoryGrantBroker>,
    inner: Arc<GrantInner>,
    /// What the query originally asked for (clamped to the pool size).
    desired: u64,
    /// The grant started smaller than requested — the executor will
    /// spill sooner than the estimate assumed (a later renegotiation may
    /// have raised [`MemoryGrant::bytes`] since).
    pub degraded: bool,
    /// Time spent queued waiting for bytes.
    pub wait: Duration,
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        self.broker
            .release(self.inner.bytes.load(Ordering::Relaxed));
    }
}

impl MemoryGrant {
    /// Bytes currently granted (≤ the request; can grow once via
    /// renegotiation).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// A renegotiation closure for the executor's memory tracker: called
    /// at most once, at the moment the query would otherwise take its
    /// first spill. Returns the new *total* grant in bytes, or 0 when
    /// the pool had nothing to give (the spill proceeds).
    pub fn regrant_hook(&self) -> Box<dyn Fn() -> u64 + Send + Sync> {
        let broker = Arc::clone(&self.broker);
        let inner = Arc::clone(&self.inner);
        let desired = self.desired;
        Box::new(move || broker.upgrade(&inner, desired))
    }
}

impl MemoryGrantBroker {
    /// A broker over `total_bytes` of executor memory. `0` = unbounded
    /// (every request gets its full ask immediately).
    pub fn new(total_bytes: u64) -> MemoryGrantBroker {
        MemoryGrantBroker {
            pool: Mutex::new(Pool {
                available: total_bytes,
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            ready: Condvar::new(),
            total: total_bytes,
            min_grant: MIN_GRANT_BYTES.min(total_bytes.max(1)),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            regranted: AtomicU64::new(0),
        }
    }

    fn grant(
        self: &Arc<Self>,
        bytes: u64,
        desired: u64,
        degraded: bool,
        wait: Duration,
    ) -> MemoryGrant {
        MemoryGrant {
            broker: Arc::clone(self),
            inner: Arc::new(GrantInner {
                bytes: AtomicU64::new(bytes),
            }),
            desired,
            degraded,
            wait,
        }
    }

    /// Acquire a grant of up to `desired` bytes; blocks (FIFO) only while
    /// the pool cannot cover even the minimum grant. Never fails.
    pub fn request(self: &Arc<Self>, desired: u64) -> MemoryGrant {
        if self.total == 0 {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            let bytes = desired.max(1);
            return self.grant(bytes, bytes, false, Duration::ZERO);
        }
        let desired = desired.clamp(self.min_grant, self.total);
        let t0 = Instant::now();
        let mut pool = self.pool.lock().unwrap();
        // Fast path: pool covers the ask and nobody is ahead of us.
        if pool.queue.is_empty() && pool.available >= desired {
            pool.available -= desired;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return self.grant(desired, desired, false, Duration::ZERO);
        }
        // Slow path: park in FIFO order until the head can take at least
        // the minimum grant.
        let ticket = pool.next_ticket;
        pool.next_ticket += 1;
        pool.queue.push_back(ticket);
        self.queued.fetch_add(1, Ordering::Relaxed);
        loop {
            let at_head = pool.queue.front() == Some(&ticket);
            if at_head && pool.available >= self.min_grant {
                pool.queue.pop_front();
                let bytes = pool.available.min(desired);
                pool.available -= bytes;
                let degraded = bytes < desired;
                if degraded {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                }
                self.admitted.fetch_add(1, Ordering::Relaxed);
                // The next waiter may also be satisfiable.
                self.ready.notify_all();
                drop(pool);
                return self.grant(bytes, desired, degraded, t0.elapsed());
            }
            let (guard, _) = self
                .ready
                .wait_timeout(pool, Duration::from_millis(10))
                .unwrap();
            pool = guard;
        }
    }

    /// Renegotiate a degraded grant upward toward its original ask:
    /// claim whatever the pool can spare *now* (other queries may have
    /// drained their grants back since admission). Queued requests keep
    /// strict priority — an upgrade never starves the FIFO head. Returns
    /// the grant's new total in bytes, or 0 when nothing was free.
    fn upgrade(&self, inner: &GrantInner, desired: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let mut pool = self.pool.lock().unwrap();
        if !pool.queue.is_empty() || pool.available == 0 {
            return 0;
        }
        let current = inner.bytes.load(Ordering::Relaxed);
        let want = desired.saturating_sub(current);
        if want == 0 {
            return 0;
        }
        let extra = pool.available.min(want);
        pool.available -= extra;
        inner.bytes.fetch_add(extra, Ordering::Relaxed);
        self.regranted.fetch_add(1, Ordering::Relaxed);
        current + extra
    }

    fn release(&self, bytes: u64) {
        if self.total == 0 {
            return;
        }
        let mut pool = self.pool.lock().unwrap();
        pool.available = (pool.available + bytes).min(self.total);
        drop(pool);
        self.ready.notify_all();
    }

    /// (admitted, queued, degraded) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.queued.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
        )
    }

    /// Degraded grants that successfully renegotiated upward mid-query.
    pub fn regranted(&self) -> u64 {
        self.regranted.load(Ordering::Relaxed)
    }

    /// Bytes currently uncommitted.
    pub fn available_bytes(&self) -> u64 {
        if self.total == 0 {
            return u64::MAX;
        }
        self.pool.lock().unwrap().available
    }

    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_grant_when_pool_covers() {
        let b = Arc::new(MemoryGrantBroker::new(1 << 20));
        let g = b.request(512 * 1024);
        assert_eq!(g.bytes(), 512 * 1024);
        assert!(!g.degraded);
        assert_eq!(b.available_bytes(), 512 * 1024);
        drop(g);
        assert_eq!(b.available_bytes(), 1 << 20);
        assert_eq!(b.counters(), (1, 0, 0));
    }

    #[test]
    fn degraded_grant_under_pressure() {
        let b = Arc::new(MemoryGrantBroker::new(1 << 20));
        let hog = b.request(1 << 20); // drains to ~0... not quite: full pool
        assert_eq!(b.available_bytes(), 0);
        drop(hog);
        let hold = b.request(900 * 1024);
        // 124KiB left; a 500KiB ask degrades to what's available.
        let g = b.request(500 * 1024);
        assert!(g.degraded);
        assert_eq!(g.bytes(), (1 << 20) - 900 * 1024);
        drop(g);
        drop(hold);
        let (_, _, degraded) = b.counters();
        assert_eq!(degraded, 1);
    }

    #[test]
    fn degraded_grant_renegotiates_after_the_pool_refills() {
        let b = Arc::new(MemoryGrantBroker::new(1 << 20));
        let hog = b.request(900 * 1024);
        let g = b.request(500 * 1024); // degrades to 124 KiB
        assert!(g.degraded);
        let hook = g.regrant_hook();
        // Nothing free yet: renegotiation yields nothing, grant unchanged.
        assert_eq!(hook(), 0);
        assert_eq!(b.regranted(), 0);
        // The hog finishes; its bytes drain back into the pool.
        drop(hog);
        let new_total = hook();
        assert_eq!(new_total, 500 * 1024, "upgrade tops up to the original ask");
        assert_eq!(g.bytes(), 500 * 1024);
        assert_eq!(b.regranted(), 1);
        assert_eq!(b.available_bytes(), (1 << 20) - 500 * 1024);
        // Dropping the upgraded grant returns the *upgraded* total.
        drop(g);
        assert_eq!(b.available_bytes(), 1 << 20);
    }

    #[test]
    fn upgrade_never_starves_the_queue() {
        let b = Arc::new(MemoryGrantBroker::new(256 * 1024));
        let hog = b.request(180 * 1024);
        let g = b.request(100 * 1024); // degraded to the 76 KiB remainder
        assert!(g.degraded);
        let hook = g.regrant_hook();
        // A third request parks in the FIFO (pool is drained to zero).
        let (tx, rx) = std::sync::mpsc::channel();
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || tx.send(b2.request(200 * 1024)).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        drop(hog); // bytes free up, but the queued request has priority
        assert_eq!(hook(), 0, "upgrade must yield to the queued request");
        let queued_grant = rx.recv().unwrap();
        waiter.join().unwrap();
        assert_eq!(b.regranted(), 0);
        drop(queued_grant);
        assert_eq!(b.available_bytes(), 180 * 1024);
    }

    #[test]
    fn queued_request_wakes_on_release() {
        let b = Arc::new(MemoryGrantBroker::new(256 * 1024));
        let g = b.request(256 * 1024); // drain the pool entirely
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let g = b2.request(128 * 1024);
            (g.bytes(), g.degraded)
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(g); // release; the waiter's full ask now fits
        let (bytes, degraded) = waiter.join().unwrap();
        assert_eq!(bytes, 128 * 1024);
        assert!(!degraded);
        let (admitted, queued, _) = b.counters();
        assert_eq!(admitted, 2);
        assert_eq!(queued, 1);
    }

    #[test]
    fn unbounded_broker_grants_everything() {
        let b = Arc::new(MemoryGrantBroker::new(0));
        let g = b.request(u64::MAX / 2);
        assert!(!g.degraded);
        assert_eq!(g.bytes(), u64::MAX / 2);
    }
}
