//! Service-level observability, in the style of the Memo's
//! `SearchMetrics`: lock-free counters on the hot path, an explicit
//! snapshot type for consumers.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How many latencies each reservoir keeps. Old samples are overwritten
/// ring-buffer style, so percentiles reflect recent traffic.
const LATENCY_SAMPLES: usize = 4096;

/// Point-in-time snapshot of every service counter (the `ServiceStats` of
/// the serving-layer design).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests that entered optimization (immediately or after queueing).
    pub admitted: u64,
    /// Admitted requests that had to wait in the overflow queue first.
    pub queued: u64,
    /// Requests turned away because the overflow queue was full.
    pub rejected: u64,
    /// Responses tagged `degraded: true` (fallback plan or truncated
    /// search).
    pub degraded: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Entries displaced by the byte-budget LRU.
    pub cache_evictions: u64,
    /// Entries dropped because a referenced `MdId` version moved on.
    pub cache_invalidations: u64,
    /// Bytes currently resident in the plan cache.
    pub cache_bytes: u64,
    /// Plans currently resident in the plan cache.
    pub cache_entries: u64,
    /// Requests that attached to an identical in-flight optimization and
    /// reused its result instead of optimizing themselves.
    pub coalesced: u64,
    /// Plans executed after planning (execute-after-optimize path).
    pub executed: u64,
    /// Bytes currently resident in the shared scan-fragment cache.
    pub fragment_bytes: u64,
    /// Fragments currently resident in the shared scan-fragment cache.
    pub fragment_entries: u64,
    /// Scans answered from an already-materialized cached fragment.
    pub fragments_reused: u64,
    /// Fragments materialized and published by a scan leader.
    pub fragments_inserted: u64,
    /// Scans that attached to a fragment *while* another query was still
    /// materializing it (cooperative scan).
    pub fragment_coop_attached: u64,
    /// Fragments displaced by the fragment cache's byte-budget LRU.
    pub fragment_evictions: u64,
    /// Fragments dropped because their table's `MdId` version moved on.
    pub fragment_invalidations: u64,
    /// Executions admitted through the memory-grant broker.
    pub mem_admitted: u64,
    /// Grant requests that had to queue for executor memory.
    pub mem_queued: u64,
    /// Grants issued smaller than requested (the query spilled sooner).
    pub mem_degraded_grants: u64,
    /// Degraded grants that renegotiated upward mid-query (the pool had
    /// refilled by the first would-spill moment).
    pub mem_regranted: u64,
    /// Executor-memory bytes currently charged against the global budget.
    pub mem_used_bytes: u64,
    /// High-water mark of the global executor-memory budget.
    pub mem_peak_bytes: u64,
    /// TCP connections the network front-end has accepted.
    pub net_connections: u64,
    /// Requests that arrived over the network front-end.
    pub net_requests: u64,
    /// Network responses whose first row frame was written before the
    /// producer finished (genuinely streamed to the client).
    pub net_streamed: u64,
    /// Streaming responses the client closed early (cursor early-close).
    pub net_early_closed: u64,
    /// Frames written to service clients (plan, row, done, error).
    pub net_frames_tx: u64,
    /// Socket bytes written to service clients, frame headers included.
    pub net_bytes_tx: u64,
    /// Frames read from service clients.
    pub net_frames_rx: u64,
    /// Socket bytes read from service clients.
    pub net_bytes_rx: u64,
    /// Median full-optimization latency (admission wait included).
    pub p50_optimize: Duration,
    /// Tail full-optimization latency.
    pub p99_optimize: Duration,
    /// Latency samples currently in the reservoir.
    pub latency_samples: usize,
    /// Median plan-execution latency.
    pub p50_execute: Duration,
    /// Tail plan-execution latency.
    pub p99_execute: Duration,
    /// Execution latency samples currently in the reservoir.
    pub exec_latency_samples: usize,
}

/// Shared counters. Cache-side counters (evictions/invalidations) live in
/// the cache itself and are merged at snapshot time by the service.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    pub admitted: AtomicU64,
    pub queued: AtomicU64,
    pub rejected: AtomicU64,
    pub degraded: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub executed: AtomicU64,
    pub net_connections: AtomicU64,
    pub net_requests: AtomicU64,
    pub net_streamed: AtomicU64,
    pub net_early_closed: AtomicU64,
    pub net_frames_tx: AtomicU64,
    pub net_bytes_tx: AtomicU64,
    pub net_frames_rx: AtomicU64,
    pub net_bytes_rx: AtomicU64,
    latencies: Mutex<LatencyRing>,
    exec_latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>, // microseconds
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        if self.samples.len() < LATENCY_SAMPLES {
            self.samples.push(us);
        } else {
            let slot = self.next;
            self.samples[slot] = us;
        }
        self.next = (self.next + 1) % LATENCY_SAMPLES;
    }

    /// (p50, p99, sample count).
    fn percentiles(&self) -> (Duration, Duration, usize) {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            Duration::from_micros(sorted[idx])
        };
        (pct(0.50), pct(0.99), sorted.len())
    }
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_latency(&self, d: Duration) {
        self.latencies.lock().record(d);
    }

    pub fn record_exec_latency(&self, d: Duration) {
        self.exec_latencies.lock().record(d);
    }

    /// Snapshot counters and compute latency percentiles. Cache counters
    /// are passed in by the owner (they live next to the shards).
    pub fn snapshot(&self, cache_evictions: u64, cache_invalidations: u64) -> ServiceStats {
        let (p50, p99, n) = self.latencies.lock().percentiles();
        let (ep50, ep99, en) = self.exec_latencies.lock().percentiles();
        ServiceStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions,
            cache_invalidations,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            net_connections: self.net_connections.load(Ordering::Relaxed),
            net_requests: self.net_requests.load(Ordering::Relaxed),
            net_streamed: self.net_streamed.load(Ordering::Relaxed),
            net_early_closed: self.net_early_closed.load(Ordering::Relaxed),
            net_frames_tx: self.net_frames_tx.load(Ordering::Relaxed),
            net_bytes_tx: self.net_bytes_tx.load(Ordering::Relaxed),
            net_frames_rx: self.net_frames_rx.load(Ordering::Relaxed),
            net_bytes_rx: self.net_bytes_rx.load(Ordering::Relaxed),
            p50_optimize: p50,
            p99_optimize: p99,
            latency_samples: n,
            p50_execute: ep50,
            p99_execute: ep99,
            exec_latency_samples: en,
            // Occupancy and fragment-cache counters live next to their
            // owners; the service fills them in after snapshotting.
            ..ServiceStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_reservoir() {
        let m = ServiceMetrics::new();
        for i in 1..=100u64 {
            m.record_latency(Duration::from_micros(i * 10));
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.latency_samples, 100);
        // Index: round((100-1) * 0.5) = 50 → the 51st sample.
        assert_eq!(s.p50_optimize, Duration::from_micros(510));
        assert_eq!(s.p99_optimize, Duration::from_micros(990));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let m = ServiceMetrics::new();
        for _ in 0..(LATENCY_SAMPLES + 100) {
            m.record_latency(Duration::from_micros(7));
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.latency_samples, LATENCY_SAMPLES);
        assert_eq!(s.p99_optimize, Duration::from_micros(7));
    }

    #[test]
    fn exec_latencies_are_a_separate_reservoir() {
        let m = ServiceMetrics::new();
        m.record_latency(Duration::from_micros(100));
        m.record_exec_latency(Duration::from_micros(7));
        m.record_exec_latency(Duration::from_micros(9));
        let s = m.snapshot(0, 0);
        assert_eq!(s.latency_samples, 1);
        assert_eq!(s.exec_latency_samples, 2);
        assert_eq!(s.p50_execute, Duration::from_micros(9));
        assert_eq!(s.p99_optimize, Duration::from_micros(100));
    }
}
