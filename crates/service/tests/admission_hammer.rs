//! Admission hammer: 16 sessions pound a service whose executor-memory
//! pool is deliberately too small for the offered load. Every request
//! must complete (the grant broker queues and degrades, it never
//! rejects), results must stay correct under memory pressure, and the
//! pool must drain back to full once the storm passes.

use orca_catalog::provider::{MdProvider, MemoryProvider};
use orca_catalog::{ColumnMeta, Distribution};
use orca_common::{ColId, DataType, Datum, SegmentConfig};
use orca_dxl::DxlQuery;
use orca_executor::Database;
use orca_expr::logical::{LogicalExpr, LogicalOp, TableRef};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::{CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;
use orca_service::{ExecuteConfig, PlanSource, Service, ServiceConfig};
use std::sync::Arc;

const ROWS: i64 = 6000;

fn provider() -> Arc<MemoryProvider> {
    let p = Arc::new(MemoryProvider::new());
    for name in ["t0", "t1"] {
        p.register(
            name,
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
    }
    p
}

fn join_query(p: &MemoryProvider) -> DxlQuery {
    let registry = ColumnRegistry::new();
    let mut tables = Vec::new();
    let mut first_col = Vec::new();
    for name in ["t0", "t1"] {
        let mdid = p.table_by_name(name).unwrap();
        let desc = p.table(mdid).unwrap();
        let cols: Vec<ColId> = desc
            .columns
            .iter()
            .map(|c| registry.fresh(&format!("{name}.{}", c.name), c.dtype))
            .collect();
        first_col.push(cols[0]);
        tables.push(LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(desc),
            cols,
            parts: None,
        }));
    }
    let join = LogicalExpr::new(
        LogicalOp::Join {
            kind: orca_expr::logical::JoinKind::Inner,
            pred: ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::col(first_col[0]),
                ScalarExpr::col(first_col[1]),
            ),
        },
        tables,
    );
    DxlQuery {
        output_cols: vec![first_col[0]],
        order: OrderSpec::any(),
        dist: DistSpec::Singleton,
        columns: registry.snapshot(),
        expr: join,
    }
}

/// 192 KiB pool, 128 KiB grant floor (32 KiB work_mem × 4 segments),
/// and a 128 KiB grant pre-held for the whole storm: every executing
/// request finds only 64 KiB available, so it queues, takes a degraded
/// grant, and spills — yet all 16 sessions finish with correct results.
#[test]
fn sixteen_sessions_hammer_a_small_memory_pool() {
    let p = provider();
    let cfg = ServiceConfig {
        executor_memory_bytes: 192 * 1024,
        execute: Some(ExecuteConfig {
            parallel: false,
            columnar: true,
            ..ExecuteConfig::default()
        }),
        ..ServiceConfig::default()
    };
    let svc = Arc::new(Service::new(p.clone(), cfg));
    let mut db = Database::new(
        SegmentConfig::default()
            .with_segments(4)
            .with_work_mem(32 * 1024),
    );
    for name in ["t0", "t1"] {
        let desc = p.table(p.table_by_name(name).unwrap()).unwrap();
        let rows = (0..ROWS)
            .map(|i| vec![Datum::Int(i), Datum::Int(i * 2)])
            .collect();
        db.load_table(desc, rows).unwrap();
    }
    svc.attach_database(Arc::new(db));
    let query = join_query(&p);

    // Squat on two thirds of the pool so concurrent requests contend.
    let hog = svc.grants().request(128 * 1024);
    assert_eq!(hog.bytes(), 128 * 1024);

    let mut handles = Vec::new();
    for _ in 0..16 {
        let svc = Arc::clone(&svc);
        let query = query.clone();
        handles.push(std::thread::spawn(move || {
            let session = svc.open_session();
            let mut executed = 0u64;
            let mut spilled = 0u64;
            for _ in 0..3 {
                let ticket = svc.submit_query(session, &query, None).unwrap();
                let r = ticket.response;
                // A coalesced follower carries a *clone* of the leader's
                // execution: correct rows, but no grant of its own — it
                // must not count against the broker's admission totals.
                let coalesced = r.source == PlanSource::Coalesced;
                if let Some(exec) = r.execution {
                    // Unique join keys on both sides: one row per key.
                    assert_eq!(exec.rows.len(), ROWS as usize);
                    assert!(exec.mem_granted > 0);
                    assert!(
                        exec.mem_granted <= 64 * 1024,
                        "with 128 KiB squatted, at most 64 KiB was grantable"
                    );
                    assert!(exec.mem_degraded);
                    if !coalesced {
                        executed += 1;
                        spilled += exec.stats.spill_partitions;
                    }
                }
            }
            svc.close_session(session).unwrap();
            (executed, spilled)
        }));
    }
    let mut executed = 0u64;
    let mut spilled = 0u64;
    for h in handles {
        let (e, s) = h.join().unwrap();
        executed += e;
        spilled += s;
    }
    drop(hog);

    // Coalesced followers reuse the leader's execution, so not all 48
    // submissions execute — but cache-hit resubmissions all do, and at
    // most 15 round-1 followers can coalesce.
    assert!(executed >= 16, "executed only {executed} of >= 16");
    // A degraded 64 KiB grant is 16 KiB per segment against ~25 KiB of
    // per-segment build state: every execution spilled rather than OOMed.
    assert!(spilled > 0, "memory pressure should have forced spills");

    let st = svc.stats();
    assert!(st.mem_admitted >= executed);
    assert!(
        st.mem_queued >= executed,
        "every grant contended with the hog"
    );
    assert!(st.mem_degraded_grants >= executed);
    assert!(st.mem_peak_bytes > 0);
    // The storm passed: every grant was released back to the pool.
    assert_eq!(svc.grants().available_bytes(), 192 * 1024);
}
