//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `parking_lot` API the optimizer uses:
//! [`Mutex`] and [`RwLock`] with panic-free (non-poisoning) guards. The
//! semantics match `parking_lot` where it matters to callers: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned std lock is transparently recovered, matching `parking_lot`'s
//! no-poisoning behaviour.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking acquisition; `None` when the lock is contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
