//! DXL deserialization: XML → expression trees, plans, metadata, dumps.
//!
//! Table references inside queries and plans are resolved through an
//! [`MdProvider`], exactly as Orca resolves `Mdid`s against its metadata
//! cache during parsing.

use crate::xml::{self, XmlNode};
use crate::{DxlDump, DxlPlan, DxlQuery, MetadataDoc};
use orca_catalog::provider::MdProvider;
use orca_catalog::stats::{Bucket, ColumnStats, Histogram, TableStats};
use orca_catalog::{ColumnMeta, Distribution, IndexDesc, MemoryProvider, Partitioning, TableDesc};
use orca_common::{ColId, CteId, DataType, Datum, MdId, OrcaError, Result};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, SetOpKind, TableRef};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::{DistSpec, OrderSpec, SortKey};
use orca_expr::scalar::{AggFunc, ArithOp, CmpOp, ScalarExpr};
use std::sync::Arc;

fn bad(msg: impl Into<String>) -> OrcaError {
    OrcaError::Dxl(msg.into())
}

fn parse_u64(n: &XmlNode, key: &str) -> Result<u64> {
    n.req_attr(key)?
        .parse()
        .map_err(|_| bad(format!("bad integer in {key}")))
}

fn parse_f64(n: &XmlNode, key: &str) -> Result<f64> {
    n.req_attr(key)?
        .parse()
        .map_err(|_| bad(format!("bad float in {key}")))
}

fn parse_bool(n: &XmlNode, key: &str) -> Result<bool> {
    n.req_attr(key)?
        .parse()
        .map_err(|_| bad(format!("bad bool in {key}")))
}

fn parse_cols(s: &str) -> Result<Vec<ColId>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse()
                .map(ColId)
                .map_err(|_| bad(format!("bad col id '{t}'")))
        })
        .collect()
}

fn attr_cols(n: &XmlNode, key: &str) -> Result<Vec<ColId>> {
    parse_cols(n.req_attr(key)?)
}

fn parse_usizes(s: &str) -> Result<Vec<usize>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| t.parse().map_err(|_| bad(format!("bad index '{t}'"))))
        .collect()
}

fn parse_nested_cols(s: &str) -> Result<Vec<Vec<ColId>>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('|').map(parse_cols).collect()
}

fn parse_order(s: &str) -> Result<OrderSpec> {
    if s.is_empty() {
        return Ok(OrderSpec::any());
    }
    let keys = s
        .split(',')
        .map(|t| {
            let (num, dir) = t.split_at(t.len() - 1);
            let col = num
                .parse()
                .map(ColId)
                .map_err(|_| bad(format!("bad sort key '{t}'")))?;
            match dir {
                "a" => Ok(SortKey { col, desc: false }),
                "d" => Ok(SortKey { col, desc: true }),
                _ => Err(bad(format!("bad sort direction '{dir}'"))),
            }
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(OrderSpec(keys))
}

fn parse_datum(ty: &str, val: &str) -> Result<Datum> {
    Ok(match ty {
        "null" => Datum::Null,
        "bool" => Datum::Bool(val.parse().map_err(|_| bad("bad bool literal"))?),
        "int8" => Datum::Int(val.parse().map_err(|_| bad("bad int literal"))?),
        "float8" => Datum::Double(val.parse().map_err(|_| bad("bad float literal"))?),
        "text" => Datum::Str(val.to_string()),
        "date" => Datum::Date(val.parse().map_err(|_| bad("bad date literal"))?),
        other => return Err(bad(format!("unknown datum type '{other}'"))),
    })
}

fn parse_const(n: &XmlNode) -> Result<Datum> {
    parse_datum(n.req_attr("Type")?, n.req_attr("Value")?)
}

fn parse_cmp_op(s: &str) -> Result<CmpOp> {
    Ok(match s {
        "=" => CmpOp::Eq,
        "<>" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => return Err(bad(format!("unknown comparison '{other}'"))),
    })
}

fn parse_join_kind(s: &str) -> Result<JoinKind> {
    Ok(match s {
        "Inner" => JoinKind::Inner,
        "LeftOuter" => JoinKind::LeftOuter,
        "LeftSemi" => JoinKind::LeftSemi,
        "LeftAntiSemi" => JoinKind::LeftAntiSemi,
        other => return Err(bad(format!("unknown join type '{other}'"))),
    })
}

fn parse_setop_kind(s: &str) -> Result<SetOpKind> {
    Ok(match s {
        "UnionAll" => SetOpKind::UnionAll,
        "Union" => SetOpKind::Union,
        "Intersect" => SetOpKind::Intersect,
        "Except" => SetOpKind::Except,
        other => return Err(bad(format!("unknown set op '{other}'"))),
    })
}

fn parse_agg_func(s: &str) -> Result<AggFunc> {
    Ok(match s {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        other => return Err(bad(format!("unknown aggregate '{other}'"))),
    })
}

// ---------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------

fn scalar_from_xml(n: &XmlNode, md: &dyn MdProvider) -> Result<ScalarExpr> {
    Ok(match n.name.as_str() {
        "dxl:Ident" => ScalarExpr::ColRef(ColId(parse_u64(n, "ColId")? as u32)),
        "dxl:Const" => ScalarExpr::Const(parse_const(n)?),
        "dxl:Comparison" => ScalarExpr::Cmp {
            op: parse_cmp_op(n.req_attr("Operator")?)?,
            left: Box::new(scalar_from_xml(n.req_nth(0)?, md)?),
            right: Box::new(scalar_from_xml(n.req_nth(1)?, md)?),
        },
        "dxl:BoolAnd" => ScalarExpr::And(
            n.children
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<_>>()?,
        ),
        "dxl:BoolOr" => ScalarExpr::Or(
            n.children
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<_>>()?,
        ),
        "dxl:Not" => ScalarExpr::Not(Box::new(scalar_from_xml(n.req_nth(0)?, md)?)),
        "dxl:IsNull" => ScalarExpr::IsNull(Box::new(scalar_from_xml(n.req_nth(0)?, md)?)),
        "dxl:Arith" => ScalarExpr::Arith {
            op: match n.req_attr("Operator")? {
                "+" => ArithOp::Add,
                "-" => ArithOp::Sub,
                "*" => ArithOp::Mul,
                "/" => ArithOp::Div,
                other => return Err(bad(format!("unknown arith op '{other}'"))),
            },
            left: Box::new(scalar_from_xml(n.req_nth(0)?, md)?),
            right: Box::new(scalar_from_xml(n.req_nth(1)?, md)?),
        },
        "dxl:Case" => {
            let mut branches = Vec::new();
            let mut else_value = None;
            for c in &n.children {
                match c.name.as_str() {
                    "dxl:When" => branches.push((
                        scalar_from_xml(c.req_nth(0)?, md)?,
                        scalar_from_xml(c.req_nth(1)?, md)?,
                    )),
                    "dxl:Else" => else_value = Some(Box::new(scalar_from_xml(c.req_nth(0)?, md)?)),
                    other => return Err(bad(format!("unexpected <{other}> in Case"))),
                }
            }
            ScalarExpr::Case {
                branches,
                else_value,
            }
        }
        "dxl:InList" => {
            let mut items = n.children.iter();
            let expr = scalar_from_xml(items.next().ok_or_else(|| bad("empty InList"))?, md)?;
            ScalarExpr::InList {
                expr: Box::new(expr),
                list: items
                    .map(|c| scalar_from_xml(c, md))
                    .collect::<Result<_>>()?,
                negated: parse_bool(n, "Negated")?,
            }
        }
        "dxl:AggFunc" => ScalarExpr::Agg {
            func: parse_agg_func(n.req_attr("Name")?)?,
            arg: n
                .children
                .first()
                .map(|c| scalar_from_xml(c, md).map(Box::new))
                .transpose()?,
            distinct: parse_bool(n, "Distinct")?,
        },
        "dxl:SubqExists" => ScalarExpr::Exists {
            negated: parse_bool(n, "Negated")?,
            subquery: Box::new(logical_from_xml(n.req_nth(0)?, md)?),
        },
        "dxl:SubqIn" => ScalarExpr::InSubquery {
            expr: Box::new(scalar_from_xml(n.req_nth(0)?, md)?),
            subquery: Box::new(logical_from_xml(n.req_nth(1)?, md)?),
            subquery_col: ColId(parse_u64(n, "SubqueryCol")? as u32),
            negated: parse_bool(n, "Negated")?,
        },
        "dxl:SubqScalar" => ScalarExpr::ScalarSubquery {
            subquery: Box::new(logical_from_xml(n.req_nth(0)?, md)?),
            subquery_col: ColId(parse_u64(n, "SubqueryCol")? as u32),
        },
        other => return Err(bad(format!("unknown scalar node <{other}>"))),
    })
}

// ---------------------------------------------------------------------
// Logical trees
// ---------------------------------------------------------------------

fn resolve_table(n: &XmlNode, md: &dyn MdProvider) -> Result<TableRef> {
    let td = n.req_child("dxl:TableDescriptor")?;
    let mdid =
        MdId::parse_dxl(td.req_attr("Mdid")?).ok_or_else(|| bad("bad Mdid in TableDescriptor"))?;
    Ok(TableRef(md.table(mdid)?))
}

fn opt_parts(n: &XmlNode) -> Result<Option<Vec<usize>>> {
    n.get_attr("Parts").map(parse_usizes).transpose()
}

fn is_relational(name: &str) -> bool {
    name.starts_with("dxl:Logical")
}

fn logical_from_xml(n: &XmlNode, md: &dyn MdProvider) -> Result<LogicalExpr> {
    // Relational children come first; scalar payloads follow.
    let rel_children: Vec<LogicalExpr> = n
        .children
        .iter()
        .filter(|c| is_relational(&c.name))
        .map(|c| logical_from_xml(c, md))
        .collect::<Result<_>>()?;
    let scalars: Vec<&XmlNode> = n
        .children
        .iter()
        .filter(|c| {
            !is_relational(&c.name) && c.name != "dxl:TableDescriptor" && c.name != "dxl:Row"
        })
        .collect();

    let op = match n.name.as_str() {
        "dxl:LogicalGet" => LogicalOp::Get {
            table: resolve_table(n, md)?,
            cols: attr_cols(n, "Cols")?,
            parts: opt_parts(n)?,
        },
        "dxl:LogicalSelect" => LogicalOp::Select {
            pred: scalar_from_xml(
                scalars
                    .first()
                    .ok_or_else(|| bad("Select missing predicate"))?,
                md,
            )?,
        },
        "dxl:LogicalProject" => {
            let cols = attr_cols(n, "Cols")?;
            let exprs = scalars
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<Vec<_>>>()?;
            if cols.len() != exprs.len() {
                return Err(bad("Project Cols/exprs length mismatch"));
            }
            LogicalOp::Project {
                exprs: cols.into_iter().zip(exprs).collect(),
            }
        }
        "dxl:LogicalJoin" => LogicalOp::Join {
            kind: parse_join_kind(n.req_attr("JoinType")?)?,
            pred: scalar_from_xml(
                scalars
                    .first()
                    .ok_or_else(|| bad("Join missing predicate"))?,
                md,
            )?,
        },
        "dxl:LogicalGbAgg" => {
            let group_cols = attr_cols(n, "GroupCols")?;
            let agg_cols = attr_cols(n, "AggCols")?;
            let exprs = scalars
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<Vec<_>>>()?;
            if agg_cols.len() != exprs.len() {
                return Err(bad("GbAgg AggCols/exprs length mismatch"));
            }
            LogicalOp::GbAgg {
                group_cols,
                aggs: agg_cols.into_iter().zip(exprs).collect(),
                stage: orca_expr::logical::AggStage::from_name(
                    n.get_attr("Stage").unwrap_or("Single"),
                )
                .ok_or_else(|| bad("unknown agg stage"))?,
            }
        }
        "dxl:LogicalLimit" => LogicalOp::Limit {
            order: parse_order(n.req_attr("Sort")?)?,
            offset: parse_u64(n, "Offset")?,
            count: n
                .get_attr("Count")
                .map(|c| c.parse().map_err(|_| bad("bad Count")))
                .transpose()?,
        },
        "dxl:LogicalSetOp" => LogicalOp::SetOp {
            kind: parse_setop_kind(n.req_attr("Kind")?)?,
            output: attr_cols(n, "Output")?,
            input_cols: parse_nested_cols(n.req_attr("InputCols")?)?,
        },
        "dxl:LogicalSequence" => LogicalOp::Sequence {
            id: CteId(parse_u64(n, "CteId")? as u32),
        },
        "dxl:LogicalCTEProducer" => LogicalOp::CteProducer {
            id: CteId(parse_u64(n, "CteId")? as u32),
            cols: attr_cols(n, "Cols")?,
        },
        "dxl:LogicalCTEConsumer" => LogicalOp::CteConsumer {
            id: CteId(parse_u64(n, "CteId")? as u32),
            cols: attr_cols(n, "Cols")?,
            producer_cols: attr_cols(n, "ProducerCols")?,
        },
        "dxl:LogicalConstTable" => LogicalOp::ConstTable {
            cols: attr_cols(n, "Cols")?,
            rows: n
                .children
                .iter()
                .filter(|c| c.name == "dxl:Row")
                .map(|r| r.children.iter().map(parse_const).collect())
                .collect::<Result<_>>()?,
        },
        "dxl:LogicalMaxOneRow" => LogicalOp::MaxOneRow,
        other => return Err(bad(format!("unknown logical node <{other}>"))),
    };
    if op.arity() != rel_children.len() {
        return Err(bad(format!(
            "{} expects {} children, found {}",
            op.name(),
            op.arity(),
            rel_children.len()
        )));
    }
    Ok(LogicalExpr::new(op, rel_children))
}

// ---------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------

const PHYSICAL_NAMES: &[&str] = &[
    "dxl:TableScan",
    "dxl:IndexScan",
    "dxl:Filter",
    "dxl:Project",
    "dxl:HashJoin",
    "dxl:NLJoin",
    "dxl:HashAgg",
    "dxl:StreamAgg",
    "dxl:Sort",
    "dxl:Limit",
    "dxl:Gather",
    "dxl:GatherMerge",
    "dxl:Redistribute",
    "dxl:Broadcast",
    "dxl:Spool",
    "dxl:Sequence",
    "dxl:CTEProducer",
    "dxl:CTEScan",
    "dxl:ConstTable",
    "dxl:AssertOneRow",
    "dxl:UnionAll",
    "dxl:HashSetOp",
];

fn physical_from_xml(n: &XmlNode, md: &dyn MdProvider) -> Result<PhysicalPlan> {
    let rel_children: Vec<PhysicalPlan> = n
        .children
        .iter()
        .filter(|c| PHYSICAL_NAMES.contains(&c.name.as_str()))
        .map(|c| physical_from_xml(c, md))
        .collect::<Result<_>>()?;
    let scalars: Vec<&XmlNode> = n
        .children
        .iter()
        .filter(|c| {
            !PHYSICAL_NAMES.contains(&c.name.as_str())
                && c.name != "dxl:TableDescriptor"
                && c.name != "dxl:Row"
        })
        .collect();

    let op = match n.name.as_str() {
        "dxl:TableScan" => PhysicalOp::TableScan {
            table: resolve_table(n, md)?,
            cols: attr_cols(n, "Cols")?,
            parts: opt_parts(n)?,
        },
        "dxl:IndexScan" => PhysicalOp::IndexScan {
            table: resolve_table(n, md)?,
            index_name: n.req_attr("Index")?.to_string(),
            cols: attr_cols(n, "Cols")?,
            key_cols: attr_cols(n, "KeyCols")?,
            parts: opt_parts(n)?,
        },
        "dxl:Filter" => PhysicalOp::Filter {
            pred: scalar_from_xml(
                scalars
                    .first()
                    .ok_or_else(|| bad("Filter missing predicate"))?,
                md,
            )?,
        },
        "dxl:Project" => {
            let cols = attr_cols(n, "Cols")?;
            let exprs = scalars
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<Vec<_>>>()?;
            if cols.len() != exprs.len() {
                return Err(bad("Project Cols/exprs length mismatch"));
            }
            PhysicalOp::Project {
                exprs: cols.into_iter().zip(exprs).collect(),
            }
        }
        "dxl:HashJoin" => PhysicalOp::HashJoin {
            kind: parse_join_kind(n.req_attr("JoinType")?)?,
            left_keys: attr_cols(n, "LeftKeys")?,
            right_keys: attr_cols(n, "RightKeys")?,
            residual: scalars
                .first()
                .map(|c| scalar_from_xml(c, md))
                .transpose()?,
        },
        "dxl:NLJoin" => PhysicalOp::NLJoin {
            kind: parse_join_kind(n.req_attr("JoinType")?)?,
            pred: scalar_from_xml(
                scalars
                    .first()
                    .ok_or_else(|| bad("NLJoin missing predicate"))?,
                md,
            )?,
        },
        "dxl:HashAgg" | "dxl:StreamAgg" => {
            let group_cols = attr_cols(n, "GroupCols")?;
            let agg_cols = attr_cols(n, "AggCols")?;
            let exprs = scalars
                .iter()
                .map(|c| scalar_from_xml(c, md))
                .collect::<Result<Vec<_>>>()?;
            if agg_cols.len() != exprs.len() {
                return Err(bad("agg AggCols/exprs length mismatch"));
            }
            let aggs = agg_cols.into_iter().zip(exprs).collect();
            let stage =
                orca_expr::logical::AggStage::from_name(n.get_attr("Stage").unwrap_or("Single"))
                    .ok_or_else(|| bad("unknown agg stage"))?;
            if n.name == "dxl:HashAgg" {
                PhysicalOp::HashAgg {
                    group_cols,
                    aggs,
                    stage,
                }
            } else {
                PhysicalOp::StreamAgg {
                    group_cols,
                    aggs,
                    stage,
                }
            }
        }
        "dxl:Sort" => PhysicalOp::Sort {
            order: parse_order(n.req_attr("Sort")?)?,
        },
        "dxl:Limit" => PhysicalOp::Limit {
            order: parse_order(n.req_attr("Sort")?)?,
            offset: parse_u64(n, "Offset")?,
            count: n
                .get_attr("Count")
                .map(|c| c.parse().map_err(|_| bad("bad Count")))
                .transpose()?,
        },
        "dxl:Gather" => PhysicalOp::Motion {
            kind: MotionKind::Gather,
        },
        "dxl:GatherMerge" => PhysicalOp::Motion {
            kind: MotionKind::GatherMerge(parse_order(n.req_attr("Sort")?)?),
        },
        "dxl:Redistribute" => PhysicalOp::Motion {
            kind: MotionKind::Redistribute(attr_cols(n, "Cols")?),
        },
        "dxl:Broadcast" => PhysicalOp::Motion {
            kind: MotionKind::Broadcast,
        },
        "dxl:Spool" => PhysicalOp::Spool,
        "dxl:Sequence" => PhysicalOp::Sequence {
            id: CteId(parse_u64(n, "CteId")? as u32),
        },
        "dxl:CTEProducer" => PhysicalOp::CteProducer {
            id: CteId(parse_u64(n, "CteId")? as u32),
            cols: attr_cols(n, "Cols")?,
        },
        "dxl:CTEScan" => PhysicalOp::CteScan {
            id: CteId(parse_u64(n, "CteId")? as u32),
            cols: attr_cols(n, "Cols")?,
            producer_cols: attr_cols(n, "ProducerCols")?,
        },
        "dxl:ConstTable" => PhysicalOp::ConstTable {
            cols: attr_cols(n, "Cols")?,
            rows: n
                .children
                .iter()
                .filter(|c| c.name == "dxl:Row")
                .map(|r| r.children.iter().map(parse_const).collect())
                .collect::<Result<_>>()?,
        },
        "dxl:AssertOneRow" => PhysicalOp::AssertOneRow,
        "dxl:UnionAll" => PhysicalOp::UnionAll {
            output: attr_cols(n, "Output")?,
            input_cols: parse_nested_cols(n.req_attr("InputCols")?)?,
        },
        "dxl:HashSetOp" => PhysicalOp::HashSetOp {
            kind: parse_setop_kind(n.req_attr("Kind")?)?,
            output: attr_cols(n, "Output")?,
            input_cols: parse_nested_cols(n.req_attr("InputCols")?)?,
        },
        other => return Err(bad(format!("unknown physical node <{other}>"))),
    };
    if op.arity() != rel_children.len() {
        return Err(bad(format!(
            "{} expects {} children, found {}",
            op.name(),
            op.arity(),
            rel_children.len()
        )));
    }
    Ok(PhysicalPlan::new(op, rel_children))
}

// ---------------------------------------------------------------------
// Documents
// ---------------------------------------------------------------------

fn parse_dist(n: &XmlNode) -> Result<DistSpec> {
    Ok(match n.req_attr("Type")? {
        "Any" => DistSpec::Any,
        "Singleton" => DistSpec::Singleton,
        "Replicated" => DistSpec::Replicated,
        "Random" => DistSpec::Random,
        "Hashed" => DistSpec::Hashed(attr_cols(n, "Cols")?),
        other => return Err(bad(format!("unknown distribution '{other}'"))),
    })
}

fn query_from_node(q: &XmlNode, md: &dyn MdProvider) -> Result<DxlQuery> {
    let output_cols = q
        .req_child("dxl:OutputColumns")?
        .children
        .iter()
        .map(|c| parse_u64(c, "ColId").map(|v| ColId(v as u32)))
        .collect::<Result<_>>()?;
    let order = parse_order(q.req_child("dxl:SortingColumnList")?.req_attr("Sort")?)?;
    let dist = parse_dist(q.req_child("dxl:Distribution")?)?;
    let columns = q
        .req_child("dxl:Columns")?
        .children
        .iter()
        .map(|c| {
            let name = c.req_attr("Name")?.to_string();
            let ty = DataType::from_name(c.req_attr("Type")?)
                .ok_or_else(|| bad("unknown column type"))?;
            Ok((name, ty))
        })
        .collect::<Result<_>>()?;
    let tree = q
        .children
        .iter()
        .find(|c| is_relational(&c.name))
        .ok_or_else(|| bad("query missing logical tree"))?;
    Ok(DxlQuery {
        expr: logical_from_xml(tree, md)?,
        output_cols,
        order,
        dist,
        columns,
    })
}

/// Parse a DXL query document.
pub fn parse_query(text: &str, md: &dyn MdProvider) -> Result<DxlQuery> {
    let root = xml::parse(text)?;
    query_from_node(root.req_child("dxl:Query")?, md)
}

fn plan_from_node(p: &XmlNode, md: &dyn MdProvider) -> Result<DxlPlan> {
    Ok(DxlPlan {
        cost: parse_f64(p, "Cost")?,
        plan: physical_from_xml(p.req_nth(0)?, md)?,
    })
}

/// Parse a DXL plan document.
pub fn parse_plan_doc(text: &str, md: &dyn MdProvider) -> Result<DxlPlan> {
    let root = xml::parse(text)?;
    plan_from_node(root.req_child("dxl:Plan")?, md)
}

fn metadata_from_node(m: &XmlNode) -> Result<MetadataDoc> {
    let mut doc = MetadataDoc::default();
    for c in &m.children {
        match c.name.as_str() {
            "dxl:Relation" => {
                let mdid =
                    MdId::parse_dxl(c.req_attr("Mdid")?).ok_or_else(|| bad("bad Relation Mdid"))?;
                let columns = c
                    .children
                    .iter()
                    .map(|col| {
                        let mut cm = ColumnMeta::new(
                            col.req_attr("Name")?,
                            DataType::from_name(col.req_attr("Type")?)
                                .ok_or_else(|| bad("unknown column type"))?,
                        );
                        if !parse_bool(col, "Nullable")? {
                            cm = cm.not_null();
                        }
                        Ok(cm)
                    })
                    .collect::<Result<Vec<_>>>()?;
                let dist = match c.req_attr("DistributionPolicy")? {
                    "Hash" => {
                        Distribution::Hashed(parse_usizes(c.req_attr("DistributionColumns")?)?)
                    }
                    "Random" => Distribution::Random,
                    "Replicated" => Distribution::Replicated,
                    "Singleton" => Distribution::Singleton,
                    other => return Err(bad(format!("unknown distribution policy '{other}'"))),
                };
                let mut t = TableDesc::new(mdid, c.req_attr("Name")?, columns, dist);
                if let Some(pc) = c.get_attr("PartColumn") {
                    let column = pc.parse().map_err(|_| bad("bad PartColumn"))?;
                    let bounds = c
                        .req_attr("PartBounds")?
                        .split(';')
                        .map(|b| {
                            let (lo, hi) =
                                b.split_once(':').ok_or_else(|| bad("bad PartBounds"))?;
                            Ok((
                                lo.parse().map_err(|_| bad("bad bound"))?,
                                hi.parse().map_err(|_| bad("bad bound"))?,
                            ))
                        })
                        .collect::<Result<Vec<_>>>()?;
                    t = t.with_partitioning(Partitioning { column, bounds });
                }
                doc.tables.push(Arc::new(t));
            }
            "dxl:RelStats" => {
                let mdid =
                    MdId::parse_dxl(c.req_attr("Mdid")?).ok_or_else(|| bad("bad RelStats Mdid"))?;
                let ncols = doc
                    .tables
                    .iter()
                    .find(|t| t.mdid == mdid)
                    .map(|t| t.columns.len())
                    .unwrap_or(0);
                let mut stats = TableStats::new(parse_f64(c, "Rows")?, ncols);
                for cs in &c.children {
                    let idx: usize = cs
                        .req_attr("Col")?
                        .parse()
                        .map_err(|_| bad("bad ColStats Col"))?;
                    let mut col = ColumnStats::new(
                        parse_f64(cs, "Ndv")?,
                        parse_f64(cs, "NullFrac")?,
                        parse_u64(cs, "Width")?,
                    );
                    if !cs.children.is_empty() {
                        col.histogram = Some(Histogram {
                            buckets: cs
                                .children
                                .iter()
                                .map(|b| {
                                    Ok(Bucket {
                                        lo: parse_f64(b, "Lo")?,
                                        hi: parse_f64(b, "Hi")?,
                                        rows: parse_f64(b, "Rows")?,
                                        ndv: parse_f64(b, "Ndv")?,
                                    })
                                })
                                .collect::<Result<_>>()?,
                        });
                    }
                    if idx >= stats.columns.len() {
                        stats.columns.resize(idx + 1, None);
                    }
                    stats.columns[idx] = Some(col);
                }
                doc.stats.push((mdid, Arc::new(stats)));
            }
            "dxl:Index" => {
                doc.indexes.push(Arc::new(IndexDesc {
                    mdid: MdId::parse_dxl(c.req_attr("Mdid")?)
                        .ok_or_else(|| bad("bad Index Mdid"))?,
                    name: c.req_attr("Name")?.to_string(),
                    table: MdId::parse_dxl(c.req_attr("Relation")?)
                        .ok_or_else(|| bad("bad Index Relation"))?,
                    key_columns: parse_usizes(c.req_attr("KeyCols")?)?,
                }));
            }
            other => return Err(bad(format!("unknown metadata node <{other}>"))),
        }
    }
    Ok(doc)
}

/// Parse a standalone metadata document.
pub fn parse_metadata(text: &str) -> Result<MetadataDoc> {
    let root = xml::parse(text)?;
    metadata_from_node(root.req_child("dxl:Metadata")?)
}

/// Build an in-memory provider out of a parsed metadata document (used by
/// dump replay and the file provider).
pub fn provider_from_metadata(doc: &MetadataDoc) -> MemoryProvider {
    let p = MemoryProvider::new();
    for t in &doc.tables {
        p.install_table(t.clone());
    }
    for (mdid, s) in &doc.stats {
        p.set_stats(*mdid, (**s).clone());
    }
    for ix in &doc.indexes {
        p.add_index((**ix).clone());
    }
    p
}

/// Parse an AMPERe dump. The embedded metadata section resolves the
/// embedded query's table references, so the dump is fully self-contained
/// ("replaying a dump outside the system where it was generated", §6.1).
pub fn parse_dump(text: &str) -> Result<DxlDump> {
    let root = xml::parse(text)?;
    let thread = root.req_child("dxl:Thread")?;
    let metadata = metadata_from_node(thread.req_child("dxl:Metadata")?)?;
    let provider = provider_from_metadata(&metadata);
    let query = query_from_node(thread.req_child("dxl:Query")?, &provider)?;
    let config = thread
        .req_child("dxl:Config")?
        .children
        .iter()
        .map(|p| {
            Ok((
                p.req_attr("Name")?.to_string(),
                p.req_attr("Value")?.to_string(),
            ))
        })
        .collect::<Result<_>>()?;
    let stack_trace = thread
        .find_child("dxl:Stacktrace")
        .and_then(|s| s.get_attr("Trace"))
        .map(|s| s.to_string());
    let expected_plan = thread
        .find_child("dxl:Plan")
        .map(|p| plan_from_node(p, &provider))
        .transpose()?;
    Ok(DxlDump {
        query,
        config,
        metadata,
        stack_trace,
        expected_plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser;
    use orca_expr::scalar::ScalarExpr as S;

    fn provider() -> MemoryProvider {
        let p = MemoryProvider::new();
        let t1 = p.register(
            "T1",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        let t2 = p.register(
            "T2",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        let _ = (t1, t2);
        p
    }

    /// The paper's running example (Listing 1): SELECT T1.a FROM T1, T2
    /// WHERE T1.a = T2.b ORDER BY T1.a, result gathered to the master.
    fn running_example(p: &MemoryProvider) -> DxlQuery {
        let t1 = TableRef(p.table(p.table_by_name("T1").unwrap()).unwrap());
        let t2 = TableRef(p.table(p.table_by_name("T2").unwrap()).unwrap());
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: S::col_eq_col(ColId(0), ColId(3)),
            },
            vec![
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t1,
                    cols: vec![ColId(0), ColId(1)],
                    parts: None,
                }),
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t2,
                    cols: vec![ColId(2), ColId(3)],
                    parts: None,
                }),
            ],
        );
        DxlQuery {
            expr: join,
            output_cols: vec![ColId(0)],
            order: OrderSpec::by(&[ColId(0)]),
            dist: DistSpec::Singleton,
            columns: vec![
                ("a".into(), DataType::Int),
                ("b".into(), DataType::Int),
                ("a".into(), DataType::Int),
                ("b".into(), DataType::Int),
            ],
        }
    }

    #[test]
    fn query_roundtrip_running_example() {
        let p = provider();
        let q = running_example(&p);
        let text = ser::query_to_dxl(&q);
        assert!(text.contains("dxl:LogicalJoin"));
        assert!(text.contains("Singleton"));
        let back = parse_query(&text, &p).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn scalar_roundtrip_rich_expression() {
        let p = provider();
        let e = S::and(vec![
            S::InList {
                expr: Box::new(S::col(ColId(1))),
                list: vec![S::int(1), S::int(2)],
                negated: true,
            },
            S::Case {
                branches: vec![(
                    S::IsNull(Box::new(S::col(ColId(0)))),
                    S::Const(Datum::Str("null!".into())),
                )],
                else_value: Some(Box::new(S::Const(Datum::Double(2.5)))),
            },
            S::Not(Box::new(S::Or(vec![
                S::col_eq_col(ColId(0), ColId(1)),
                S::Const(Datum::Bool(false)),
            ]))),
            S::Arith {
                op: ArithOp::Mul,
                left: Box::new(S::col(ColId(0))),
                right: Box::new(S::Const(Datum::Date(7))),
            },
        ]);
        let xml = ser::scalar_to_xml(&e).to_document();
        let back = scalar_from_xml(&xml::parse(&xml).unwrap(), &p).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn plan_roundtrip_with_motions() {
        let p = provider();
        let t1 = TableRef(p.table(p.table_by_name("T1").unwrap()).unwrap());
        let t2 = TableRef(p.table(p.table_by_name("T2").unwrap()).unwrap());
        // Figure 6's extracted final plan.
        let plan = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
            },
            vec![PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: OrderSpec::by(&[ColId(0)]),
                },
                vec![PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::Inner,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        PhysicalPlan::leaf(PhysicalOp::TableScan {
                            table: t1,
                            cols: vec![ColId(0), ColId(1)],
                            parts: None,
                        }),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Redistribute(vec![ColId(3)]),
                            },
                            vec![PhysicalPlan::leaf(PhysicalOp::TableScan {
                                table: t2,
                                cols: vec![ColId(2), ColId(3)],
                                parts: None,
                            })],
                        ),
                    ],
                )],
            )],
        );
        let doc = DxlPlan { plan, cost: 123.5 };
        let text = ser::plan_to_dxl(&doc);
        let back = parse_plan_doc(&text, &p).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn metadata_roundtrip_with_stats_and_partitioning() {
        let p = provider();
        let t1_id = p.table_by_name("T1").unwrap();
        let mut fact = (*p.table(t1_id).unwrap()).clone();
        fact.mdid = MdId::new(orca_common::SysId::Gpdb, 77, 2);
        fact.name = "fact".into();
        let fact = Arc::new(fact.with_partitioning(Partitioning::range(1, 0, 100, 4)));
        let stats = TableStats::new(1000.0, 2).set_column(
            0,
            ColumnStats::new(50.0, 0.1, 8)
                .with_histogram(Histogram::from_values((0..50).map(f64::from).collect(), 4)),
        );
        let doc = MetadataDoc {
            tables: vec![p.table(t1_id).unwrap(), fact.clone()],
            stats: vec![(t1_id, Arc::new(stats))],
            indexes: vec![Arc::new(IndexDesc {
                mdid: MdId::new(orca_common::SysId::Gpdb, 900, 1),
                name: "fact_idx".into(),
                table: fact.mdid,
                key_columns: vec![1, 0],
            })],
        };
        let text = ser::metadata_to_dxl(&doc);
        let back = parse_metadata(&text).unwrap();
        assert_eq!(back, doc);
        // And the reconstructed provider serves the content.
        let prov = provider_from_metadata(&back);
        assert_eq!(prov.table(fact.mdid).unwrap().num_partitions(), 4);
        assert_eq!(prov.stats(t1_id).unwrap().rows, 1000.0);
        assert_eq!(prov.indexes(fact.mdid).unwrap().len(), 1);
    }

    #[test]
    fn dump_roundtrip_self_contained() {
        let p = provider();
        let q = running_example(&p);
        let t1_id = p.table_by_name("T1").unwrap();
        let t2_id = p.table_by_name("T2").unwrap();
        let dump = DxlDump {
            query: q,
            config: vec![
                ("workers".into(), "4".into()),
                ("gp_optimizer_hashjoin".into(), "on".into()),
            ],
            metadata: MetadataDoc {
                tables: vec![p.table(t1_id).unwrap(), p.table(t2_id).unwrap()],
                stats: vec![],
                indexes: vec![],
            },
            stack_trace: Some("0 gpos::CException::Raise".into()),
            expected_plan: None,
        };
        let text = ser::dump_to_dxl(&dump);
        let back = parse_dump(&text).unwrap();
        assert_eq!(back, dump);
    }
}
