//! `orca-dxl` — the Data eXchange Language (§3, Figure 2).
//!
//! "Orca includes a framework for exchanging information between the
//! optimizer and the database system called Data eXchange Language (DXL).
//! The framework uses an XML-based language to encode the necessary
//! information for communication, such as input queries, output plans and
//! metadata."
//!
//! * [`xml`] — a small hand-written XML subset (elements, attributes,
//!   self-closing tags, comments, escaping). No external dependency.
//! * [`ser`] / [`de`] — serializers/deserializers for the four DXL document
//!   kinds: **query**, **plan**, **metadata**, and the **AMPERe dump**
//!   (§6.1) that bundles all of them with configuration and an error trace.
//! * [`file_provider`] — the file-based `MdProvider` of §5: "Orca
//!   implements a file-based MD Provider to load metadata from a DXL file,
//!   eliminating the need to access a live backend system."

pub mod de;
pub mod file_provider;
pub mod ser;
pub mod xml;

pub use de::{parse_dump, parse_metadata, parse_plan_doc, parse_query};
pub use file_provider::FileProvider;
pub use ser::{
    dump_to_dxl, metadata_to_dxl, normalize_mdid_versions, plan_to_dxl, query_fingerprint,
    query_to_dxl,
};
pub use xml::XmlNode;

use orca_common::{ColId, Datum};
use orca_expr::props::DistSpec;
use orca_expr::{LogicalExpr, OrderSpec, PhysicalPlan};

/// A DXL query document: the logical tree plus the query-level requirements
/// of §4.1 ("required output columns, sorting columns, data distribution").
#[derive(Debug, Clone, PartialEq)]
pub struct DxlQuery {
    pub expr: LogicalExpr,
    pub output_cols: Vec<ColId>,
    pub order: OrderSpec,
    pub dist: DistSpec,
    /// Column registry snapshot: id → (name, type) for every minted column,
    /// so a replay can rebuild the factory.
    pub columns: Vec<(String, orca_common::DataType)>,
}

/// A DXL plan document: the physical tree and its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DxlPlan {
    pub plan: PhysicalPlan,
    pub cost: f64,
}

/// An AMPERe dump (§6.1): "the input query, optimizer configurations and
/// metadata, serialized in DXL", plus the error trace when the dump was
/// triggered by an exception.
#[derive(Debug, Clone, PartialEq)]
pub struct DxlDump {
    pub query: DxlQuery,
    /// Optimizer configuration as key/value pairs (trace flags, stages,
    /// segment counts) — kept schema-free so `orca` can evolve its config
    /// without touching this crate.
    pub config: Vec<(String, String)>,
    /// Harvested metadata (the pinned MD-cache content).
    pub metadata: MetadataDoc,
    /// Exception trace, when triggered by an error.
    pub stack_trace: Option<String>,
    /// The expected plan, when the dump is used as a regression test case.
    pub expected_plan: Option<DxlPlan>,
}

/// Serialized metadata: everything a file-based provider needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetadataDoc {
    pub tables: Vec<std::sync::Arc<orca_catalog::TableDesc>>,
    pub stats: Vec<(orca_common::MdId, std::sync::Arc<orca_catalog::TableStats>)>,
    pub indexes: Vec<std::sync::Arc<orca_catalog::IndexDesc>>,
}

pub(crate) fn cols_attr(cols: &[ColId]) -> String {
    cols.iter()
        .map(|c| c.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

pub(crate) fn datum_attrs(d: &Datum) -> (String, String) {
    match d {
        Datum::Null => ("null".into(), String::new()),
        Datum::Bool(b) => ("bool".into(), b.to_string()),
        Datum::Int(i) => ("int8".into(), i.to_string()),
        Datum::Double(f) => ("float8".into(), format!("{f:?}")),
        Datum::Str(s) => ("text".into(), s.clone()),
        Datum::Date(d) => ("date".into(), d.to_string()),
    }
}
