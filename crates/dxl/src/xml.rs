//! A minimal XML subset: exactly what DXL documents need.
//!
//! Supported: elements, attributes (double-quoted), self-closing tags,
//! comments, an optional leading `<?xml ...?>` declaration, and the five
//! standard entities in attribute values. Not supported (not needed by
//! DXL): text nodes, CDATA, namespaces beyond literal prefixes in names,
//! DOCTYPE.

use orca_common::{OrcaError, Result};

/// One XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
}

impl XmlNode {
    pub fn new(name: &str) -> XmlNode {
        XmlNode {
            name: name.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    pub fn attr(mut self, key: &str, value: impl ToString) -> XmlNode {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    pub fn child(mut self, c: XmlNode) -> XmlNode {
        self.children.push(c);
        self
    }

    pub fn children(mut self, cs: impl IntoIterator<Item = XmlNode>) -> XmlNode {
        self.children.extend(cs);
        self
    }

    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Required attribute or a descriptive error.
    pub fn req_attr(&self, key: &str) -> Result<&str> {
        self.get_attr(key)
            .ok_or_else(|| OrcaError::Dxl(format!("<{}> missing attribute '{key}'", self.name)))
    }

    /// The single child with the given name.
    pub fn find_child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    pub fn req_child(&self, name: &str) -> Result<&XmlNode> {
        self.find_child(name)
            .ok_or_else(|| OrcaError::Dxl(format!("<{}> missing child <{name}>", self.name)))
    }

    /// The n-th child or an error.
    pub fn req_nth(&self, n: usize) -> Result<&XmlNode> {
        self.children
            .get(n)
            .ok_or_else(|| OrcaError::Dxl(format!("<{}> missing child #{n}", self.name)))
    }

    /// Serialize with 2-space indentation and a declaration header.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push_str(">\n");
        for c in &self.children {
            c.write(out, depth + 1);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest
            .find(';')
            .ok_or_else(|| OrcaError::Dxl("unterminated entity".into()))?;
        match &rest[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            e => return Err(OrcaError::Dxl(format!("unknown entity {e}"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parse a document into its root element.
pub fn parse(input: &str) -> Result<XmlNode> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_ws_and_comments()?;
    if p.pos != p.bytes.len() {
        return Err(OrcaError::Dxl("trailing content after root element".into()));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn err(&self, msg: &str) -> OrcaError {
        OrcaError::Dxl(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match self.bytes[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(i) => self.pos += i + 2,
                None => return Err(self.err("unterminated declaration")),
            }
        }
        self.skip_ws_and_comments()
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in name"))?
            .to_string())
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    self.expect(b'"')?;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'"') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf8 in attribute"))?;
                    self.expect(b'"')?;
                    node.attrs.push((key, unescape(raw)?));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Children until the closing tag.
        loop {
            self.skip_ws_and_comments()?;
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched </{close}>, expected </{name}>")));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(node);
            }
            if self.peek() == Some(b'<') {
                node.children.push(self.parse_element()?);
            } else if self.peek().is_none() {
                return Err(self.err(&format!("unterminated element <{name}>")));
            } else {
                return Err(self.err("text content not supported"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = XmlNode::new("dxl:DXLMessage")
            .attr("xmlns:dxl", "http://greenplum.com/dxl/v1")
            .child(
                XmlNode::new("dxl:Query").child(
                    XmlNode::new("dxl:LogicalGet")
                        .attr("Name", "T1")
                        .attr("Mdid", "GPDB.1.1"),
                ),
            );
        let text = doc.to_document();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn escaping_roundtrips() {
        let doc = XmlNode::new("a").attr("v", "x < 1 & \"y\" > 'z'");
        let parsed = parse(&doc.to_document()).unwrap();
        assert_eq!(parsed.get_attr("v"), Some("x < 1 & \"y\" > 'z'"));
    }

    #[test]
    fn comments_and_declaration_skipped() {
        let text = "<?xml version=\"1.0\"?>\n<!-- hello -->\n<root><!-- inner --><leaf/></root>";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.name, "root");
        assert_eq!(parsed.children.len(), 1);
        assert_eq!(parsed.children[0].name, "leaf");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("<a><b></a>").is_err());
        assert!(parse("<a>text</a>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<a/><b/>").is_err());
        let e = parse("<a foo=bar/>").unwrap_err();
        assert_eq!(e.kind(), "dxl");
    }

    #[test]
    fn helpers() {
        let n = XmlNode::new("x")
            .attr("k", 5)
            .child(XmlNode::new("c1"))
            .child(XmlNode::new("c2"));
        assert_eq!(n.req_attr("k").unwrap(), "5");
        assert!(n.req_attr("missing").is_err());
        assert!(n.req_child("c2").is_ok());
        assert!(n.req_child("zzz").is_err());
        assert_eq!(n.req_nth(1).unwrap().name, "c2");
        assert!(n.req_nth(2).is_err());
    }
}
