//! DXL serialization: expression trees, plans, metadata and dumps → XML.
//!
//! Layout conventions (mirrored exactly by [`crate::de`]):
//! * scalar children come *after* relational children in mixed nodes
//!   (`LogicalSelect` = `[pred, input]` is the one paper-faithful
//!   exception: Listing 1 puts the comparison last, so we do too — all
//!   relational children first, predicate last);
//! * column lists ride in comma-separated attributes;
//! * sort specs serialize as `"<colid>a"` / `"<colid>d"` tokens.

use crate::xml::XmlNode;
use crate::{cols_attr, datum_attrs, DxlDump, DxlPlan, DxlQuery, MetadataDoc};
use orca_catalog::{Distribution, TableStats};
use orca_expr::logical::{LogicalExpr, LogicalOp};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::ScalarExpr;

pub(crate) fn order_attr(o: &OrderSpec) -> String {
    o.0.iter()
        .map(|k| format!("{}{}", k.col.0, if k.desc { 'd' } else { 'a' }))
        .collect::<Vec<_>>()
        .join(",")
}

fn nested_cols_attr(groups: &[Vec<orca_common::ColId>]) -> String {
    groups
        .iter()
        .map(|g| cols_attr(g))
        .collect::<Vec<_>>()
        .join("|")
}

// ---------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------

pub fn scalar_to_xml(e: &ScalarExpr) -> XmlNode {
    match e {
        ScalarExpr::ColRef(c) => XmlNode::new("dxl:Ident").attr("ColId", c.0),
        ScalarExpr::Const(d) => {
            let (ty, val) = datum_attrs(d);
            XmlNode::new("dxl:Const")
                .attr("Type", ty)
                .attr("Value", val)
        }
        ScalarExpr::Cmp { op, left, right } => XmlNode::new("dxl:Comparison")
            .attr("Operator", op.symbol())
            .child(scalar_to_xml(left))
            .child(scalar_to_xml(right)),
        ScalarExpr::And(v) => XmlNode::new("dxl:BoolAnd").children(v.iter().map(scalar_to_xml)),
        ScalarExpr::Or(v) => XmlNode::new("dxl:BoolOr").children(v.iter().map(scalar_to_xml)),
        ScalarExpr::Not(x) => XmlNode::new("dxl:Not").child(scalar_to_xml(x)),
        ScalarExpr::IsNull(x) => XmlNode::new("dxl:IsNull").child(scalar_to_xml(x)),
        ScalarExpr::Arith { op, left, right } => XmlNode::new("dxl:Arith")
            .attr("Operator", op.symbol())
            .child(scalar_to_xml(left))
            .child(scalar_to_xml(right)),
        ScalarExpr::Case {
            branches,
            else_value,
        } => {
            let mut node = XmlNode::new("dxl:Case");
            for (cond, val) in branches {
                node = node.child(
                    XmlNode::new("dxl:When")
                        .child(scalar_to_xml(cond))
                        .child(scalar_to_xml(val)),
                );
            }
            if let Some(ev) = else_value {
                node = node.child(XmlNode::new("dxl:Else").child(scalar_to_xml(ev)));
            }
            node
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => XmlNode::new("dxl:InList")
            .attr("Negated", negated)
            .child(scalar_to_xml(expr))
            .children(list.iter().map(scalar_to_xml)),
        ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            let mut node = XmlNode::new("dxl:AggFunc")
                .attr("Name", func.name())
                .attr("Distinct", distinct);
            if let Some(a) = arg {
                node = node.child(scalar_to_xml(a));
            }
            node
        }
        ScalarExpr::Exists { negated, subquery } => XmlNode::new("dxl:SubqExists")
            .attr("Negated", negated)
            .child(logical_to_xml(subquery)),
        ScalarExpr::InSubquery {
            expr,
            subquery,
            subquery_col,
            negated,
        } => XmlNode::new("dxl:SubqIn")
            .attr("Negated", negated)
            .attr("SubqueryCol", subquery_col.0)
            .child(scalar_to_xml(expr))
            .child(logical_to_xml(subquery)),
        ScalarExpr::ScalarSubquery {
            subquery,
            subquery_col,
        } => XmlNode::new("dxl:SubqScalar")
            .attr("SubqueryCol", subquery_col.0)
            .child(logical_to_xml(subquery)),
    }
}

// ---------------------------------------------------------------------
// Logical trees
// ---------------------------------------------------------------------

fn table_descriptor(table: &orca_expr::logical::TableRef) -> XmlNode {
    XmlNode::new("dxl:TableDescriptor")
        .attr("Mdid", table.mdid.to_dxl())
        .attr("Name", &table.name)
}

fn parts_attr(node: XmlNode, parts: &Option<Vec<usize>>) -> XmlNode {
    match parts {
        Some(p) => node.attr(
            "Parts",
            p.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ),
        None => node,
    }
}

pub fn logical_to_xml(e: &LogicalExpr) -> XmlNode {
    let kids = |n: XmlNode| n.children(e.children.iter().map(logical_to_xml));
    match &e.op {
        LogicalOp::Get { table, cols, parts } => parts_attr(
            XmlNode::new("dxl:LogicalGet").attr("Cols", cols_attr(cols)),
            parts,
        )
        .child(table_descriptor(table)),
        LogicalOp::Select { pred } => {
            kids(XmlNode::new("dxl:LogicalSelect")).child(scalar_to_xml(pred))
        }
        LogicalOp::Project { exprs } => kids(XmlNode::new("dxl:LogicalProject").attr(
            "Cols",
            cols_attr(&exprs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
        ))
        .children(exprs.iter().map(|(_, x)| scalar_to_xml(x))),
        LogicalOp::Join { kind, pred } => {
            kids(XmlNode::new("dxl:LogicalJoin").attr("JoinType", kind.name()))
                .child(scalar_to_xml(pred))
        }
        LogicalOp::GbAgg {
            group_cols,
            aggs,
            stage,
        } => kids(
            XmlNode::new("dxl:LogicalGbAgg")
                .attr("Stage", stage.name())
                .attr("GroupCols", cols_attr(group_cols))
                .attr(
                    "AggCols",
                    cols_attr(&aggs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
                ),
        )
        .children(aggs.iter().map(|(_, x)| scalar_to_xml(x))),
        LogicalOp::Limit {
            order,
            offset,
            count,
        } => {
            let mut n = XmlNode::new("dxl:LogicalLimit")
                .attr("Sort", order_attr(order))
                .attr("Offset", offset);
            if let Some(c) = count {
                n = n.attr("Count", c);
            }
            kids(n)
        }
        LogicalOp::SetOp {
            kind,
            output,
            input_cols,
        } => kids(
            XmlNode::new("dxl:LogicalSetOp")
                .attr("Kind", kind.name())
                .attr("Output", cols_attr(output))
                .attr("InputCols", nested_cols_attr(input_cols)),
        ),
        LogicalOp::Sequence { id } => kids(XmlNode::new("dxl:LogicalSequence").attr("CteId", id.0)),
        LogicalOp::CteProducer { id, cols } => kids(
            XmlNode::new("dxl:LogicalCTEProducer")
                .attr("CteId", id.0)
                .attr("Cols", cols_attr(cols)),
        ),
        LogicalOp::CteConsumer {
            id,
            cols,
            producer_cols,
        } => XmlNode::new("dxl:LogicalCTEConsumer")
            .attr("CteId", id.0)
            .attr("Cols", cols_attr(cols))
            .attr("ProducerCols", cols_attr(producer_cols)),
        LogicalOp::ConstTable { cols, rows } => XmlNode::new("dxl:LogicalConstTable")
            .attr("Cols", cols_attr(cols))
            .children(rows.iter().map(|row| {
                XmlNode::new("dxl:Row").children(row.iter().map(|d| {
                    let (ty, val) = datum_attrs(d);
                    XmlNode::new("dxl:Const")
                        .attr("Type", ty)
                        .attr("Value", val)
                }))
            })),
        LogicalOp::MaxOneRow => kids(XmlNode::new("dxl:LogicalMaxOneRow")),
    }
}

// ---------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------

pub fn physical_to_xml(p: &PhysicalPlan) -> XmlNode {
    let kids = |n: XmlNode| n.children(p.children.iter().map(physical_to_xml));
    match &p.op {
        PhysicalOp::TableScan { table, cols, parts } => parts_attr(
            XmlNode::new("dxl:TableScan").attr("Cols", cols_attr(cols)),
            parts,
        )
        .child(table_descriptor(table)),
        PhysicalOp::IndexScan {
            table,
            index_name,
            cols,
            key_cols,
            parts,
        } => parts_attr(
            XmlNode::new("dxl:IndexScan")
                .attr("Index", index_name)
                .attr("Cols", cols_attr(cols))
                .attr("KeyCols", cols_attr(key_cols)),
            parts,
        )
        .child(table_descriptor(table)),
        PhysicalOp::Filter { pred } => kids(XmlNode::new("dxl:Filter")).child(scalar_to_xml(pred)),
        PhysicalOp::Project { exprs } => kids(XmlNode::new("dxl:Project").attr(
            "Cols",
            cols_attr(&exprs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
        ))
        .children(exprs.iter().map(|(_, x)| scalar_to_xml(x))),
        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let mut n = XmlNode::new("dxl:HashJoin")
                .attr("JoinType", kind.name())
                .attr("LeftKeys", cols_attr(left_keys))
                .attr("RightKeys", cols_attr(right_keys));
            n = n.children(p.children.iter().map(physical_to_xml));
            if let Some(r) = residual {
                n = n.attr("HasResidual", true).child(scalar_to_xml(r));
            }
            n
        }
        PhysicalOp::NLJoin { kind, pred } => {
            kids(XmlNode::new("dxl:NLJoin").attr("JoinType", kind.name()))
                .child(scalar_to_xml(pred))
        }
        PhysicalOp::HashAgg {
            group_cols,
            aggs,
            stage,
        } => kids(
            XmlNode::new("dxl:HashAgg")
                .attr("Stage", stage.name())
                .attr("GroupCols", cols_attr(group_cols))
                .attr(
                    "AggCols",
                    cols_attr(&aggs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
                ),
        )
        .children(aggs.iter().map(|(_, x)| scalar_to_xml(x))),
        PhysicalOp::StreamAgg {
            group_cols,
            aggs,
            stage,
        } => kids(
            XmlNode::new("dxl:StreamAgg")
                .attr("Stage", stage.name())
                .attr("GroupCols", cols_attr(group_cols))
                .attr(
                    "AggCols",
                    cols_attr(&aggs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
                ),
        )
        .children(aggs.iter().map(|(_, x)| scalar_to_xml(x))),
        PhysicalOp::Sort { order } => {
            kids(XmlNode::new("dxl:Sort").attr("Sort", order_attr(order)))
        }
        PhysicalOp::Limit {
            order,
            offset,
            count,
        } => {
            let mut n = XmlNode::new("dxl:Limit")
                .attr("Sort", order_attr(order))
                .attr("Offset", offset);
            if let Some(c) = count {
                n = n.attr("Count", c);
            }
            kids(n)
        }
        PhysicalOp::Motion { kind } => kids(match kind {
            MotionKind::Gather => XmlNode::new("dxl:Gather"),
            MotionKind::GatherMerge(o) => {
                XmlNode::new("dxl:GatherMerge").attr("Sort", order_attr(o))
            }
            MotionKind::Redistribute(cols) => {
                XmlNode::new("dxl:Redistribute").attr("Cols", cols_attr(cols))
            }
            MotionKind::Broadcast => XmlNode::new("dxl:Broadcast"),
        }),
        // Slicer-internal placeholder: plans shipped over DXL are always
        // whole (the slicer runs inside the executor), but serializing it
        // keeps `explain`-style dumps of sliced plans well-formed.
        PhysicalOp::ExchangeRecv { motion } => {
            XmlNode::new("dxl:ExchangeRecv").attr("Motion", *motion)
        }
        PhysicalOp::Spool => kids(XmlNode::new("dxl:Spool")),
        PhysicalOp::Sequence { id } => kids(XmlNode::new("dxl:Sequence").attr("CteId", id.0)),
        PhysicalOp::CteProducer { id, cols } => kids(
            XmlNode::new("dxl:CTEProducer")
                .attr("CteId", id.0)
                .attr("Cols", cols_attr(cols)),
        ),
        PhysicalOp::CteScan {
            id,
            cols,
            producer_cols,
        } => XmlNode::new("dxl:CTEScan")
            .attr("CteId", id.0)
            .attr("Cols", cols_attr(cols))
            .attr("ProducerCols", cols_attr(producer_cols)),
        PhysicalOp::ConstTable { cols, rows } => XmlNode::new("dxl:ConstTable")
            .attr("Cols", cols_attr(cols))
            .children(rows.iter().map(|row| {
                XmlNode::new("dxl:Row").children(row.iter().map(|d| {
                    let (ty, val) = datum_attrs(d);
                    XmlNode::new("dxl:Const")
                        .attr("Type", ty)
                        .attr("Value", val)
                }))
            })),
        PhysicalOp::AssertOneRow => kids(XmlNode::new("dxl:AssertOneRow")),
        PhysicalOp::UnionAll { output, input_cols } => kids(
            XmlNode::new("dxl:UnionAll")
                .attr("Output", cols_attr(output))
                .attr("InputCols", nested_cols_attr(input_cols)),
        ),
        PhysicalOp::HashSetOp {
            kind,
            output,
            input_cols,
        } => kids(
            XmlNode::new("dxl:HashSetOp")
                .attr("Kind", kind.name())
                .attr("Output", cols_attr(output))
                .attr("InputCols", nested_cols_attr(input_cols)),
        ),
    }
}

// ---------------------------------------------------------------------
// Documents
// ---------------------------------------------------------------------

fn dist_node(dist: &DistSpec) -> XmlNode {
    let n = XmlNode::new("dxl:Distribution");
    match dist {
        DistSpec::Any => n.attr("Type", "Any"),
        DistSpec::Singleton => n.attr("Type", "Singleton"),
        DistSpec::Replicated => n.attr("Type", "Replicated"),
        DistSpec::Random => n.attr("Type", "Random"),
        DistSpec::Hashed(cols) => n.attr("Type", "Hashed").attr("Cols", cols_attr(cols)),
    }
}

fn query_node(q: &DxlQuery) -> XmlNode {
    XmlNode::new("dxl:Query")
        .child(
            XmlNode::new("dxl:OutputColumns").children(
                q.output_cols
                    .iter()
                    .map(|c| XmlNode::new("dxl:Ident").attr("ColId", c.0)),
            ),
        )
        .child(XmlNode::new("dxl:SortingColumnList").attr("Sort", order_attr(&q.order)))
        .child(dist_node(&q.dist))
        .child(
            XmlNode::new("dxl:Columns").children(q.columns.iter().enumerate().map(
                |(i, (name, ty))| {
                    XmlNode::new("dxl:RegCol")
                        .attr("Id", i)
                        .attr("Name", name)
                        .attr("Type", ty.name())
                },
            )),
        )
        .child(logical_to_xml(&q.expr))
}

/// Serialize a query document (Listing 1's shape).
pub fn query_to_dxl(q: &DxlQuery) -> String {
    XmlNode::new("dxl:DXLMessage")
        .attr("xmlns:dxl", "http://greenplum.com/dxl/v1")
        .child(query_node(q))
        .to_document()
}

/// Strip the version component from every `Mdid="SYS.oid.version"`
/// attribute, leaving `Mdid="SYS.oid"`. A plan-cache fingerprint must be
/// version-*independent*: after a `bump_table_version` the same query text
/// has to land on the same cache slot so the stale entry is found and
/// evicted — the versions travel separately, in the entry's recorded
/// `MdId` set.
pub fn normalize_mdid_versions(dxl: &str) -> String {
    let mut out = String::with_capacity(dxl.len());
    let mut rest = dxl;
    while let Some(pos) = rest.find("Mdid=\"") {
        let val_start = pos + "Mdid=\"".len();
        out.push_str(&rest[..val_start]);
        rest = &rest[val_start..];
        let Some(end) = rest.find('"') else { break };
        let value = &rest[..end];
        // Keep "SYS.oid", drop the final ".version" component (if present).
        match value.rmatch_indices('.').next() {
            Some((last_dot, _)) if value[..last_dot].contains('.') => {
                out.push_str(&value[..last_dot]);
            }
            _ => out.push_str(value),
        }
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// Deterministic fingerprint of a query document, invariant under metadata
/// version bumps — the identity half of a plan-cache key.
pub fn query_fingerprint(q: &DxlQuery) -> u64 {
    orca_common::hash::fnv_hash(&normalize_mdid_versions(&query_to_dxl(q)))
}

fn plan_node(p: &DxlPlan) -> XmlNode {
    XmlNode::new("dxl:Plan")
        .attr("Cost", format!("{:?}", p.cost))
        .child(physical_to_xml(&p.plan))
}

/// Serialize a plan document.
pub fn plan_to_dxl(p: &DxlPlan) -> String {
    XmlNode::new("dxl:DXLMessage")
        .attr("xmlns:dxl", "http://greenplum.com/dxl/v1")
        .child(plan_node(p))
        .to_document()
}

pub(crate) fn metadata_node(md: &MetadataDoc) -> XmlNode {
    let mut n = XmlNode::new("dxl:Metadata").attr("SystemIds", "0.GPDB");
    for t in &md.tables {
        let mut rel = XmlNode::new("dxl:Relation")
            .attr("Mdid", t.mdid.to_dxl())
            .attr("Name", &t.name);
        rel = match &t.distribution {
            Distribution::Hashed(cols) => rel.attr("DistributionPolicy", "Hash").attr(
                "DistributionColumns",
                cols.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            Distribution::Random => rel.attr("DistributionPolicy", "Random"),
            Distribution::Replicated => rel.attr("DistributionPolicy", "Replicated"),
            Distribution::Singleton => rel.attr("DistributionPolicy", "Singleton"),
        };
        if let Some(p) = &t.partitioning {
            rel = rel.attr("PartColumn", p.column).attr(
                "PartBounds",
                p.bounds
                    .iter()
                    .map(|(lo, hi)| format!("{lo}:{hi}"))
                    .collect::<Vec<_>>()
                    .join(";"),
            );
        }
        for (attno, c) in t.columns.iter().enumerate() {
            rel = rel.child(
                XmlNode::new("dxl:Column")
                    .attr("Name", &c.name)
                    .attr("Attno", attno)
                    .attr("Type", c.dtype.name())
                    .attr("Nullable", c.nullable),
            );
        }
        n = n.child(rel);
    }
    for (mdid, stats) in &md.stats {
        n = n.child(stats_node(*mdid, stats));
    }
    for ix in &md.indexes {
        n = n.child(
            XmlNode::new("dxl:Index")
                .attr("Mdid", ix.mdid.to_dxl())
                .attr("Name", &ix.name)
                .attr("Relation", ix.table.to_dxl())
                .attr(
                    "KeyCols",
                    ix.key_columns
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
        );
    }
    n
}

fn stats_node(mdid: orca_common::MdId, stats: &TableStats) -> XmlNode {
    let mut n = XmlNode::new("dxl:RelStats")
        .attr("Mdid", mdid.to_dxl())
        .attr("Rows", format!("{:?}", stats.rows));
    for (i, cs) in stats.columns.iter().enumerate() {
        let Some(cs) = cs else { continue };
        let mut cn = XmlNode::new("dxl:ColStats")
            .attr("Col", i)
            .attr("Ndv", format!("{:?}", cs.ndv))
            .attr("NullFrac", format!("{:?}", cs.null_frac))
            .attr("Width", cs.width);
        if let Some(h) = &cs.histogram {
            for b in &h.buckets {
                cn = cn.child(
                    XmlNode::new("dxl:Bucket")
                        .attr("Lo", format!("{:?}", b.lo))
                        .attr("Hi", format!("{:?}", b.hi))
                        .attr("Rows", format!("{:?}", b.rows))
                        .attr("Ndv", format!("{:?}", b.ndv)),
                );
            }
        }
        n = n.child(cn);
    }
    n
}

/// Serialize a standalone metadata document (the file-based provider's
/// input).
pub fn metadata_to_dxl(md: &MetadataDoc) -> String {
    XmlNode::new("dxl:DXLMessage")
        .attr("xmlns:dxl", "http://greenplum.com/dxl/v1")
        .child(metadata_node(md))
        .to_document()
}

/// Serialize an AMPERe dump (Listing 2's shape).
pub fn dump_to_dxl(d: &DxlDump) -> String {
    let mut thread = XmlNode::new("dxl:Thread").attr("Id", 0);
    if let Some(st) = &d.stack_trace {
        thread = thread.child(XmlNode::new("dxl:Stacktrace").attr("Trace", st));
    }
    thread = thread.child(
        XmlNode::new("dxl:Config").children(
            d.config
                .iter()
                .map(|(k, v)| XmlNode::new("dxl:Param").attr("Name", k).attr("Value", v)),
        ),
    );
    thread = thread.child(metadata_node(&d.metadata));
    thread = thread.child(query_node(&d.query));
    if let Some(p) = &d.expected_plan {
        thread = thread.child(plan_node(p));
    }
    XmlNode::new("dxl:DXLMessage")
        .attr("xmlns:dxl", "http://greenplum.com/dxl/v1")
        .child(thread)
        .to_document()
}
