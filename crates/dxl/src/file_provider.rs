//! The file-based metadata provider of §5.
//!
//! "Orca implements a file-based MD Provider to load metadata from a DXL
//! file, eliminating the need to access a live backend system." Backed by
//! [`orca_catalog::MemoryProvider`] after parsing the metadata document.

use crate::de::{parse_metadata, provider_from_metadata};
use crate::ser::metadata_to_dxl;
use crate::MetadataDoc;
use orca_catalog::provider::MdProvider;
use orca_catalog::{IndexDesc, MemoryProvider, TableDesc, TableStats};
use orca_common::{MdId, OrcaError, Result, SysId};
use std::path::Path;
use std::sync::Arc;

/// Metadata loaded from a DXL file (or string).
pub struct FileProvider {
    inner: MemoryProvider,
}

impl FileProvider {
    /// Parse a DXL metadata document from a string.
    pub fn from_dxl(text: &str) -> Result<FileProvider> {
        let doc = parse_metadata(text)?;
        Ok(FileProvider {
            inner: provider_from_metadata(&doc),
        })
    }

    /// Load from a file on disk.
    pub fn open(path: &Path) -> Result<FileProvider> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| OrcaError::Metadata(format!("cannot read {}: {e}", path.display())))?;
        FileProvider::from_dxl(&text)
    }

    /// Write a metadata document to disk (the harvesting tool's output:
    /// "an automated tool for harvesting metadata that optimizer needs into
    /// a minimal DXL file").
    pub fn save(doc: &MetadataDoc, path: &Path) -> Result<()> {
        std::fs::write(path, metadata_to_dxl(doc))
            .map_err(|e| OrcaError::Metadata(format!("cannot write {}: {e}", path.display())))
    }
}

impl MdProvider for FileProvider {
    fn system(&self) -> SysId {
        SysId::File
    }

    fn table(&self, mdid: MdId) -> Result<Arc<TableDesc>> {
        self.inner.table(mdid)
    }

    fn stats(&self, mdid: MdId) -> Result<Arc<TableStats>> {
        self.inner.stats(mdid)
    }

    fn indexes(&self, mdid: MdId) -> Result<Arc<Vec<Arc<IndexDesc>>>> {
        self.inner.indexes(mdid)
    }

    fn table_by_name(&self, name: &str) -> Option<MdId> {
        self.inner.table_by_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Distribution};
    use orca_common::DataType;

    #[test]
    fn file_provider_roundtrip_via_disk() {
        let p = MemoryProvider::new();
        let id = p.register(
            "r",
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Hashed(vec![0]),
        );
        p.set_stats(id, TableStats::new(10.0, 1));
        let doc = MetadataDoc {
            tables: vec![p.table(id).unwrap()],
            stats: vec![(id, p.stats(id).unwrap())],
            indexes: vec![],
        };
        let dir = std::env::temp_dir().join("orca_dxl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("md.dxl");
        FileProvider::save(&doc, &path).unwrap();
        let fp = FileProvider::open(&path).unwrap();
        assert_eq!(fp.system(), SysId::File);
        assert_eq!(fp.table_by_name("r"), Some(id));
        assert_eq!(fp.stats(id).unwrap().rows, 10.0);
        assert!(fp.table(MdId::new(SysId::Gpdb, 999, 1)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_errors() {
        assert!(FileProvider::open(Path::new("/nonexistent/md.dxl")).is_err());
    }
}
