//! Tiny ASCII reporting helpers (bar charts shaped like the paper's
//! figures, aligned tables).

/// Render a log-scale horizontal bar for a speed-up ratio (Figures 12–14
/// are log-scale bar charts).
pub fn speedup_bar(ratio: f64, cap: f64) -> String {
    let capped = ratio.clamp(0.01, cap);
    // Map log10 range [-1, log10(cap)] onto 0..60 chars.
    let lo = -1.0;
    let hi = cap.log10();
    let frac = ((capped.log10() - lo) / (hi - lo)).clamp(0.0, 1.0);
    let width = (frac * 60.0).round() as usize;
    let marker = if ratio >= cap { ">" } else { "" };
    format!("{}{}", "#".repeat(width.max(1)), marker)
}

/// Fixed-width row formatter.
pub fn row(cols: &[(&str, usize)]) -> String {
    cols.iter()
        .map(|(text, width)| format!("{text:<width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Format a ratio like the paper's annotations ("1000x" at the cap).
pub fn ratio_label(ratio: f64, cap: f64) -> String {
    if ratio >= cap {
        format!("{cap:.0}x (capped)")
    } else if ratio >= 10.0 {
        format!("{ratio:.0}x")
    } else {
        format!("{ratio:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_logarithmically() {
        let b1 = speedup_bar(1.0, 1000.0).len();
        let b10 = speedup_bar(10.0, 1000.0).len();
        let b100 = speedup_bar(100.0, 1000.0).len();
        assert!(b10 > b1);
        assert!(b100 > b10);
        // Equal log steps → roughly equal width steps.
        let d1 = b10 as i64 - b1 as i64;
        let d2 = b100 as i64 - b10 as i64;
        assert!((d1 - d2).abs() <= 2, "{d1} vs {d2}");
        assert!(speedup_bar(5000.0, 1000.0).ends_with('>'));
    }

    #[test]
    fn labels() {
        assert_eq!(ratio_label(1500.0, 1000.0), "1000x (capped)");
        assert_eq!(ratio_label(42.0, 1000.0), "42x");
        assert_eq!(ratio_label(0.5, 1000.0), "0.50x");
        assert_eq!(row(&[("a", 3), ("b", 2)]), "a   b ");
    }
}
