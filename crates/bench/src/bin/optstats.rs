//! §7.2.2 resource statistics: "The average optimization time is around 4
//! seconds, while the average memory footprint is around 200 MB" (on the
//! authors' 16-node testbed with the full TPC-DS schema; our absolute
//! numbers are smaller, the per-query distribution is the point).
//!
//! Usage: `optstats [scale]`.

use orca::engine::OptimizerConfig;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_tpcds::suite;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("§7.2.2 — optimization time & memory footprint (full rule set)\n");
    let env = BenchEnv::new(scale, 16);
    println!(
        "{}",
        row(&[
            ("query", 6),
            ("time_ms", 9),
            ("groups", 7),
            ("exprs", 7),
            ("jobs", 7),
            ("goalhit", 8),
            ("pruned", 7),
            ("dd_hit", 7),
            ("dd_col", 7),
            ("memo_KB", 8),
            ("md_KB", 7),
        ])
    );
    let mut times = Vec::new();
    let mut memo_bytes = Vec::new();
    let mut jobs_all = Vec::new();
    let mut pruned_all = Vec::new();
    for q in suite() {
        let config = OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(env.cluster.clone());
        match env.optimize_only(&q, config) {
            Ok((_, stats)) => {
                let ms = stats.optimization_time.as_secs_f64() * 1e3;
                times.push(ms);
                memo_bytes.push(stats.memo_bytes as f64);
                jobs_all.push(stats.jobs_spawned as f64);
                pruned_all.push(stats.search.contexts_pruned as f64);
                println!(
                    "{}",
                    row(&[
                        (&q.id, 6),
                        (&format!("{ms:.2}"), 9),
                        (&stats.groups.to_string(), 7),
                        (&stats.group_exprs.to_string(), 7),
                        (&stats.jobs_spawned.to_string(), 7),
                        (&stats.goal_hits.to_string(), 8),
                        (&stats.search.contexts_pruned.to_string(), 7),
                        (&stats.search.dedup_hits.to_string(), 7),
                        (&stats.search.dedup_shard_collisions.to_string(), 7),
                        (&format!("{}", stats.memo_bytes / 1024), 8),
                        (&format!("{}", stats.metadata_bytes / 1024), 7),
                    ])
                );
            }
            Err(e) => println!("{}  FAILED: {e}", q.id),
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    println!("\n--- summary ---");
    println!("queries optimized        : {}", times.len());
    println!(
        "avg optimization time    : {:.2} ms (max {:.2} ms)",
        avg(&times),
        max(&times)
    );
    println!(
        "avg memo footprint       : {:.1} KB (max {:.1} KB)",
        avg(&memo_bytes) / 1024.0,
        max(&memo_bytes) / 1024.0
    );
    println!(
        "avg optimization jobs    : {:.0} per query (paper: \"hundreds or even thousands\")",
        avg(&jobs_all)
    );
    println!(
        "avg contexts pruned      : {:.0} per query (cost-bound branch-and-bound)",
        avg(&pruned_all)
    );
}
