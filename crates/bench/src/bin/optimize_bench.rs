//! Optimize-phase hot-path microbench.
//!
//! Times ONLY the optimization phase (`OptStats::optimize_time`) of the
//! 7-way-join suite while reporting the hot-path cache counters this
//! phase lives on: selectivity/cardinality cache hits vs misses and the
//! scalar/property interner hit counts. The exploration and
//! implementation phases run too (the memo must be populated) but are
//! excluded from the headline number.
//!
//! Determinism gate: the plan cost must be bit-identical across every
//! worker count — caching changes speed, never the chosen plan.
//!
//! Usage: `optimize_bench [scale] [repetitions] [--smoke]`.
//!
//! `--smoke` (CI) runs workers 1 and 4 at a small scale, writes no JSON,
//! and asserts a >= 50% selectivity-cache hit rate plus cost equality.
//! The full run writes `BENCH_optimize.json` (schema in EXPERIMENTS.md).

use orca::engine::OptimizerConfig;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_tpcds::SuiteQuery;

/// Same 7-relation join shape as `parallel_scaling` — wide enough that
/// selectivity derivation is a measurable slice of optimization time.
fn big_join_query(variant: usize) -> SuiteQuery {
    SuiteQuery {
        id: format!("opt{variant}"),
        template: "optimize_bench",
        sql: format!(
            "SELECT i.i_brand_id, d.d_moy, count(*) AS n, sum(cs.cs_net_profit) AS profit \
             FROM catalog_sales cs, item i, date_dim d, promotion p, call_center cc, \
                  customer c, customer_address ca \
             WHERE cs.cs_item_sk = i.i_item_sk \
               AND cs.cs_sold_date_sk = d.d_date_sk \
               AND cs.cs_promo_sk = p.p_promo_sk \
               AND cs.cs_call_center_sk = cc.cc_call_center_sk \
               AND cs.cs_bill_customer_sk = c.c_customer_sk \
               AND c.c_current_addr_sk = ca.ca_address_sk \
               AND d.d_date_sk > {} \
             GROUP BY i.i_brand_id, d.d_moy ORDER BY profit DESC LIMIT 20",
            variant * 10
        ),
        features: vec![],
    }
}

struct OptResult {
    workers: usize,
    optimize_ms: f64,
    explore_ms: f64,
    implement_ms: f64,
    plan_cost: f64,
    sel_cache_hits: u64,
    sel_cache_misses: u64,
    intern_hits: u64,
    exprs_interned: u64,
}

impl OptResult {
    fn sel_hit_rate(&self) -> f64 {
        let total = self.sel_cache_hits + self.sel_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.sel_cache_hits as f64 / total as f64
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.01 } else { 0.05 });
    let reps: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 })
        .max(1);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("optimize-phase hot-path microbench ({reps} reps, 7-way join)");
    println!("host CPUs available: {cpus}");
    println!();
    let env = BenchEnv::new(scale, 16);
    println!(
        "{}",
        row(&[
            ("workers", 8),
            ("opt_ms", 9),
            ("expl_ms", 9),
            ("impl_ms", 9),
            ("plan_cost", 12),
            ("sel_hits", 9),
            ("sel_miss", 9),
            ("sel_hit%", 8),
            ("int_hits", 9),
            ("interned", 9),
        ])
    );
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut results: Vec<OptResult> = Vec::new();
    for &workers in worker_counts {
        let mut optimize_ms = 0.0;
        let mut explore_ms = 0.0;
        let mut implement_ms = 0.0;
        let mut cost = 0.0;
        let mut sel_hits = 0u64;
        let mut sel_misses = 0u64;
        let mut intern_hits = 0u64;
        let mut exprs_interned = 0u64;
        for rep in 0..reps {
            let q = big_join_query(rep % 3);
            let config = OptimizerConfig::default()
                .with_workers(workers)
                .with_cluster(env.cluster.clone());
            let (_plan, stats) = env.optimize_only(&q, config).expect("optimizes");
            optimize_ms += stats.optimize_time.as_secs_f64() * 1e3;
            explore_ms += stats.explore_time.as_secs_f64() * 1e3;
            implement_ms += stats.implement_time.as_secs_f64() * 1e3;
            cost = stats.plan_cost;
            sel_hits += stats.search.sel_cache_hits;
            sel_misses += stats.search.sel_cache_misses;
            intern_hits += stats.search.intern_hits;
            exprs_interned += stats.search.exprs_interned;
        }
        let result = OptResult {
            workers,
            optimize_ms: optimize_ms / reps as f64,
            explore_ms: explore_ms / reps as f64,
            implement_ms: implement_ms / reps as f64,
            plan_cost: cost,
            sel_cache_hits: sel_hits,
            sel_cache_misses: sel_misses,
            intern_hits,
            exprs_interned,
        };
        println!(
            "{}",
            row(&[
                (&workers.to_string(), 8),
                (&format!("{:.1}", result.optimize_ms), 9),
                (&format!("{:.1}", result.explore_ms), 9),
                (&format!("{:.1}", result.implement_ms), 9),
                (&format!("{cost:.0}"), 12),
                (&sel_hits.to_string(), 9),
                (&sel_misses.to_string(), 9),
                (&format!("{:.1}", result.sel_hit_rate() * 100.0), 8),
                (&intern_hits.to_string(), 9),
                (&exprs_interned.to_string(), 9),
            ])
        );
        results.push(result);
    }
    // Determinism: caching must never change the chosen plan's cost.
    let base_cost = results[0].plan_cost;
    for r in &results[1..] {
        assert!(
            r.plan_cost == base_cost,
            "plan cost at {} workers diverged from the 1-worker baseline ({} vs {})",
            r.workers,
            r.plan_cost,
            base_cost
        );
    }
    // The 7-way join re-derives the same predicates across alternatives;
    // the memoized caches must absorb at least half of all probes.
    for r in &results {
        assert!(
            r.sel_hit_rate() >= 0.5,
            "selectivity/cardinality cache hit rate at {} workers is {:.1}% (< 50%)",
            r.workers,
            r.sel_hit_rate() * 100.0
        );
    }
    if smoke {
        println!(
            "\nsmoke gate passed: equal plan cost at 1 vs 4 workers, sel-cache hit rate >= 50%"
        );
        return;
    }
    let json = render_json(scale, reps, cpus, &results);
    std::fs::write("BENCH_optimize.json", &json).expect("write BENCH_optimize.json");
    println!("\nwrote BENCH_optimize.json");
}

/// Hand-rolled JSON (the build has no serde); schema in EXPERIMENTS.md.
fn render_json(scale: f64, reps: usize, cpus: usize, results: &[OptResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"optimize_bench\",\n");
    out.push_str("  \"query\": \"7-way join, 3 variants\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"repetitions\": {reps},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"workers\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"optimize_ms\": {:.3}, \"explore_ms\": {:.3}, \
             \"implement_ms\": {:.3}, \"plan_cost\": {:.3}, \"sel_cache_hits\": {}, \
             \"sel_cache_misses\": {}, \"sel_cache_hit_rate\": {:.3}, \
             \"intern_hits\": {}, \"exprs_interned\": {}}}{}\n",
            r.workers,
            r.optimize_ms,
            r.explore_ms,
            r.implement_ms,
            r.plan_cost,
            r.sel_cache_hits,
            r.sel_cache_misses,
            r.sel_hit_rate(),
            r.intern_hits,
            r.exprs_interned,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
