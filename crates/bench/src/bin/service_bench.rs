//! Serving-layer benchmark: plan-cache economics and admission behavior
//! of `orca-service` over the TPC-DS-style suite.
//!
//! Three phases:
//!
//! 1. **Cache economics** (single session, DXL round trip per request):
//!    cold-optimize every corpus query, then serve many repeat rounds and
//!    compare cold latency vs cache-hit latency. The cached plan's DXL is
//!    also diffed byte-for-byte against an independent fresh optimization
//!    — determinism is what makes plan caching sound.
//! 2. **Concurrency sweep** (1/4/16 sessions): each session thread
//!    replays the corpus for several rounds against one shared service;
//!    reports throughput (QPS), cache hit rate and p99 request latency.
//! 3. **Work-sharing sweep** (1 and 16 sessions, execute-after-optimize
//!    on the serial columnar engine): the same repeated corpus with a
//!    database attached, measuring in-flight request coalescing, shared
//!    scan-fragment reuse across sessions, and the memory-grant broker's
//!    admitted/queued/degraded-grant counters.
//! 4. **Network front-end** (§3's socket deployment): the same warm
//!    workload through a real `ServiceServer` TCP round trip — DXL in,
//!    streamed row frames out — gated on byte-identical rows vs the
//!    in-process path, at least one genuinely streamed response, a
//!    served early-close (client cancel), and a TCP p99 within 5x the
//!    in-process p99 of the identical workload.
//!
//! Usage: `service_bench [scale] [rounds] [--smoke]`.
//!
//! `--smoke` (CI) runs a reduced sweep, writes no JSON, and asserts the
//! serving-layer gates: a hit rate of at least 90% on the repeated
//! workload, zero degraded plans under no contention, byte-identical
//! cached DXL, a cache speed-up of at least 10x, and — on the sharing
//! sweep — coalesced requests and reused fragments both observed at 16
//! sessions with QPS no worse than 0.8x the single-session run, every
//! execution admitted through the memory-grant broker, and zero queued
//! or degraded grants under the generous default budget. The full run
//! writes `BENCH_service.json` (schema in EXPERIMENTS.md).

use orca::engine::OptimizerConfig;
use orca::Optimizer;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_dxl::{plan_to_dxl, query_to_dxl, DxlPlan, DxlQuery};
use orca_expr::props::DistSpec;
use orca_service::{
    ExecuteConfig, PlanSource, Service, ServiceClient, ServiceConfig, ServiceServer, ServiceStats,
};
use orca_tpcds::suite;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// How many suite queries feed the corpus (enough shapes to exercise the
/// sharded cache, few enough that the sweep finishes in seconds).
const CORPUS_CAP: usize = 12;

fn service_config(env: &BenchEnv) -> ServiceConfig {
    ServiceConfig {
        optimizer: OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(env.cluster.clone()),
        // Enough slots that the 16-session sweep queues rather than sheds.
        max_concurrent: 4,
        queue_depth: 64,
        ..ServiceConfig::default()
    }
}

/// Compile the suite into DXL query documents, keeping only queries the
/// optimizer handles (the suite deliberately includes unsupported shapes
/// for the Figure 15 matrix).
fn build_corpus(env: &BenchEnv) -> Vec<DxlQuery> {
    let mut corpus = Vec::new();
    for q in suite() {
        if corpus.len() >= CORPUS_CAP {
            break;
        }
        let Ok((bound, registry)) = env.compile(&q) else {
            continue;
        };
        let query = DxlQuery {
            expr: bound.expr,
            output_cols: bound.output_cols,
            order: bound.order,
            dist: DistSpec::Singleton,
            columns: registry.snapshot(),
        };
        // Probe once: drop queries the Memo search rejects.
        let probe = Optimizer::new(
            env.provider.clone(),
            OptimizerConfig::default().with_cluster(env.cluster.clone()),
        );
        if probe.optimize_query(&query).is_ok() {
            corpus.push(query);
        }
    }
    corpus
}

struct SweepResult {
    sessions: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    p99_ms: f64,
    hit_rate: f64,
    degraded: u64,
    rejected: u64,
}

/// Phase 2: `sessions` threads replay the corpus `rounds` times against a
/// fresh service.
fn run_sweep(
    env: &BenchEnv,
    corpus: &Arc<Vec<DxlQuery>>,
    sessions: usize,
    rounds: usize,
) -> SweepResult {
    let svc = Arc::new(Service::new(env.provider.clone(), service_config(env)));
    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..sessions {
            let svc = svc.clone();
            let corpus = corpus.clone();
            handles.push(scope.spawn(move || {
                let session = svc.open_session();
                let mut lat = Vec::with_capacity(rounds * corpus.len());
                for _ in 0..rounds {
                    for q in corpus.iter() {
                        let t0 = Instant::now();
                        let ticket = svc.submit_query(session, q, None).expect("submit");
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert!(matches!(
                            ticket.response.source,
                            PlanSource::Fresh | PlanSource::Cache | PlanSource::Coalesced
                        ));
                    }
                }
                lat
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let requests = latencies_ms.len();
    let p99_ms = latencies_ms[((requests - 1) as f64 * 0.99).round() as usize];
    let stats = svc.stats();
    SweepResult {
        sessions,
        requests,
        wall_ms,
        qps: requests as f64 / (wall_ms / 1e3),
        p99_ms,
        hit_rate: stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64,
        degraded: stats.degraded,
        rejected: stats.rejected,
    }
}

struct ShareResult {
    sessions: usize,
    requests: usize,
    wall_ms: f64,
    qps: f64,
    coalesced: u64,
    fragments_reused: u64,
    fragment_coop_attached: u64,
    fragment_bytes: u64,
    fragment_entries: u64,
    plan_cache_bytes: u64,
    plan_cache_entries: u64,
    mem_admitted: u64,
    mem_queued: u64,
    mem_degraded_grants: u64,
    mem_peak_bytes: u64,
}

/// Phase 3: the sweep again, but with a database attached and the serial
/// columnar engine executing every plan, so requests contend on real scan
/// work — the shape in-flight coalescing and the shared fragment cache
/// exist for. A barrier lines the sessions up so the cold corpus pass
/// actually overlaps.
fn run_share_sweep(
    env: &BenchEnv,
    corpus: &Arc<Vec<DxlQuery>>,
    sessions: usize,
    rounds: usize,
) -> ShareResult {
    let mut cfg = service_config(env);
    cfg.execute = Some(ExecuteConfig {
        parallel: false,
        columnar: true,
        ..ExecuteConfig::default()
    });
    let svc = Arc::new(Service::new(env.provider.clone(), cfg));
    svc.attach_database(Arc::new(env.db.clone()));
    let barrier = Arc::new(Barrier::new(sessions));
    let started = Instant::now();
    let requests: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..sessions {
            let svc = svc.clone();
            let corpus = corpus.clone();
            let barrier = barrier.clone();
            handles.push(scope.spawn(move || {
                let session = svc.open_session();
                barrier.wait();
                let mut n = 0;
                for _ in 0..rounds {
                    for q in corpus.iter() {
                        let ticket = svc.submit_query(session, q, None).expect("submit");
                        assert!(
                            ticket.response.execution.is_some(),
                            "every sharing-sweep response must carry an execution"
                        );
                        n += 1;
                    }
                }
                n
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .sum()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = svc.stats();
    ShareResult {
        sessions,
        requests,
        wall_ms,
        qps: requests as f64 / (wall_ms / 1e3),
        coalesced: stats.coalesced,
        fragments_reused: stats.fragments_reused,
        fragment_coop_attached: stats.fragment_coop_attached,
        fragment_bytes: stats.fragment_bytes,
        fragment_entries: stats.fragment_entries,
        plan_cache_bytes: stats.cache_bytes,
        plan_cache_entries: stats.cache_entries,
        mem_admitted: stats.mem_admitted,
        mem_queued: stats.mem_queued,
        mem_degraded_grants: stats.mem_degraded_grants,
        mem_peak_bytes: stats.mem_peak_bytes,
    }
}

struct NetPhase {
    requests: usize,
    p99_inproc_ms: f64,
    p99_tcp_ms: f64,
    streamed: u64,
    early_closed: u64,
    frames_tx: u64,
    bytes_tx: u64,
}

fn p99(latencies_ms: &mut [f64]) -> f64 {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    latencies_ms[((latencies_ms.len() - 1) as f64 * 0.99).round() as usize]
}

/// Phase 4: the DXL round trip again, but through a real TCP socket —
/// `ServiceServer` in front of the same execute-enabled service, with
/// row batches streamed back as frames. The in-process reference runs
/// the *identical* warm workload on the same service first, so the p99
/// comparison isolates the wire, not the work.
fn run_net_phase(env: &BenchEnv, corpus: &Arc<Vec<DxlQuery>>, rounds: usize) -> NetPhase {
    let mut cfg = service_config(env);
    cfg.execute = Some(ExecuteConfig {
        parallel: false,
        columnar: true,
        batch_rows: 16,
        ..ExecuteConfig::default()
    });
    let svc = Arc::new(Service::new(env.provider.clone(), cfg));
    svc.attach_database(Arc::new(env.db.clone()));
    let dxl_texts: Vec<String> = corpus.iter().map(query_to_dxl).collect();

    // Cold pass warms the plan cache and pins the reference row sets.
    let session = svc.open_session();
    let inproc_rows: Vec<_> = dxl_texts
        .iter()
        .map(|dxl| {
            let t = svc.submit(session, dxl).expect("in-process cold");
            t.response.execution.expect("executed").rows
        })
        .collect();
    let mut inproc_lat: Vec<f64> = Vec::new();
    for _ in 0..rounds {
        for dxl in &dxl_texts {
            let t0 = Instant::now();
            svc.submit(session, dxl).expect("in-process warm");
            inproc_lat.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }

    let mut server = ServiceServer::start(Arc::clone(&svc), "127.0.0.1:0").expect("tcp server");
    let mut client = ServiceClient::connect(server.addr()).expect("tcp client");
    let mut tcp_lat: Vec<f64> = Vec::new();
    for _ in 0..rounds {
        for (i, dxl) in dxl_texts.iter().enumerate() {
            let t0 = Instant::now();
            let resp = client.submit(dxl, None).expect("tcp submit");
            tcp_lat.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                resp.rows, inproc_rows[i],
                "TCP response diverged from the in-process rows"
            );
            assert_eq!(resp.plan.source, PlanSource::Cache);
        }
    }
    // Early-close exercise: cancel before reading — the server must
    // tear the cursor down and still answer the receipt.
    let cancelled = client
        .submit_limit(&dxl_texts[0], None, Some(0))
        .expect("tcp cancel");
    assert!(
        cancelled.done.early,
        "immediate cancel was not early-closed"
    );
    server.shutdown();

    let stats: ServiceStats = svc.stats();
    NetPhase {
        requests: tcp_lat.len(),
        p99_inproc_ms: p99(&mut inproc_lat),
        p99_tcp_ms: p99(&mut tcp_lat),
        streamed: stats.net_streamed,
        early_closed: stats.net_early_closed,
        frames_tx: stats.net_frames_tx,
        bytes_tx: stats.net_bytes_tx,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.01 } else { 0.05 });
    let rounds: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 10 } else { 20 })
        .max(1);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("serving-layer bench (scale {scale}, {rounds} rounds/session)");
    println!("host CPUs available: {cpus}");
    println!();
    let env = BenchEnv::new(scale, 16);
    let corpus = Arc::new(build_corpus(&env));
    assert!(
        corpus.len() >= 4,
        "corpus too small: only {} optimizable suite queries",
        corpus.len()
    );
    println!("corpus: {} suite queries", corpus.len());

    // ------------------------------------------------------------------
    // Phase 1: cache economics over the DXL round trip.
    // ------------------------------------------------------------------
    let svc = Service::new(env.provider.clone(), service_config(&env));
    let session = svc.open_session();
    let dxl_texts: Vec<String> = corpus.iter().map(query_to_dxl).collect();
    let mut cold_ms = 0.0;
    let mut cached_dxl: Vec<String> = Vec::new();
    for dxl in &dxl_texts {
        let t0 = Instant::now();
        let ticket = svc.submit(session, dxl).expect("cold submit");
        cold_ms += t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(ticket.response.source, PlanSource::Fresh);
        cached_dxl.push(ticket.response.plan_dxl);
    }
    let cold_avg_ms = cold_ms / corpus.len() as f64;
    let hit_rounds = rounds.max(20);
    let mut hit_ms = 0.0;
    for _ in 0..hit_rounds {
        for dxl in &dxl_texts {
            let t0 = Instant::now();
            let ticket = svc.submit(session, dxl).expect("hot submit");
            hit_ms += t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(ticket.response.source, PlanSource::Cache);
        }
    }
    let hit_avg_ms = hit_ms / (hit_rounds * corpus.len()) as f64;
    let speedup = cold_avg_ms / hit_avg_ms;
    let phase1 = svc.stats();
    let hit_rate = phase1.cache_hits as f64 / (phase1.cache_hits + phase1.cache_misses) as f64;
    println!();
    println!(
        "cache economics: cold {:.2} ms/query, hit {:.4} ms/query, speedup {:.0}x, hit rate {:.1}%",
        cold_avg_ms,
        hit_avg_ms,
        speedup,
        hit_rate * 100.0
    );

    // Determinism gate: the cached DXL must be byte-identical to an
    // independent fresh optimization of the same query.
    let fresh_opt = Optimizer::new(
        env.provider.clone(),
        OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(env.cluster.clone()),
    );
    for (q, cached) in corpus.iter().zip(&cached_dxl).take(4) {
        let (plan, stats) = fresh_opt.optimize_query(q).expect("fresh re-optimization");
        let fresh = plan_to_dxl(&DxlPlan {
            plan,
            cost: stats.plan_cost,
        });
        assert_eq!(
            &fresh, cached,
            "cached plan DXL diverged from a fresh optimization"
        );
    }
    println!("determinism: cached DXL byte-identical to fresh optimization (4 queries)");

    // Serving-layer gates (always on; `--smoke` is just the reduced run).
    assert!(
        hit_rate >= 0.90,
        "repeated-workload cache hit rate {:.1}% < 90%",
        hit_rate * 100.0
    );
    assert_eq!(
        phase1.degraded, 0,
        "degraded plans under zero contention: {}",
        phase1.degraded
    );
    assert!(
        speedup >= 10.0,
        "cache speedup {speedup:.1}x < 10x (cold {cold_avg_ms:.2} ms vs hit {hit_avg_ms:.4} ms)"
    );

    // ------------------------------------------------------------------
    // Phase 2: concurrency sweep.
    // ------------------------------------------------------------------
    println!();
    println!(
        "{}",
        row(&[
            ("sessions", 9),
            ("requests", 9),
            ("wall_ms", 9),
            ("qps", 9),
            ("p99_ms", 8),
            ("hit%", 6),
            ("degraded", 9),
            ("rejected", 9),
        ])
    );
    let levels: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let sweep_rounds = if smoke { 5 } else { rounds };
    let mut sweeps = Vec::new();
    for &sessions in levels {
        let r = run_sweep(&env, &corpus, sessions, sweep_rounds);
        println!(
            "{}",
            row(&[
                (&r.sessions.to_string(), 9),
                (&r.requests.to_string(), 9),
                (&format!("{:.1}", r.wall_ms), 9),
                (&format!("{:.0}", r.qps), 9),
                (&format!("{:.2}", r.p99_ms), 8),
                (&format!("{:.1}", r.hit_rate * 100.0), 6),
                (&r.degraded.to_string(), 9),
                (&r.rejected.to_string(), 9),
            ])
        );
        sweeps.push(r);
    }
    // The queue is deep enough for every level: nothing may be shed.
    for r in &sweeps {
        assert_eq!(r.rejected, 0, "{} sessions shed load", r.sessions);
        assert_eq!(r.degraded, 0, "{} sessions degraded plans", r.sessions);
    }

    // ------------------------------------------------------------------
    // Phase 3: cross-query work sharing under execution.
    // ------------------------------------------------------------------
    println!();
    println!(
        "{}",
        row(&[
            ("sessions", 9),
            ("requests", 9),
            ("wall_ms", 9),
            ("qps", 9),
            ("coalesced", 10),
            ("frag_hit", 9),
            ("coop", 6),
            ("frag_KiB", 9),
            ("frags", 6),
        ])
    );
    let share_rounds = if smoke { 2 } else { 4 };
    let shares: Vec<ShareResult> = [1usize, 16]
        .iter()
        .map(|&sessions| {
            let r = run_share_sweep(&env, &corpus, sessions, share_rounds);
            println!(
                "{}",
                row(&[
                    (&r.sessions.to_string(), 9),
                    (&r.requests.to_string(), 9),
                    (&format!("{:.1}", r.wall_ms), 9),
                    (&format!("{:.0}", r.qps), 9),
                    (&r.coalesced.to_string(), 10),
                    (&r.fragments_reused.to_string(), 9),
                    (&r.fragment_coop_attached.to_string(), 6),
                    (&(r.fragment_bytes >> 10).to_string(), 9),
                    (&r.fragment_entries.to_string(), 6),
                ])
            );
            r
        })
        .collect();
    let (s1, s16) = (&shares[0], &shares[1]);
    println!(
        "occupancy at 16 sessions: plan cache {} plans / {} KiB, \
         fragment cache {} fragments / {} KiB",
        s16.plan_cache_entries,
        s16.plan_cache_bytes >> 10,
        s16.fragment_entries,
        s16.fragment_bytes >> 10
    );
    println!(
        "memory grants at 16 sessions: {} admitted, {} queued, {} degraded, \
         peak {} KiB charged",
        s16.mem_admitted,
        s16.mem_queued,
        s16.mem_degraded_grants,
        s16.mem_peak_bytes >> 10
    );

    // Sharing gates (always on): concurrent identical requests must
    // actually coalesce, scans must actually be shared, and sharing must
    // not sink throughput relative to a single session doing the same
    // per-session work.
    assert!(
        s16.coalesced > 0,
        "no requests coalesced across 16 sessions replaying one corpus"
    );
    assert!(
        s16.fragments_reused > 0 && s1.fragments_reused > 0,
        "no scan fragments reused on a repeated corpus"
    );
    assert!(
        s16.qps >= 0.8 * s1.qps,
        "16-session sharing QPS {:.0} < 0.8x single-session {:.0}",
        s16.qps,
        s1.qps
    );
    // Memory-grant gates: every execution passes through the broker, and
    // the generous default budget (0 = unbounded) means nothing queues
    // for memory or runs on a degraded grant.
    assert!(
        s16.mem_admitted > 0,
        "no executions were admitted through the memory-grant broker"
    );
    for r in &shares {
        assert_eq!(
            r.mem_queued, 0,
            "{} sessions queued for memory under an unbounded budget",
            r.sessions
        );
        assert_eq!(
            r.mem_degraded_grants, 0,
            "{} sessions got degraded grants under an unbounded budget",
            r.sessions
        );
    }

    // ------------------------------------------------------------------
    // Phase 4: the network front-end over a real TCP socket.
    // ------------------------------------------------------------------
    println!();
    let net = run_net_phase(&env, &corpus, share_rounds);
    println!(
        "network front-end: {} requests over TCP, p99 {:.2} ms vs {:.2} ms in-process \
         ({:.1}x), {} streamed, {} early-closed, {} frames / {} KiB sent",
        net.requests,
        net.p99_tcp_ms,
        net.p99_inproc_ms,
        net.p99_tcp_ms / net.p99_inproc_ms,
        net.streamed,
        net.early_closed,
        net.frames_tx,
        net.bytes_tx >> 10
    );
    // Network gates (always on): rows already asserted byte-identical
    // inside the phase; here, streaming must be real and the socket hop
    // must not dominate the served latency.
    assert!(
        net.streamed >= 1,
        "no TCP response streamed its first batch before the producer finished"
    );
    assert_eq!(
        net.early_closed, 1,
        "the client cancel was not early-closed"
    );
    assert!(
        net.p99_tcp_ms <= 5.0 * net.p99_inproc_ms,
        "TCP p99 {:.2} ms > 5x in-process p99 {:.2} ms",
        net.p99_tcp_ms,
        net.p99_inproc_ms
    );

    if smoke {
        println!(
            "\nsmoke gate passed: hit rate {:.1}% >= 90%, zero degraded, \
             byte-identical cached DXL, cache speedup {:.0}x >= 10x, \
             sharing at 16 sessions: {} coalesced, {} fragments reused, \
             qps {:.0} >= 0.8x single-session {:.0}, \
             {} grants admitted with zero queued/degraded, \
             TCP p99 {:.2} ms <= 5x in-process with {} streamed responses",
            hit_rate * 100.0,
            speedup,
            s16.coalesced,
            s16.fragments_reused,
            s16.qps,
            s1.qps,
            s16.mem_admitted,
            net.p99_tcp_ms,
            net.streamed
        );
        return;
    }
    let json = render_json(
        scale,
        rounds,
        cpus,
        corpus.len(),
        cold_avg_ms,
        hit_avg_ms,
        speedup,
        hit_rate,
        &sweeps,
        &shares,
        &net,
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}

/// Hand-rolled JSON (the build has no serde); schema in EXPERIMENTS.md.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: f64,
    rounds: usize,
    cpus: usize,
    corpus: usize,
    cold_avg_ms: f64,
    hit_avg_ms: f64,
    speedup: f64,
    hit_rate: f64,
    sweeps: &[SweepResult],
    shares: &[ShareResult],
    net: &NetPhase,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service_bench\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str(&format!("  \"corpus_queries\": {corpus},\n"));
    out.push_str(&format!("  \"cold_ms_avg\": {cold_avg_ms:.4},\n"));
    out.push_str(&format!("  \"cache_hit_ms_avg\": {hit_avg_ms:.5},\n"));
    out.push_str(&format!("  \"cache_speedup\": {speedup:.2},\n"));
    out.push_str(&format!("  \"repeat_hit_rate\": {hit_rate:.4},\n"));
    out.push_str("  \"sessions\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"requests\": {}, \"wall_ms\": {:.2}, \"qps\": {:.1}, \
             \"p99_ms\": {:.3}, \"hit_rate\": {:.4}, \"degraded\": {}, \"rejected\": {}}}{}\n",
            r.sessions,
            r.requests,
            r.wall_ms,
            r.qps,
            r.p99_ms,
            r.hit_rate,
            r.degraded,
            r.rejected,
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sharing\": [\n");
    for (i, r) in shares.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"requests\": {}, \"wall_ms\": {:.2}, \"qps\": {:.1}, \
             \"coalesced\": {}, \"fragments_reused\": {}, \"fragment_coop_attached\": {}, \
             \"fragment_bytes\": {}, \"fragment_entries\": {}, \"plan_cache_bytes\": {}, \
             \"plan_cache_entries\": {}, \"mem_admitted\": {}, \"mem_queued\": {}, \
             \"mem_degraded_grants\": {}, \"mem_peak_bytes\": {}}}{}\n",
            r.sessions,
            r.requests,
            r.wall_ms,
            r.qps,
            r.coalesced,
            r.fragments_reused,
            r.fragment_coop_attached,
            r.fragment_bytes,
            r.fragment_entries,
            r.plan_cache_bytes,
            r.plan_cache_entries,
            r.mem_admitted,
            r.mem_queued,
            r.mem_degraded_grants,
            r.mem_peak_bytes,
            if i + 1 < shares.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"net\": {{\"requests\": {}, \"p99_inproc_ms\": {:.4}, \"p99_tcp_ms\": {:.4}, \
         \"streamed\": {}, \"early_closed\": {}, \"frames_tx\": {}, \"bytes_tx\": {}, \
         \"rows_identical\": true}}\n",
        net.requests,
        net.p99_inproc_ms,
        net.p99_tcp_ms,
        net.streamed,
        net.early_closed,
        net.frames_tx,
        net.bytes_tx
    ));
    out.push_str("}\n");
    out
}
