//! Worker-process half of the `exec_bench --net loopback` pass: a real
//! second process that joins a distributed gang over the loopback TCP
//! interconnect, so the bench exercises genuine process boundaries (no
//! shared memory, no shared clocks) rather than threads pretending.
//!
//! The coordinator (`exec_bench`) spawns one `net_worker` per remote
//! peer and drives it over a line-oriented stdin/stdout control plane:
//!
//! ```text
//! worker → coordinator:  READY <addr>            (after binding)
//! coordinator → worker:  TOPO <addr0> <addr1>…   (full peer list, rank order)
//! coordinator → worker:  JOB <id> <cols,…> <dxl_len>\n<dxl bytes>
//! worker → coordinator:  DONE <id> | ERR <id> <message>
//! coordinator → worker:  EXIT
//! ```
//!
//! The worker rebuilds the *same* deterministic catalog and database
//! from the scale factor (`BenchEnv` is a pure function of its inputs),
//! parses each shipped DXL plan against it, and runs its ranks' share
//! of the gang. Result rows flow to the coordinator through the result
//! motion, so `DONE` carries no data — byte equality is checked on the
//! coordinator's side.
//!
//! Usage (spawned, not for humans):
//! `net_worker <scale> <batch_size> <rank> <workers> <columnar 0|1>`

use orca_bench::BenchEnv;
use orca_common::ColId;
use orca_dxl::parse_plan_doc;
use orca_executor::{ClusterTopology, NetConfig, NetNode, ParallelConfig, ParallelEngine};
use std::io::{BufRead, Read, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args[0].parse().expect("scale");
    let batch_size: usize = args[1].parse().expect("batch_size");
    let rank: usize = args[2].parse().expect("rank");
    let workers: usize = args[3].parse().expect("workers");
    let columnar: bool = args[4] == "1";

    let mut env = BenchEnv::new(scale, 8);
    env.db.cluster.batch_size = batch_size.max(1);
    env.cluster.batch_size = batch_size.max(1);
    let node = NetNode::bind("127.0.0.1:0", rank, NetConfig::default()).expect("bind");

    let stdin = std::io::stdin();
    let mut stdin = stdin.lock();
    let stdout = std::io::stdout();
    let mut stdout = stdout.lock();
    writeln!(stdout, "READY {}", node.addr()).expect("stdout");
    stdout.flush().expect("flush");

    let mut topo: Option<ClusterTopology> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if stdin.read_line(&mut line).expect("stdin") == 0 {
            return; // coordinator went away
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("TOPO") => {
                let peers: Vec<String> = parts.map(str::to_string).collect();
                topo = Some(ClusterTopology::round_robin(
                    peers,
                    env.db.cluster.num_segments,
                ));
            }
            Some("JOB") => {
                let query_id: u64 = parts.next().expect("query id").parse().expect("id");
                let cols: Vec<ColId> = parts
                    .next()
                    .expect("cols")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| ColId(s.parse().expect("col")))
                    .collect();
                let dxl_len: usize = parts.next().expect("dxl len").parse().expect("len");
                let mut dxl = vec![0u8; dxl_len];
                stdin.read_exact(&mut dxl).expect("dxl body");
                let dxl = String::from_utf8(dxl).expect("dxl utf8");
                let topo = topo.as_ref().expect("TOPO before JOB");
                let outcome = parse_plan_doc(&dxl, env.provider.as_ref()).and_then(|doc| {
                    let engine = ParallelEngine::with_config(
                        &env.db,
                        ParallelConfig {
                            workers,
                            batch_rows: batch_size,
                            columnar,
                            ..ParallelConfig::default()
                        },
                    );
                    engine.run_distributed(&doc.plan, &cols, &node, topo, query_id)
                });
                match outcome {
                    Ok(_) => writeln!(stdout, "DONE {query_id}").expect("stdout"),
                    Err(e) => writeln!(stdout, "ERR {query_id} {}", e.message().replace('\n', " "))
                        .expect("stdout"),
                }
                stdout.flush().expect("flush");
            }
            Some("EXIT") | None => return,
            Some(other) => panic!("unknown control verb {other:?}"),
        }
    }
}
