//! Executor benchmark: the serial engine vs the parallel slice scheduler
//! + batched interconnect (`ParallelEngine`) over the TPC-DS-style suite.
//!
//! Every suite plan is executed once on the serial engine to establish a
//! baseline row checksum, then on the parallel engine at 1/2/4/8 compute
//! workers. The hard gate — enforced on every run, not just `--smoke` —
//! is byte-identical results: the checksum at every worker count must
//! match the serial checksum for every plan.
//!
//! Usage: `exec_bench [scale] [iters] [--smoke]`.
//!
//! `--smoke` (CI) runs a reduced corpus, writes no JSON, and asserts the
//! gates: identical checksums everywhere, and (only when the host has
//! more than one CPU) parallel throughput at the best worker count no
//! worse than 0.8x serial. The full run writes `BENCH_exec.json`
//! (schema in EXPERIMENTS.md).

use orca::engine::OptimizerConfig;
use orca::Optimizer;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_common::hash::fnv_hash;
use orca_common::ColId;
use orca_executor::{ExecEngine, ParallelConfig, ParallelEngine, Row};
use orca_expr::physical::PhysicalPlan;
use orca_tpcds::suite;
use std::time::Instant;

const WORKER_LEVELS: &[usize] = &[1, 2, 4, 8];

struct BenchQuery {
    id: String,
    plan: PhysicalPlan,
    output_cols: Vec<ColId>,
}

/// Deterministic digest of a result set; order-sensitive, so it captures
/// the byte-identity contract, not just multiset equality.
fn checksum(rows: &[Row]) -> u64 {
    fnv_hash(&format!("{rows:?}"))
}

/// Compile + optimize the suite, keeping plans the serial engine can run.
fn build_corpus(env: &BenchEnv, cap: usize) -> Vec<BenchQuery> {
    let optimizer = Optimizer::new(
        env.provider.clone(),
        OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(env.cluster.clone()),
    );
    let mut corpus = Vec::new();
    for q in suite() {
        if corpus.len() >= cap {
            break;
        }
        let Ok((bound, registry)) = env.compile(&q) else {
            continue;
        };
        let reqs = orca::engine::QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };
        let Ok((plan, _stats)) = optimizer.optimize(&bound.expr, &registry, &reqs) else {
            continue;
        };
        if ExecEngine::new(&env.db)
            .run(&plan, &bound.output_cols)
            .is_ok()
        {
            corpus.push(BenchQuery {
                id: q.id.clone(),
                plan,
                output_cols: bound.output_cols,
            });
        }
    }
    corpus
}

struct SerialBaseline {
    wall_ms: f64,
    rows: usize,
    checksums: Vec<u64>,
}

fn run_serial(env: &BenchEnv, corpus: &[BenchQuery], iters: usize) -> SerialBaseline {
    let engine = ExecEngine::new(&env.db);
    let mut checksums = Vec::with_capacity(corpus.len());
    let mut rows = 0;
    let mut wall_ms = f64::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut iter_checksums = Vec::with_capacity(corpus.len());
        rows = 0;
        for q in corpus {
            let res = engine.run(&q.plan, &q.output_cols).expect("serial exec");
            rows += res.rows.len();
            iter_checksums.push(checksum(&res.rows));
        }
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        checksums = iter_checksums;
    }
    SerialBaseline {
        wall_ms,
        rows,
        checksums,
    }
}

struct ParallelRun {
    workers: usize,
    wall_ms: f64,
    speedup: f64,
    motion_rows: u64,
    motion_bytes: u64,
    peak_queue_depth: usize,
    slices: usize,
    serial_fallbacks: usize,
}

fn run_parallel(
    env: &BenchEnv,
    corpus: &[BenchQuery],
    baseline: &SerialBaseline,
    workers: usize,
    iters: usize,
) -> ParallelRun {
    let engine = ParallelEngine::with_config(
        &env.db,
        ParallelConfig {
            workers,
            ..ParallelConfig::default()
        },
    );
    let mut wall_ms = f64::MAX;
    let mut motion_rows = 0;
    let mut motion_bytes = 0;
    let mut peak_queue_depth = 0;
    let mut slices = 0;
    let mut serial_fallbacks = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        motion_rows = 0;
        motion_bytes = 0;
        peak_queue_depth = 0;
        slices = 0;
        serial_fallbacks = 0;
        for (i, q) in corpus.iter().enumerate() {
            let res = engine.run(&q.plan, &q.output_cols).expect("parallel exec");
            let sum = checksum(&res.rows);
            assert_eq!(
                sum, baseline.checksums[i],
                "query {} at {workers} workers diverged from the serial engine",
                q.id
            );
            motion_rows += res.parallel.motion_rows();
            motion_bytes += res.parallel.motion_bytes();
            peak_queue_depth = peak_queue_depth.max(res.parallel.peak_queue_depth());
            slices += res.parallel.num_slices;
            serial_fallbacks += usize::from(res.parallel.serial_fallback);
        }
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    ParallelRun {
        workers,
        wall_ms,
        speedup: baseline.wall_ms / wall_ms,
        motion_rows,
        motion_bytes,
        peak_queue_depth,
        slices,
        serial_fallbacks,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    let iters: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("executor bench: serial vs parallel slices (scale {scale}, {iters} iters)");
    println!("host CPUs available: {cpus}");
    println!();

    let env = BenchEnv::new(scale, 8);
    let corpus = build_corpus(&env, if smoke { 8 } else { 16 });
    assert!(
        corpus.len() >= 4,
        "corpus too small: only {} executable suite queries",
        corpus.len()
    );
    println!("corpus: {} suite queries, 8 segments", corpus.len());

    let baseline = run_serial(&env, &corpus, iters);
    println!(
        "serial: {:.1} ms for {} rows across the corpus",
        baseline.wall_ms, baseline.rows
    );
    println!();
    println!(
        "{}",
        row(&[
            ("workers", 8),
            ("wall_ms", 9),
            ("speedup", 8),
            ("mot_rows", 9),
            ("mot_bytes", 10),
            ("peak_q", 7),
            ("slices", 7),
            ("fallback", 9),
        ])
    );
    let mut runs = Vec::new();
    for &workers in WORKER_LEVELS {
        let r = run_parallel(&env, &corpus, &baseline, workers, iters);
        println!(
            "{}",
            row(&[
                (&r.workers.to_string(), 8),
                (&format!("{:.1}", r.wall_ms), 9),
                (&format!("{:.2}", r.speedup), 8),
                (&r.motion_rows.to_string(), 9),
                (&r.motion_bytes.to_string(), 10),
                (&r.peak_queue_depth.to_string(), 7),
                (&r.slices.to_string(), 7),
                (&r.serial_fallbacks.to_string(), 9),
            ])
        );
        runs.push(r);
    }
    println!();
    println!(
        "correctness: checksums byte-identical to serial at every worker count \
         ({} queries x {} levels)",
        corpus.len(),
        WORKER_LEVELS.len()
    );

    // Throughput gate: scheduling + interconnect overhead must not sink
    // the engine. Only meaningful with real parallel hardware; on a
    // single-CPU host the worker pool can't outrun the serial loop.
    if cpus > 1 {
        let best = runs.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        assert!(
            best >= 0.8,
            "best parallel speedup {best:.2}x < 0.8x serial on a {cpus}-CPU host"
        );
        println!("throughput gate: best speedup {best:.2}x >= 0.8x serial");
    } else {
        println!("throughput gate skipped: single-CPU host");
    }

    if smoke {
        println!("\nsmoke gate passed: identical results at workers 1/2/4/8");
        return;
    }
    let json = render_json(scale, iters, cpus, corpus.len(), &baseline, &runs);
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");
}

/// Hand-rolled JSON (the build has no serde); schema in EXPERIMENTS.md.
fn render_json(
    scale: f64,
    iters: usize,
    cpus: usize,
    queries: usize,
    baseline: &SerialBaseline,
    runs: &[ParallelRun],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"exec_bench\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"segments\": 8,\n");
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!(
        "  \"serial\": {{\"wall_ms\": {:.3}, \"rows\": {}}},\n",
        baseline.wall_ms, baseline.rows
    ));
    out.push_str("  \"parallel\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"speedup\": {:.3}, \
             \"motion_rows\": {}, \"motion_bytes\": {}, \"peak_queue_depth\": {}, \
             \"slices\": {}, \"serial_fallbacks\": {}, \"checksum_ok\": true}}{}\n",
            r.workers,
            r.wall_ms,
            r.speedup,
            r.motion_rows,
            r.motion_bytes,
            r.peak_queue_depth,
            r.slices,
            r.serial_fallbacks,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
