//! Executor benchmark: row vs columnar kernels, serial vs the parallel
//! slice scheduler + batched interconnect, over the TPC-DS-style suite.
//!
//! Every suite plan is executed once on the serial **row** engine to
//! establish a baseline row checksum, then on the serial **columnar**
//! engine and on the parallel engine (both kernels) at 1/2/4/8 compute
//! workers. The hard gate — enforced on every run, not just `--smoke` —
//! is byte-identical results: the checksum of every configuration must
//! match the row-serial checksum for every plan.
//!
//! Usage: `exec_bench [scale] [iters] [--smoke] [--batch-size N] [--work-mem N]`.
//!
//! `--work-mem N` sets the constrained working-memory setting (bytes,
//! default 4096) for the memory-governance sweep: the whole corpus is
//! re-run under that budget on every engine and kernel, operators must
//! spill (not fail), checksums must stay byte-identical to the
//! unconstrained row baseline, and the observed memory peak must respect
//! the query's grant. A streaming-cursor pass asserts at least one
//! corpus query delivers its first batch before the producer finishes.
//!
//! `--net loopback` adds the distributed pass: for 1/2/4 worker
//! *processes* (spawned `net_worker` binaries, plus this process as the
//! coordinator) every corpus plan is shipped as DXL and executed as a
//! multi-process gang over the loopback TCP interconnect. Gates:
//! coordinator rows byte-identical to the serial row baseline,
//! `sim_seconds` bit-equal to the same plan run in-process, zero
//! reconnects, zero serial fallbacks, and at least one remote motion
//! edge per run.
//!
//! `--smoke` (CI) runs a reduced corpus, writes no JSON, and asserts the
//! gates: identical checksums everywhere, columnar-serial throughput at
//! least 1.5x row-serial (vectorization plus zone-map chunk skipping
//! must actually pay for themselves, even on one CPU), zone maps
//! skipping at least one chunk across the corpus, and (only when the
//! host has more than one CPU) parallel throughput at the best worker
//! count no worse than 0.8x serial. The full run writes
//! `BENCH_exec.json` (schema in EXPERIMENTS.md), including the
//! per-operator profile of the columnar serial pass.

use orca::engine::OptimizerConfig;
use orca::Optimizer;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_common::hash::fnv_hash;
use orca_common::ColId;
use orca_dxl::{parse_plan_doc, plan_to_dxl, DxlPlan};
use orca_executor::{
    ClusterTopology, Cursor, CursorOptions, ExecEngine, FragmentCache, MemoryTracker, NetConfig,
    NetNode, ParallelConfig, ParallelEngine, Row,
};
use orca_expr::physical::PhysicalPlan;
use orca_tpcds::suite;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const WORKER_LEVELS: &[usize] = &[1, 2, 4, 8];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Row,
    Columnar,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Row => "row",
            Kernel::Columnar => "columnar",
        }
    }
}

struct BenchQuery {
    id: String,
    plan: PhysicalPlan,
    output_cols: Vec<ColId>,
}

/// Deterministic digest of a result set; order-sensitive, so it captures
/// the byte-identity contract, not just multiset equality.
fn checksum(rows: &[Row]) -> u64 {
    fnv_hash(&format!("{rows:?}"))
}

/// Compile + optimize the suite, keeping plans the serial engine can run.
fn build_corpus(env: &BenchEnv, cap: usize) -> Vec<BenchQuery> {
    let optimizer = Optimizer::new(
        env.provider.clone(),
        OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(env.cluster.clone()),
    );
    let mut corpus = Vec::new();
    for q in suite() {
        if corpus.len() >= cap {
            break;
        }
        let Ok((bound, registry)) = env.compile(&q) else {
            continue;
        };
        let reqs = orca::engine::QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };
        let Ok((plan, _stats)) = optimizer.optimize(&bound.expr, &registry, &reqs) else {
            continue;
        };
        if ExecEngine::new(&env.db)
            .run(&plan, &bound.output_cols)
            .is_ok()
        {
            corpus.push(BenchQuery {
                id: q.id.clone(),
                plan,
                output_cols: bound.output_cols,
            });
        }
    }
    corpus
}

/// Corpus-wide per-operator profile: rows, batches, exclusive ns.
type OpsProfile = BTreeMap<&'static str, (u64, u64, u64)>;

struct SerialRun {
    wall_ms: f64,
    rows: usize,
    checksums: Vec<u64>,
    ops: OpsProfile,
    /// Chunks dropped by zone maps / dictionary misses across the
    /// corpus (columnar kernel only; always 0 on the row kernel).
    chunks_skipped: u64,
    /// Conjuncts evaluated on dictionary codes instead of strings.
    dict_hits: u64,
    /// Bytes the scans materialized instead of `Arc`-sharing.
    scan_bytes_cloned: u64,
}

fn run_serial(env: &BenchEnv, corpus: &[BenchQuery], iters: usize, kernel: Kernel) -> SerialRun {
    let engine = ExecEngine::new(&env.db);
    let mut checksums = Vec::with_capacity(corpus.len());
    let mut rows = 0;
    let mut wall_ms = f64::MAX;
    let mut ops = OpsProfile::new();
    let mut chunks_skipped = 0;
    let mut dict_hits = 0;
    let mut scan_bytes_cloned = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut iter_checksums = Vec::with_capacity(corpus.len());
        rows = 0;
        ops.clear();
        chunks_skipped = 0;
        dict_hits = 0;
        scan_bytes_cloned = 0;
        for q in corpus {
            let res = match kernel {
                Kernel::Row => engine.run(&q.plan, &q.output_cols),
                Kernel::Columnar => engine.run_columnar(&q.plan, &q.output_cols),
            }
            .expect("serial exec");
            rows += res.rows.len();
            iter_checksums.push(checksum(&res.rows));
            chunks_skipped += res.stats.chunks_skipped;
            dict_hits += res.stats.dict_hits;
            scan_bytes_cloned += res.stats.scan_bytes_cloned;
            for (name, p) in &res.stats.ops {
                let e = ops.entry(name).or_default();
                e.0 += p.rows;
                e.1 += p.batches;
                e.2 += p.ns;
            }
        }
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        checksums = iter_checksums;
    }
    SerialRun {
        wall_ms,
        rows,
        checksums,
        ops,
        chunks_skipped,
        dict_hits,
        scan_bytes_cloned,
    }
}

/// One sweep of the corpus on the serial columnar engine with a shared
/// fragment cache attached; returns (wall ms, per-query checksums).
fn run_fragment_pass(
    env: &BenchEnv,
    corpus: &[BenchQuery],
    fragments: &Arc<FragmentCache>,
) -> (f64, Vec<u64>) {
    let engine = ExecEngine::new(&env.db).with_fragments(Arc::clone(fragments));
    let t0 = Instant::now();
    let checksums = corpus
        .iter()
        .map(|q| {
            let res = engine
                .run_columnar(&q.plan, &q.output_cols)
                .expect("fragment-cached exec");
            checksum(&res.rows)
        })
        .collect();
    (t0.elapsed().as_secs_f64() * 1e3, checksums)
}

struct ParallelRun {
    workers: usize,
    kernel: Kernel,
    wall_ms: f64,
    speedup: f64,
    motion_rows: u64,
    motion_bytes: u64,
    peak_queue_depth: usize,
    slices: usize,
    serial_fallbacks: usize,
    batches_reused: u64,
}

fn run_parallel(
    env: &BenchEnv,
    corpus: &[BenchQuery],
    baseline: &SerialRun,
    workers: usize,
    kernel: Kernel,
    iters: usize,
    batch_rows: usize,
) -> ParallelRun {
    let engine = ParallelEngine::with_config(
        &env.db,
        ParallelConfig {
            workers,
            batch_rows,
            columnar: kernel == Kernel::Columnar,
            ..ParallelConfig::default()
        },
    );
    let mut wall_ms = f64::MAX;
    let mut motion_rows = 0;
    let mut motion_bytes = 0;
    let mut peak_queue_depth = 0;
    let mut slices = 0;
    let mut serial_fallbacks = 0;
    let mut batches_reused = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        motion_rows = 0;
        motion_bytes = 0;
        peak_queue_depth = 0;
        slices = 0;
        serial_fallbacks = 0;
        batches_reused = 0;
        for (i, q) in corpus.iter().enumerate() {
            let res = engine.run(&q.plan, &q.output_cols).expect("parallel exec");
            let sum = checksum(&res.rows);
            assert_eq!(
                sum,
                baseline.checksums[i],
                "query {} at {workers} workers ({} kernel) diverged from the serial engine",
                q.id,
                kernel.name()
            );
            motion_rows += res.parallel.motion_rows();
            motion_bytes += res.parallel.motion_bytes();
            peak_queue_depth = peak_queue_depth.max(res.parallel.peak_queue_depth());
            slices += res.parallel.num_slices;
            serial_fallbacks += usize::from(res.parallel.serial_fallback);
            batches_reused += res.parallel.batches_reused;
        }
        wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    ParallelRun {
        workers,
        kernel,
        wall_ms,
        speedup: baseline.wall_ms / wall_ms,
        motion_rows,
        motion_bytes,
        peak_queue_depth,
        slices,
        serial_fallbacks,
        batches_reused,
    }
}

struct MemorySweep {
    work_mem: u64,
    /// Total bytes granted to each query (`work_mem` × segments).
    granted: u64,
    wall_ms: f64,
    spill_partitions: u64,
    spill_bytes_written: u64,
    spill_bytes_read: u64,
    peak_mem_bytes: u64,
}

/// Re-run the corpus with `work_mem` bytes of per-segment working memory
/// and a matching per-query grant: every engine and kernel must spill
/// instead of failing, reproduce the unconstrained row baseline byte for
/// byte, and keep its observed peak within the grant. Parallel runs must
/// also reproduce the *serial* spill counters exactly — spilling is
/// deterministic, not load-dependent.
fn run_memory_sweep(
    env: &mut BenchEnv,
    corpus: &[BenchQuery],
    baseline: &SerialRun,
    work_mem: u64,
) -> MemorySweep {
    let default_wm = env.db.cluster.work_mem_bytes;
    env.db.cluster.work_mem_bytes = work_mem;
    let segments = env.db.cluster.num_segments;
    let granted = work_mem * segments as u64;

    let mut sweep = MemorySweep {
        work_mem,
        granted,
        wall_ms: 0.0,
        spill_partitions: 0,
        spill_bytes_written: 0,
        spill_bytes_read: 0,
        peak_mem_bytes: 0,
    };
    let t0 = Instant::now();
    let mut serial_counters: Vec<(u64, u64, u64)> = Vec::with_capacity(corpus.len());
    for kernel in [Kernel::Row, Kernel::Columnar] {
        let tracker = Arc::new(MemoryTracker::granted(granted, segments, None));
        let engine = ExecEngine::new(&env.db).with_memory(Arc::clone(&tracker));
        for (i, q) in corpus.iter().enumerate() {
            let res = match kernel {
                Kernel::Row => engine.run(&q.plan, &q.output_cols),
                Kernel::Columnar => engine.run_columnar(&q.plan, &q.output_cols),
            }
            .expect("constrained exec must spill, not fail");
            assert_eq!(
                checksum(&res.rows),
                baseline.checksums[i],
                "query {} ({} kernel) diverged under work_mem={work_mem}",
                q.id,
                kernel.name()
            );
            assert!(
                res.stats.peak_mem_bytes <= granted,
                "query {}: peak {} bytes exceeds the {granted}-byte grant",
                q.id,
                res.stats.peak_mem_bytes
            );
            if kernel == Kernel::Row {
                serial_counters.push((
                    res.stats.spill_partitions,
                    res.stats.spill_bytes_written,
                    res.stats.spill_bytes_read,
                ));
                sweep.spill_partitions += res.stats.spill_partitions;
                sweep.spill_bytes_written += res.stats.spill_bytes_written;
                sweep.spill_bytes_read += res.stats.spill_bytes_read;
                sweep.peak_mem_bytes = sweep.peak_mem_bytes.max(res.stats.peak_mem_bytes);
            } else {
                assert_eq!(
                    (
                        res.stats.spill_partitions,
                        res.stats.spill_bytes_written,
                        res.stats.spill_bytes_read,
                    ),
                    serial_counters[i],
                    "query {}: columnar spill counters diverged from the row kernel",
                    q.id
                );
            }
        }
    }
    for kernel in [Kernel::Row, Kernel::Columnar] {
        for &workers in WORKER_LEVELS {
            let engine = ParallelEngine::with_config(
                &env.db,
                ParallelConfig {
                    workers,
                    columnar: kernel == Kernel::Columnar,
                    ..ParallelConfig::default()
                },
            );
            for (i, q) in corpus.iter().enumerate() {
                let res = engine
                    .run(&q.plan, &q.output_cols)
                    .expect("constrained parallel exec must spill, not fail");
                assert_eq!(
                    checksum(&res.rows),
                    baseline.checksums[i],
                    "query {} at {workers} workers ({} kernel) diverged under \
                     work_mem={work_mem}",
                    q.id,
                    kernel.name()
                );
                assert_eq!(
                    (
                        res.stats.spill_partitions,
                        res.stats.spill_bytes_written,
                        res.stats.spill_bytes_read,
                    ),
                    serial_counters[i],
                    "query {} at {workers} workers ({} kernel): spill counters \
                     diverged from the serial kernel",
                    q.id,
                    kernel.name()
                );
            }
        }
    }
    sweep.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    env.db.cluster.work_mem_bytes = default_wm;
    sweep
}

struct CursorPass {
    /// Queries whose first batch arrived before the producer finished.
    streamed: usize,
    /// Wall ms to the first batch of the first streamed query.
    first_batch_ms: f64,
}

/// Stream every corpus query through a [`Cursor`] with a small delivery
/// batch: results must match the row baseline, and at least one query
/// must hand over its first batch while the producer is still running —
/// the whole point of replacing full-rowset buffering.
fn run_cursor_pass(env: &BenchEnv, corpus: &[BenchQuery], baseline: &SerialRun) -> CursorPass {
    let db = Arc::new(env.db.clone());
    let mut streamed = 0;
    let mut first_batch_ms = f64::NAN;
    for (i, q) in corpus.iter().enumerate() {
        let t0 = Instant::now();
        let mut cursor = Cursor::open(
            Arc::clone(&db),
            &q.plan,
            &q.output_cols,
            CursorOptions {
                columnar: true,
                batch_rows: 16,
                fragments: None,
                mem: None,
            },
        );
        let mut rows: Vec<Row> = Vec::new();
        let mut early = false;
        while let Some(batch) = cursor.next_batch().expect("cursor exec") {
            if rows.is_empty() {
                early = !cursor.producer_finished();
                if early && streamed == 0 {
                    first_batch_ms = t0.elapsed().as_secs_f64() * 1e3;
                }
            }
            rows.extend(batch);
        }
        streamed += usize::from(early);
        assert_eq!(
            checksum(&rows),
            baseline.checksums[i],
            "query {}: cursor stream diverged from the row baseline",
            q.id
        );
    }
    CursorPass {
        streamed,
        first_batch_ms,
    }
}

struct NetPass {
    /// Remote worker *processes* (the gang is this many peers + 1).
    worker_procs: usize,
    wall_ms: f64,
    frames_tx: u64,
    bytes_tx: u64,
    remote_edges: u64,
    reconnects: u64,
    open_rtt_max_ms: f64,
}

/// The distributed pass: ship every corpus plan as DXL to `worker_procs`
/// spawned `net_worker` processes and run it as a loopback-TCP gang with
/// this process as the coordinator (peer 0). The coordinator executes
/// the *parsed-back* DXL — the identical artifact the workers run — so
/// row checksums against the serial baseline also gate the plan's DXL
/// round trip. `sim_seconds` must be bit-equal to the same parsed plan
/// run entirely in-process.
fn run_net_pass(
    env: &BenchEnv,
    corpus: &[BenchQuery],
    baseline: &SerialRun,
    scale: f64,
    worker_procs: usize,
    batch_size: usize,
) -> NetPass {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Child, ChildStdout, Command, Stdio};

    const GANG_WORKERS: usize = 2; // compute threads per peer

    let cfg = ParallelConfig {
        workers: GANG_WORKERS,
        batch_rows: batch_size,
        columnar: true,
        ..ParallelConfig::default()
    };

    // Parse back the DXL we are about to ship; every peer (coordinator
    // included) executes this artifact.
    let shipped: Vec<(String, PhysicalPlan)> = corpus
        .iter()
        .map(|q| {
            let dxl = plan_to_dxl(&DxlPlan {
                plan: q.plan.clone(),
                cost: 0.0,
            });
            let doc = parse_plan_doc(&dxl, env.provider.as_ref()).expect("plan DXL round trip");
            (dxl, doc.plan)
        })
        .collect();

    // In-process reference clocks for the bit-equality gate.
    let inproc = ParallelEngine::with_config(&env.db, cfg.clone());
    let ref_sims: Vec<u64> = shipped
        .iter()
        .zip(corpus)
        .map(|((_, plan), q)| {
            inproc
                .run(plan, &q.output_cols)
                .expect("in-process reference")
                .parallel
                .sim_seconds
                .to_bits()
        })
        .collect();

    let worker_exe = std::env::current_exe()
        .expect("current exe")
        .with_file_name("net_worker");
    let node = NetNode::bind("127.0.0.1:0", 0, NetConfig::default()).expect("coordinator bind");
    let mut children: Vec<(Child, BufReader<ChildStdout>)> = Vec::new();
    let mut peers = vec![node.addr().to_string()];
    for rank in 1..=worker_procs {
        let mut child = Command::new(&worker_exe)
            .args([
                scale.to_string(),
                batch_size.to_string(),
                rank.to_string(),
                GANG_WORKERS.to_string(),
                "1".to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn net_worker");
        let mut out = BufReader::new(child.stdout.take().expect("worker stdout"));
        let mut ready = String::new();
        out.read_line(&mut ready).expect("worker READY");
        let addr = ready
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("worker {rank} said {ready:?}, expected READY"))
            .to_string();
        peers.push(addr);
        children.push((child, out));
    }
    let topo = ClusterTopology::round_robin(peers.clone(), env.db.cluster.num_segments);
    let topo_line = format!("TOPO {}\n", peers.join(" "));
    for (child, _) in &mut children {
        let stdin = child.stdin.as_mut().expect("worker stdin");
        stdin.write_all(topo_line.as_bytes()).expect("send TOPO");
        stdin.flush().expect("flush TOPO");
    }

    let engine = ParallelEngine::with_config(&env.db, cfg);
    let mut pass = NetPass {
        worker_procs,
        wall_ms: 0.0,
        frames_tx: 0,
        bytes_tx: 0,
        remote_edges: 0,
        reconnects: 0,
        open_rtt_max_ms: 0.0,
    };
    let t0 = Instant::now();
    for (i, ((dxl, plan), q)) in shipped.iter().zip(corpus).enumerate() {
        let query_id = i as u64 + 1;
        let cols = q
            .output_cols
            .iter()
            .map(|c| c.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let job = format!("JOB {query_id} {cols} {}\n", dxl.len());
        for (child, _) in &mut children {
            let stdin = child.stdin.as_mut().expect("worker stdin");
            stdin.write_all(job.as_bytes()).expect("send JOB");
            stdin.write_all(dxl.as_bytes()).expect("send plan DXL");
            stdin.flush().expect("flush JOB");
        }
        let res = engine
            .run_distributed(plan, &q.output_cols, &node, &topo, query_id)
            .expect("distributed exec");
        for (_, out) in &mut children {
            let mut done = String::new();
            out.read_line(&mut done).expect("worker DONE");
            assert!(
                done.starts_with("DONE "),
                "query {} on {worker_procs} worker procs: worker said {done:?}",
                q.id
            );
        }
        assert_eq!(
            checksum(&res.rows),
            baseline.checksums[i],
            "query {} diverged over the loopback interconnect ({worker_procs} worker procs)",
            q.id
        );
        assert_eq!(
            res.parallel.sim_seconds.to_bits(),
            ref_sims[i],
            "query {}: distributed sim clock not bit-equal to in-process",
            q.id
        );
        assert!(
            !res.parallel.serial_fallback,
            "query {} fell back to serial in the distributed pass",
            q.id
        );
        pass.frames_tx += res.parallel.net.frames_tx;
        pass.bytes_tx += res.parallel.net.bytes_tx;
        pass.remote_edges += res.parallel.net.remote_edges;
        pass.reconnects += res.parallel.net.reconnects;
        pass.open_rtt_max_ms = pass
            .open_rtt_max_ms
            .max(res.parallel.net.open_rtt_max_seconds * 1e3);
    }
    pass.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for (child, _) in &mut children {
        let stdin = child.stdin.as_mut().expect("worker stdin");
        let _ = stdin.write_all(b"EXIT\n");
        let _ = stdin.flush();
    }
    for (mut child, _) in children {
        let status = child.wait().expect("worker exit");
        assert!(status.success(), "net_worker exited with {status}");
    }
    assert_eq!(
        pass.reconnects, 0,
        "loopback pass needed {} connect retries",
        pass.reconnects
    );
    assert!(
        pass.remote_edges > 0,
        "loopback pass at {worker_procs} worker procs crossed no process boundary"
    );
    pass
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).map(String::as_str))
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")))
            })
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let batch_size = flag_value("--batch-size", 1024);
    // The constrained setting must actually constrain: the smoke corpus
    // is small enough that its largest operator state fits in 4 KiB, so
    // smoke squeezes harder.
    let work_mem = flag_value("--work-mem", if smoke { 1024 } else { 4096 }) as u64;
    let net_mode: Option<String> = args
        .iter()
        .position(|a| a == "--net")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--net=").map(str::to_string))
        });
    if let Some(mode) = &net_mode {
        assert_eq!(mode, "loopback", "--net only supports 'loopback'");
    }
    // Value-taking flags consume their argument; drop both from the
    // positionals.
    let value_idxs: Vec<usize> = ["--batch-size", "--work-mem", "--net"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_idxs.contains(i))
        .map(|(_, a)| a)
        .collect();
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.02 } else { 0.05 });
    // Even smoke runs use several iterations: wall times take the min
    // over iterations, which is what makes the throughput gates stable
    // on a noisy (or single-CPU) host.
    let iters: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "executor bench: row vs columnar kernels, serial vs parallel slices \
         (scale {scale}, {iters} iters, batch size {batch_size})"
    );
    println!("host CPUs available: {cpus}");
    println!();

    let mut env = BenchEnv::new(scale, 8);
    env.db.cluster.batch_size = batch_size.max(1);
    env.cluster.batch_size = batch_size.max(1);
    let corpus = build_corpus(&env, if smoke { 8 } else { 16 });
    assert!(
        corpus.len() >= 4,
        "corpus too small: only {} executable suite queries",
        corpus.len()
    );
    println!("corpus: {} suite queries, 8 segments", corpus.len());

    let baseline = run_serial(&env, &corpus, iters, Kernel::Row);
    println!(
        "serial row:      {:.1} ms for {} rows across the corpus",
        baseline.wall_ms, baseline.rows
    );
    let columnar = run_serial(&env, &corpus, iters, Kernel::Columnar);
    assert_eq!(
        columnar.checksums, baseline.checksums,
        "columnar serial diverged from the row kernel"
    );
    let col_speedup = baseline.wall_ms / columnar.wall_ms;
    println!(
        "serial columnar: {:.1} ms for {} rows ({col_speedup:.2}x row serial)",
        columnar.wall_ms, columnar.rows
    );
    println!(
        "chunk skipping:  {} chunks zone/dict-skipped, {} dict-conjunct hits, \
         {} KiB scan bytes cloned",
        columnar.chunks_skipped,
        columnar.dict_hits,
        columnar.scan_bytes_cloned >> 10
    );

    // Cross-query sharing: one fragment cache across a cold and a warm
    // corpus sweep. The warm pass must answer its scans from the cache
    // without perturbing a single result byte.
    let fragments = Arc::new(FragmentCache::new(256 << 20));
    let (frag_cold_ms, cold_sums) = run_fragment_pass(&env, &corpus, &fragments);
    let (frag_warm_ms, warm_sums) = run_fragment_pass(&env, &corpus, &fragments);
    assert_eq!(
        cold_sums, baseline.checksums,
        "fragment-cache cold pass diverged from the row oracle"
    );
    assert_eq!(
        warm_sums, baseline.checksums,
        "fragment-cache warm pass diverged from the row oracle"
    );
    let fshare = fragments.stats();
    assert!(
        fshare.inserted > 0 && fshare.reused > 0,
        "fragment cache saw no sharing across two corpus sweeps \
         (inserted {}, reused {})",
        fshare.inserted,
        fshare.reused
    );
    assert_eq!(fshare.evictions, 0, "budget too small for the corpus");
    println!(
        "fragment sharing: cold {frag_cold_ms:.1} ms, warm {frag_warm_ms:.1} ms \
         ({:.2}x), {} fragments / {} KiB resident, {} reused",
        frag_cold_ms / frag_warm_ms,
        fshare.entries,
        fshare.bytes >> 10,
        fshare.reused
    );
    println!();
    if std::env::var("EXEC_BENCH_ROW_PROFILE").is_ok() {
        println!("per-operator profile (row serial, exclusive time):");
        for (name, (rows_n, batches, ns)) in &baseline.ops {
            println!(
                "{}",
                row(&[
                    (name, 22),
                    (&rows_n.to_string(), 10),
                    (&batches.to_string(), 9),
                    (&format!("{:.2}", *ns as f64 / 1e6), 9),
                ])
            );
        }
        println!();
    }
    println!("per-operator profile (columnar serial, exclusive time):");
    println!(
        "{}",
        row(&[("operator", 22), ("rows", 10), ("batches", 9), ("ms", 9)])
    );
    for (name, (rows_n, batches, ns)) in &columnar.ops {
        println!(
            "{}",
            row(&[
                (name, 22),
                (&rows_n.to_string(), 10),
                (&batches.to_string(), 9),
                (&format!("{:.2}", *ns as f64 / 1e6), 9),
            ])
        );
    }
    println!();
    println!(
        "{}",
        row(&[
            ("workers", 8),
            ("kernel", 9),
            ("wall_ms", 9),
            ("speedup", 8),
            ("mot_rows", 9),
            ("mot_bytes", 10),
            ("peak_q", 7),
            ("slices", 7),
            ("fallback", 9),
            ("reused", 8),
        ])
    );
    let mut runs = Vec::new();
    for &kernel in &[Kernel::Row, Kernel::Columnar] {
        for &workers in WORKER_LEVELS {
            let r = run_parallel(&env, &corpus, &baseline, workers, kernel, iters, batch_size);
            println!(
                "{}",
                row(&[
                    (&r.workers.to_string(), 8),
                    (r.kernel.name(), 9),
                    (&format!("{:.1}", r.wall_ms), 9),
                    (&format!("{:.2}", r.speedup), 8),
                    (&r.motion_rows.to_string(), 9),
                    (&r.motion_bytes.to_string(), 10),
                    (&r.peak_queue_depth.to_string(), 7),
                    (&r.slices.to_string(), 7),
                    (&r.serial_fallbacks.to_string(), 9),
                    (&r.batches_reused.to_string(), 8),
                ])
            );
            runs.push(r);
        }
    }
    println!();
    println!(
        "correctness: checksums byte-identical to row serial in every configuration \
         ({} queries x {} parallel levels x 2 kernels + columnar serial)",
        corpus.len(),
        WORKER_LEVELS.len()
    );

    // Spool gate: the parallel engine must never have dropped to the
    // serial engine — cross-slice CTEs run through the shared spool now,
    // so any fallback is a planning or slicing bug.
    let total_fallbacks: usize = runs.iter().map(|r| r.serial_fallbacks).sum();
    assert_eq!(
        total_fallbacks, 0,
        "parallel engine fell back to serial execution {total_fallbacks} times"
    );
    println!("spool gate: zero serial fallbacks across every parallel configuration");

    // Vectorization gate: the columnar kernel must beat row-at-a-time
    // interpretation on the same single thread — no concurrency excuse.
    // The bar is 1.5x now that scans are zero-copy and zone maps skip
    // chunks the predicate provably rejects.
    assert!(
        col_speedup >= 1.5,
        "columnar serial only {col_speedup:.2}x row serial (< 1.5x gate)"
    );
    println!("vectorization gate: columnar serial {col_speedup:.2}x >= 1.5x row serial");

    // Chunk-skipping gate: the corpus carries selective range and
    // string-equality scans, so zone maps / dictionaries must have
    // dropped at least one chunk — always, not just under --smoke.
    assert!(
        columnar.chunks_skipped > 0,
        "zone maps skipped no chunks across the corpus"
    );
    println!(
        "chunk-skip gate: {} chunks skipped, {} dict-conjunct hits",
        columnar.chunks_skipped, columnar.dict_hits
    );

    // Throughput gate: scheduling + interconnect overhead must not sink
    // the engine. Only meaningful with real parallel hardware; on a
    // single-CPU host the worker pool can't outrun the serial loop.
    if cpus > 1 {
        let best = runs.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        assert!(
            best >= 0.8,
            "best parallel speedup {best:.2}x < 0.8x serial on a {cpus}-CPU host"
        );
        println!("throughput gate: best speedup {best:.2}x >= 0.8x serial");
    } else {
        println!("throughput gate skipped: single-CPU host");
    }

    // Memory-governance sweep: the whole corpus under a constrained
    // working-memory budget, every engine and kernel. Operators must
    // spill (never fail), results must stay byte-identical, peaks must
    // respect the grant, and spill counters must be identical across
    // every execution mode.
    println!();
    let memory = run_memory_sweep(&mut env, &corpus, &baseline, work_mem);
    println!(
        "memory sweep:    work_mem {} B, grant {} B/query: {} spill partitions, \
         {} KiB written, {} KiB read back, peak state {} B ({:.1} ms all modes)",
        memory.work_mem,
        memory.granted,
        memory.spill_partitions,
        memory.spill_bytes_written >> 10,
        memory.spill_bytes_read >> 10,
        memory.peak_mem_bytes,
        memory.wall_ms
    );
    assert!(
        memory.spill_partitions > 0,
        "work_mem={} constrained the corpus but nothing spilled",
        memory.work_mem
    );
    println!(
        "spill gate: {} partitions spilled, checksums byte-identical in every mode, \
         peak {} B <= grant {} B",
        memory.spill_partitions, memory.peak_mem_bytes, memory.granted
    );

    // Streaming-cursor gate: incremental delivery must be real — at
    // least one query's first batch arrives before the producer is done.
    let cursor = run_cursor_pass(&env, &corpus, &baseline);
    assert!(
        cursor.streamed > 0,
        "no corpus query streamed its first batch before full materialization"
    );
    println!(
        "cursor gate: {}/{} queries streamed first batch early (first at {:.2} ms)",
        cursor.streamed,
        corpus.len(),
        cursor.first_batch_ms
    );

    // Distributed pass: loopback-TCP multi-process gangs. Gates live
    // inside `run_net_pass` (checksums, bit-equal sim clocks, zero
    // reconnects, zero fallbacks, remote edges present).
    let mut net_passes: Vec<NetPass> = Vec::new();
    if net_mode.as_deref() == Some("loopback") {
        println!();
        println!(
            "{}",
            row(&[
                ("wrk_procs", 10),
                ("peers", 6),
                ("wall_ms", 9),
                ("frames_tx", 10),
                ("KiB_tx", 8),
                ("rm_edges", 9),
                ("reconn", 7),
                ("rtt_ms", 8),
            ])
        );
        for &procs in &[1usize, 2, 4] {
            let p = run_net_pass(&env, &corpus, &baseline, scale, procs, batch_size);
            println!(
                "{}",
                row(&[
                    (&p.worker_procs.to_string(), 10),
                    (&(p.worker_procs + 1).to_string(), 6),
                    (&format!("{:.1}", p.wall_ms), 9),
                    (&p.frames_tx.to_string(), 10),
                    (&(p.bytes_tx >> 10).to_string(), 8),
                    (&p.remote_edges.to_string(), 9),
                    (&p.reconnects.to_string(), 7),
                    (&format!("{:.3}", p.open_rtt_max_ms), 8),
                ])
            );
            net_passes.push(p);
        }
        println!(
            "net gate: loopback gangs byte-identical and bit-equal sim clocks at \
             1/2/4 worker processes, zero reconnects, zero fallbacks"
        );
    }

    if smoke {
        println!(
            "\nsmoke gate passed: identical results, columnar serial >= 1.5x row serial, \
             chunks skipped"
        );
        return;
    }
    let json = render_json(
        scale,
        iters,
        cpus,
        batch_size,
        corpus.len(),
        &baseline,
        &columnar,
        col_speedup,
        &runs,
        (frag_cold_ms, frag_warm_ms, &fshare),
        &memory,
        &cursor,
        &net_passes,
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");
}

/// Hand-rolled JSON (the build has no serde); schema in EXPERIMENTS.md.
#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: f64,
    iters: usize,
    cpus: usize,
    batch_size: usize,
    queries: usize,
    baseline: &SerialRun,
    columnar: &SerialRun,
    col_speedup: f64,
    runs: &[ParallelRun],
    sharing: (f64, f64, &orca_executor::FragmentCacheStats),
    memory: &MemorySweep,
    cursor: &CursorPass,
    net: &[NetPass],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"exec_bench\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"segments\": 8,\n");
    out.push_str(&format!("  \"batch_size\": {batch_size},\n"));
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!(
        "  \"serial\": {{\"wall_ms\": {:.3}, \"rows\": {}}},\n",
        baseline.wall_ms, baseline.rows
    ));
    out.push_str(&format!(
        "  \"serial_columnar\": {{\"wall_ms\": {:.3}, \"rows\": {}, \"speedup_vs_row\": {:.3}, \
         \"chunks_skipped\": {}, \"dict_hits\": {}, \"scan_bytes_cloned\": {}}},\n",
        columnar.wall_ms,
        columnar.rows,
        col_speedup,
        columnar.chunks_skipped,
        columnar.dict_hits,
        columnar.scan_bytes_cloned
    ));
    let (frag_cold_ms, frag_warm_ms, fshare) = sharing;
    out.push_str(&format!(
        "  \"fragment_sharing\": {{\"cold_wall_ms\": {frag_cold_ms:.3}, \
         \"warm_wall_ms\": {frag_warm_ms:.3}, \"warm_speedup\": {:.3}, \
         \"fragments_inserted\": {}, \"fragments_reused\": {}, \
         \"fragment_bytes\": {}, \"fragment_entries\": {}}},\n",
        frag_cold_ms / frag_warm_ms,
        fshare.inserted,
        fshare.reused,
        fshare.bytes,
        fshare.entries
    ));
    out.push_str(&format!(
        "  \"memory\": {{\"work_mem_bytes\": {}, \"granted_bytes\": {}, \
         \"wall_ms\": {:.3}, \"spill_partitions\": {}, \"spill_bytes_written\": {}, \
         \"spill_bytes_read\": {}, \"peak_mem_bytes\": {}, \"checksums_ok\": true, \
         \"cursor_streamed_queries\": {}, \"cursor_first_batch_ms\": {:.3}}},\n",
        memory.work_mem,
        memory.granted,
        memory.wall_ms,
        memory.spill_partitions,
        memory.spill_bytes_written,
        memory.spill_bytes_read,
        memory.peak_mem_bytes,
        cursor.streamed,
        cursor.first_batch_ms
    ));
    out.push_str("  \"ops\": [\n");
    let nops = columnar.ops.len();
    for (i, (name, (rows_n, batches, ns))) in columnar.ops.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{name}\", \"rows\": {rows_n}, \"batches\": {batches}, \
             \"ns\": {ns}}}{}\n",
            if i + 1 < nops { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"net\": [\n");
    for (i, p) in net.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"worker_procs\": {}, \"peers\": {}, \"wall_ms\": {:.3}, \
             \"frames_tx\": {}, \"bytes_tx\": {}, \"remote_edges\": {}, \
             \"reconnects\": {}, \"open_rtt_max_ms\": {:.4}, \"checksums_ok\": true, \
             \"sim_bit_equal\": true}}{}\n",
            p.worker_procs,
            p.worker_procs + 1,
            p.wall_ms,
            p.frames_tx,
            p.bytes_tx,
            p.remote_edges,
            p.reconnects,
            p.open_rtt_max_ms,
            if i + 1 < net.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"parallel\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"kernel\": \"{}\", \"wall_ms\": {:.3}, \
             \"speedup\": {:.3}, \"motion_rows\": {}, \"motion_bytes\": {}, \
             \"peak_queue_depth\": {}, \"slices\": {}, \"serial_fallbacks\": {}, \
             \"batches_reused\": {}, \"checksum_ok\": true}}{}\n",
            r.workers,
            r.kernel.name(),
            r.wall_ms,
            r.speedup,
            r.motion_rows,
            r.motion_bytes,
            r.peak_queue_depth,
            r.slices,
            r.serial_fallbacks,
            r.batches_reused,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
