//! Figure 12: "Speed-up ratio of Orca vs Planner (TPC-DS)".
//!
//! For every suite query, optimize + execute with Orca and with the legacy
//! Planner on the same simulated 16-segment cluster; report the per-query
//! speed-up ratio (legacy simulated time / Orca simulated time), capped at
//! 1000x exactly as the paper caps timed-out Planner queries ("for 14
//! queries Orca achieves a speed-up ratio of at least 1000x - this is due
//! to a timeout we enforced").
//!
//! Usage: `fig12 [scale]` (default 0.05).

use orca_bench::report::{ratio_label, row, speedup_bar};
use orca_bench::runner::geometric_mean;
use orca_bench::BenchEnv;
use orca_tpcds::suite;

const CAP: f64 = 1000.0;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("Figure 12 — Orca vs Planner speed-up, TPC-DS (scale {scale}, 16 segments)\n");
    let env = BenchEnv::new(scale, 16);

    let mut ratios = Vec::new();
    let mut wins = 0usize;
    let mut capped = 0usize;
    let mut orca_total = 0.0;
    let mut legacy_total = 0.0;
    println!(
        "{}",
        row(&[("query", 6), ("template", 22), ("speedup", 14), ("", 62)])
    );
    for q in suite() {
        let orca = env.run_orca(&q, None);
        let legacy = env.run_legacy(&q);
        let (ratio, note) = match (orca.sim_seconds, legacy.sim_seconds) {
            (Some(o), Some(l)) => {
                orca_total += o;
                legacy_total += l.min(o * CAP);
                ((l / o).min(CAP), String::new())
            }
            (Some(_), None) => {
                capped += 1;
                (CAP, " (planner failed)".to_string())
            }
            (None, _) => {
                println!("{}  ORCA FAILED: {:?}", q.id, orca.error);
                continue;
            }
        };
        if ratio >= CAP {
            capped += 1;
        }
        if ratio >= 1.0 {
            wins += 1;
        }
        ratios.push(ratio);
        println!(
            "{}{note}",
            row(&[
                (&q.id, 6),
                (q.template, 22),
                (&ratio_label(ratio, CAP), 14),
                (&speedup_bar(ratio, CAP), 62),
            ])
        );
    }
    let n = ratios.len();
    println!(
        "\n--- summary (paper: similar-or-better for ~80%, 5x suite-wide, 14 queries at 1000x) ---"
    );
    println!(
        "queries with speed-up >= 1.0x : {wins}/{n} ({:.0}%)",
        wins as f64 * 100.0 / n as f64
    );
    println!("queries at the 1000x cap      : {capped}");
    println!(
        "suite-wide speed-up (total time): {:.1}x",
        legacy_total / orca_total
    );
    println!(
        "geometric-mean speed-up        : {:.1}x",
        geometric_mean(&ratios)
    );
}
