//! §4.2 ablation: multi-core optimization scaling.
//!
//! "Orca deploys a highly efficient multi-core aware scheduler that
//! distributes individual fine-grained optimization subtasks across
//! multiple cores for speed-up of the optimization process." This harness
//! optimizes the largest join queries of the suite at 1/2/4/8 scheduler
//! workers and reports wall-clock speed-up (plan cost AND plan shape must
//! be identical — parallelism changes speed, never the chosen plan).
//!
//! Besides the table it writes `BENCH_parallel.json` (schema documented in
//! EXPERIMENTS.md) with per-worker wall time, per-phase wall time
//! (explore / implement / optimize — exploration runs on the full pool now
//! that the Memo merges groups), speed-up, merge counts and the search
//! metrics (pruned contexts, dedup-shard collisions, goal hits).
//!
//! Usage: `parallel_scaling [scale] [repetitions] [--smoke]`.
//!
//! `--smoke` is the CI determinism gate: workers 1 and 4 only, no JSON
//! written — the run fails (asserts) if any worker count changes the
//! extracted plan, the plan cost, or the job count by more than 10%.

use orca::engine::OptimizerConfig;
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_tpcds::SuiteQuery;
use std::time::Instant;

/// A wide join (7 relations) — enough independent groups to feed several
/// cores.
fn big_join_query(variant: usize) -> SuiteQuery {
    SuiteQuery {
        id: format!("big{variant}"),
        template: "parallel_scaling",
        sql: format!(
            "SELECT i.i_brand_id, d.d_moy, count(*) AS n, sum(cs.cs_net_profit) AS profit \
             FROM catalog_sales cs, item i, date_dim d, promotion p, call_center cc, \
                  customer c, customer_address ca \
             WHERE cs.cs_item_sk = i.i_item_sk \
               AND cs.cs_sold_date_sk = d.d_date_sk \
               AND cs.cs_promo_sk = p.p_promo_sk \
               AND cs.cs_call_center_sk = cc.cc_call_center_sk \
               AND cs.cs_bill_customer_sk = c.c_customer_sk \
               AND c.c_current_addr_sk = ca.ca_address_sk \
               AND d.d_date_sk > {} \
             GROUP BY i.i_brand_id, d.d_moy ORDER BY profit DESC LIMIT 20",
            variant * 10
        ),
        features: vec![],
    }
}

/// One row of the emitted report.
struct WorkerResult {
    workers: usize,
    wall_ms: f64,
    explore_ms: f64,
    implement_ms: f64,
    optimize_ms: f64,
    /// `None` when the worker count oversubscribes the host CPUs — a
    /// wall-clock ratio measured there is scheduler noise, not scaling
    /// data, so no speed-up is claimed.
    speedup: Option<f64>,
    oversubscribed: bool,
    plan_cost: f64,
    jobs: usize,
    goal_hits: usize,
    contexts_pruned: u64,
    dedup_shard_collisions: u64,
    groups_merged: u64,
    sel_cache_hits: u64,
    sel_cache_misses: u64,
    intern_hits: u64,
    exprs_interned: u64,
}

impl WorkerResult {
    fn sel_hit_rate(&self) -> f64 {
        let total = self.sel_cache_hits + self.sel_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.sel_cache_hits as f64 / total as f64
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale: f64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.01 } else { 0.05 });
    let reps: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 })
        .max(1);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("§4.2 — parallel query optimization scaling ({reps} reps, 7-way join)");
    println!("host CPUs available: {cpus}");
    if cpus == 1 {
        println!(
            "NOTE: single-CPU host — wall-clock speed-up is physically impossible here;\n             the expected shape is a FLAT curve (more workers must not slow things down,\n             i.e. scheduler overhead ≈ 0). On a multi-core host the curve shows speed-up."
        );
    }
    println!();
    let env = BenchEnv::new(scale, 16);
    println!(
        "{}",
        row(&[
            ("workers", 8),
            ("wall_ms", 10),
            ("expl_ms", 9),
            ("impl_ms", 9),
            ("opt_ms", 8),
            ("speedup", 9),
            ("plan_cost", 12),
            ("jobs", 8),
            ("merged", 7),
            ("pruned", 8),
            ("shard_col", 9),
            ("goal_hit", 8),
            ("sel_hit%", 8),
        ])
    );
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut base_ms = None;
    let mut baseline_plans: Vec<orca_expr::physical::PhysicalPlan> = Vec::new();
    let mut results: Vec<WorkerResult> = Vec::new();
    for &workers in worker_counts {
        let mut total_ms = 0.0;
        let mut explore_ms = 0.0;
        let mut implement_ms = 0.0;
        let mut optimize_ms = 0.0;
        let mut cost = 0.0;
        let mut jobs = 0usize;
        let mut goal_hits = 0usize;
        let mut pruned = 0u64;
        let mut collisions = 0u64;
        let mut merged = 0u64;
        let mut sel_hits = 0u64;
        let mut sel_misses = 0u64;
        let mut intern_hits = 0u64;
        let mut exprs_interned = 0u64;
        for rep in 0..reps {
            let q = big_join_query(rep % 3);
            let config = OptimizerConfig::default()
                .with_workers(workers)
                .with_cluster(env.cluster.clone());
            let t0 = Instant::now();
            let (plan, stats) = env.optimize_only(&q, config).expect("optimizes");
            total_ms += t0.elapsed().as_secs_f64() * 1e3;
            explore_ms += stats.explore_time.as_secs_f64() * 1e3;
            implement_ms += stats.implement_time.as_secs_f64() * 1e3;
            optimize_ms += stats.optimize_time.as_secs_f64() * 1e3;
            cost = stats.plan_cost;
            jobs = stats.jobs_spawned;
            goal_hits = stats.goal_hits;
            pruned += stats.search.contexts_pruned;
            collisions += stats.search.dedup_shard_collisions;
            merged = stats.search.groups_merged;
            sel_hits += stats.search.sel_cache_hits;
            sel_misses += stats.search.sel_cache_misses;
            intern_hits += stats.search.intern_hits;
            exprs_interned += stats.search.exprs_interned;
            // Determinism: every worker count must produce the exact plan
            // the single-worker baseline produced for this variant.
            if workers == 1 && rep < 3 {
                baseline_plans.push(plan);
            } else if rep < 3 {
                assert!(
                    plan == baseline_plans[rep],
                    "worker count {workers} changed the chosen plan for variant {rep}"
                );
            }
        }
        let ms = total_ms / reps as f64;
        // Worker counts beyond the physical CPUs cannot demonstrate
        // scaling — record the timing but make no speed-up claim.
        let oversubscribed = workers > cpus;
        let speedup = if oversubscribed {
            None
        } else {
            Some(base_ms.map(|b: f64| b / ms).unwrap_or(1.0))
        };
        if base_ms.is_none() {
            base_ms = Some(ms);
        }
        let result = WorkerResult {
            workers,
            wall_ms: ms,
            explore_ms: explore_ms / reps as f64,
            implement_ms: implement_ms / reps as f64,
            optimize_ms: optimize_ms / reps as f64,
            speedup,
            oversubscribed,
            plan_cost: cost,
            jobs,
            goal_hits,
            contexts_pruned: pruned,
            dedup_shard_collisions: collisions,
            groups_merged: merged,
            sel_cache_hits: sel_hits,
            sel_cache_misses: sel_misses,
            intern_hits,
            exprs_interned,
        };
        println!(
            "{}",
            row(&[
                (&workers.to_string(), 8),
                (&format!("{ms:.1}"), 10),
                (&format!("{:.1}", result.explore_ms), 9),
                (&format!("{:.1}", result.implement_ms), 9),
                (&format!("{:.1}", result.optimize_ms), 8),
                (
                    &match speedup {
                        Some(s) => format!("{s:.2}x"),
                        None => "n/a".to_string(),
                    },
                    9
                ),
                (&format!("{cost:.0}"), 12),
                (&jobs.to_string(), 8),
                (&merged.to_string(), 7),
                (&pruned.to_string(), 8),
                (&collisions.to_string(), 9),
                (&goal_hits.to_string(), 8),
                (&format!("{:.1}", result.sel_hit_rate() * 100.0), 8),
            ])
        );
        results.push(result);
    }
    assert!(
        results.iter().all(|r| r.contexts_pruned > 0),
        "branch-and-bound pruning never fired on the 7-way join"
    );
    // Merging replaced the serial-exploration pin: job counts must not
    // blow up when exploration runs parallel. Every worker count has to
    // stay within 10% of the single-worker job count (they are identical
    // when the memo converges to the same content — the slack only covers
    // scheduler-level goal-dedup timing).
    let base_jobs = results[0].jobs as f64;
    for r in &results[1..] {
        let drift = (r.jobs as f64 - base_jobs).abs() / base_jobs;
        assert!(
            drift <= 0.10,
            "job count at {} workers drifted {:.1}% from the 1-worker baseline ({} vs {})",
            r.workers,
            drift * 100.0,
            r.jobs,
            results[0].jobs
        );
    }
    if smoke {
        // Hot-path cache gate: the 7-way join re-derives the same filter /
        // join predicates across alternatives, so the memoized selectivity
        // and cardinality caches must absorb at least half of the probes.
        for r in &results {
            assert!(
                r.sel_hit_rate() >= 0.5,
                "selectivity/cardinality cache hit rate at {} workers is {:.1}% (< 50%): {} hits / {} misses",
                r.workers,
                r.sel_hit_rate() * 100.0,
                r.sel_cache_hits,
                r.sel_cache_misses
            );
        }
        println!(
            "\nsmoke gate passed: identical plans/costs at 1 vs 4 workers, job drift <= 10%, \
             sel-cache hit rate >= 50%"
        );
        return;
    }
    let json = render_json(scale, reps, cpus, &results);
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
    println!("(plan cost and plan shape are identical across worker counts — determinism check)");
}

/// Hand-rolled JSON (the build has no serde); schema in EXPERIMENTS.md.
fn render_json(scale: f64, reps: usize, cpus: usize, results: &[WorkerResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"parallel_scaling\",\n");
    out.push_str("  \"query\": \"7-way join, 3 variants\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"repetitions\": {reps},\n"));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"workers\": [\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = match r.speedup {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"explore_ms\": {:.3}, \
             \"implement_ms\": {:.3}, \"optimize_ms\": {:.3}, \"speedup\": {}, \
             \"oversubscribed\": {}, \"plan_cost\": {:.3}, \"jobs\": {}, \"goal_hits\": {}, \
             \"contexts_pruned\": {}, \"dedup_shard_collisions\": {}, \
             \"groups_merged\": {}, \"sel_cache_hits\": {}, \"sel_cache_misses\": {}, \
             \"sel_cache_hit_rate\": {:.3}, \"intern_hits\": {}, \"exprs_interned\": {}}}{}\n",
            r.workers,
            r.wall_ms,
            r.explore_ms,
            r.implement_ms,
            r.optimize_ms,
            speedup,
            r.oversubscribed,
            r.plan_cost,
            r.jobs,
            r.goal_hits,
            r.contexts_pruned,
            r.dedup_shard_collisions,
            r.groups_merged,
            r.sel_cache_hits,
            r.sel_cache_misses,
            r.sel_hit_rate(),
            r.intern_hits,
            r.exprs_interned,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
