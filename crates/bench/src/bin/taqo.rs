//! §6.2 — TAQO: Testing the Accuracy of the Query Optimizer.
//!
//! For a set of suite queries: optimize, sample plans uniformly from the
//! Memo's request linkage structure, execute every sampled plan on the
//! simulator to get ground-truth times, and compute the importance- and
//! distance-weighted rank-correlation score between estimated costs and
//! actual times. A deliberately mis-calibrated cost model (inverted
//! network cost) is scored alongside as the sanity baseline — its score
//! must be visibly worse.
//!
//! Usage: `taqo [scale] [samples_per_query]`.

use orca::cost::CostParams;
use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca::taqo::{correlation_score, PlanSampler};
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_executor::ExecEngine;
use orca_tpcds::suite;

fn score_with(env: &BenchEnv, params: CostParams, samples: usize) -> (f64, usize) {
    // Score per query (comparing plans across different queries would be
    // meaningless), then average.
    let mut scores: Vec<f64> = Vec::new();
    for q in suite() {
        // Plan-diverse queries only (joins): sampling a single-plan space
        // is uninformative.
        if !matches!(
            q.template,
            "star_explicit" | "star_comma" | "narrow_date_window" | "web_by_site"
        ) {
            continue;
        }
        let (bound, registry) = match env.compile(&q) {
            Ok(x) => x,
            Err(_) => continue,
        };
        let config = OptimizerConfig {
            cost_params: params.clone(),
            ..OptimizerConfig::default().with_cluster(env.cluster.clone())
        };
        let optimizer = Optimizer::new(env.provider.clone(), config);
        let reqs = QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };
        let Ok((memo, root, req, _, _)) =
            optimizer.optimize_with_memo(&bound.expr, &registry, &reqs)
        else {
            continue;
        };
        let mut sampler = PlanSampler::new(&memo);
        let Ok(sampled) = sampler.sample(root, &req, samples, 0xC0FFEE) else {
            continue;
        };
        let engine = ExecEngine::new(&env.db);
        let mut pairs = Vec::new();
        for s in sampled {
            if let Ok(res) = engine.run(&s.plan, &bound.output_cols) {
                pairs.push((s.estimated_cost, res.sim_seconds));
            }
        }
        if pairs.len() >= 2 {
            scores.push(correlation_score(&pairs, 0.05));
        }
    }
    let n = scores.len();
    (scores.iter().sum::<f64>() / n.max(1) as f64, n)
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let samples: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    println!("§6.2 — TAQO cost-model accuracy ({samples} sampled plans/query)\n");
    let env = BenchEnv::new(scale, 8);

    let calibrated = CostParams::default();
    // Mis-calibration: nested-loops pairs look nearly free while hashing
    // and the interconnect look expensive — inverting the true trade-offs,
    // so cheap-looking sampled plans are in fact the slow ones.
    let broken = CostParams {
        nl_pair: 0.0005,
        hash_build: 12.0,
        hash_probe: 6.0,
        net_byte: 0.4,
        ..CostParams::default()
    };

    println!(
        "{}",
        row(&[("cost model", 14), ("score", 8), ("queries", 8)])
    );
    let (s1, n1) = score_with(&env, calibrated, samples);
    println!(
        "{}",
        row(&[
            ("calibrated", 14),
            (&format!("{s1:.3}"), 8),
            (&n1.to_string(), 8)
        ])
    );
    let (s2, n2) = score_with(&env, broken, samples);
    println!(
        "{}",
        row(&[
            ("miscalibrated", 14),
            (&format!("{s2:.3}"), 8),
            (&n2.to_string(), 8)
        ])
    );
    println!(
        "\n(score = importance/distance-weighted pairwise ordering accuracy in [0,1];\n\
         the calibrated model must order sampled plans substantially better)"
    );
}
