//! Figure 14: "HAWQ vs Stinger (TPC-DS 256GB)" — the Stinger profile runs
//! literal join orders and pays a MapReduce stage-materialization penalty
//! per data movement; it can spill, so all its supported queries execute.
//!
//! Usage: `fig14 [scale]`.

use orca_bench::report::{ratio_label, row, speedup_bar};
use orca_bench::runner::geometric_mean;
use orca_bench::BenchEnv;
use orca_planner::EngineProfile;
use orca_tpcds::suite;

const CAP: f64 = 100.0;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("Figure 14 — HAWQ vs Stinger speed-up (scale {scale})\n");
    let env = BenchEnv::new(scale, 8);
    let stinger = EngineProfile::stinger();

    let mut ratios = Vec::new();
    let mut executed = 0usize;
    for q in suite() {
        if !stinger.supports_all(&q.features) {
            continue;
        }
        let hawq = env.run_orca(&q, None);
        let rival = env.run_profile(&q, &stinger, env.cluster.work_mem_bytes);
        let (Some(h), Some(s)) = (hawq.sim_seconds, rival.sim_seconds) else {
            println!("{}  failed: {:?} / {:?}", q.id, hawq.error, rival.error);
            continue;
        };
        executed += 1;
        let ratio = (s / h).min(CAP);
        ratios.push(ratio);
        println!(
            "{}",
            row(&[
                (&q.id, 6),
                (q.template, 22),
                (&ratio_label(ratio, CAP), 14),
                (&speedup_bar(ratio, CAP), 50),
            ])
        );
    }
    println!("\n--- summary (paper: 19 queries, avg 21x speed-up) ---");
    println!("queries Stinger executes: {executed}");
    println!(
        "geometric-mean HAWQ speed-up: {:.1}x",
        geometric_mean(&ratios)
    );
}
