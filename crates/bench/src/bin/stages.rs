//! §4.1 ablation: multi-stage optimization.
//!
//! "An optimization stage in Orca is defined as a complete optimization
//! workflow using a subset of transformation rules and (optional) time-out
//! and cost threshold... the most expensive transformation rules are
//! configured to run in later stages to avoid increasing the optimization
//! time."
//!
//! Three configurations over the suite's join-heavy queries:
//!   full      — one stage, all rules;
//!   quick     — one stage without join reordering (cheap, worse plans);
//!   staged    — quick stage first with a cost threshold, full stage after
//!               (the resource-constrained mode of the paper).
//!
//! Usage: `stages [scale]`.

use orca::engine::{OptimizerConfig, StageConfig};
use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_tpcds::suite;
use std::time::Instant;

fn quick_rules() -> Vec<&'static str> {
    vec![
        // No JoinCommutativity / JoinAssociativity / GbAggSplit.
        "Get2TableScan",
        "Get2IndexScan",
        "Select2Filter",
        "Project2Project",
        "Join2HashJoin",
        "Join2NLJoin",
        "GbAgg2HashAgg",
        "GbAgg2StreamAgg",
        "Limit2Limit",
        "UnionAll2UnionAll",
        "SetOp2HashSetOp",
        "Sequence2Sequence",
        "CteProducer2CteProducer",
        "CteConsumer2CteScan",
        "ConstTable2ConstTable",
        "MaxOneRow2Assert",
    ]
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("§4.1 — multi-stage optimization ablation (scale {scale})\n");
    let env = BenchEnv::new(scale, 16);

    let configs: Vec<(&str, Vec<StageConfig>)> = vec![
        ("full", vec![]),
        (
            "quick",
            vec![StageConfig {
                rules: Some(quick_rules()),
                timeout: None,
                cost_threshold: None,
            }],
        ),
        (
            "staged",
            vec![
                StageConfig {
                    rules: Some(quick_rules()),
                    timeout: None,
                    // Accept the quick plan only if it is already cheap.
                    cost_threshold: Some(700.0),
                },
                StageConfig::default(),
            ],
        ),
    ];

    println!(
        "{}",
        row(&[
            ("config", 8),
            ("opt_ms_total", 13),
            ("plan_cost_total", 16),
            ("stages_run", 11)
        ])
    );
    // Join-heavy subset: star joins + multi-fact outer joins.
    let queries: Vec<_> = suite()
        .into_iter()
        .filter(|q| {
            matches!(
                q.template,
                "star_explicit" | "star_comma" | "sales_returns_outer" | "narrow_date_window"
            )
        })
        .collect();
    for (name, stages) in configs {
        let mut total_ms = 0.0;
        let mut total_cost = 0.0;
        let mut total_stages = 0usize;
        for q in &queries {
            let config = OptimizerConfig {
                stages: stages.clone(),
                ..OptimizerConfig::default().with_cluster(env.cluster.clone())
            };
            let t0 = Instant::now();
            let (_, stats) = env.optimize_only(q, config).expect("optimizes");
            total_ms += t0.elapsed().as_secs_f64() * 1e3;
            total_cost += stats.plan_cost;
            total_stages += stats.stages_run;
        }
        println!(
            "{}",
            row(&[
                (name, 8),
                (&format!("{total_ms:.1}"), 13),
                (&format!("{total_cost:.0}"), 16),
                (&total_stages.to_string(), 11),
            ])
        );
    }
    println!(
        "\n(expected shape: quick is fastest but costliest plans; staged sits between,\n\
         stopping early whenever the quick plan already beats the threshold)"
    );
}
