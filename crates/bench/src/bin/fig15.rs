//! Figure 15: "TPC-DS query support" — how many of the 111 queries each
//! engine can *optimize* (produce a plan: the SQL-feature matrix) and how
//! many it can *execute* (finish under its memory discipline).
//!
//! Usage: `fig15 [scale]`.

use orca_bench::report::row;
use orca_bench::BenchEnv;
use orca_planner::EngineProfile;
use orca_tpcds::suite;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("Figure 15 — TPC-DS query support (111 query instances, scale {scale})\n");
    let env = BenchEnv::new(scale, 8);
    // Per-engine no-spill memory budgets (Presto's tiny budget reproduces
    // "we were unable to successfully run any TPC-DS query in Presto").
    let engines: Vec<(EngineProfile, u64)> = vec![
        (EngineProfile::hawq(), env.cluster.work_mem_bytes),
        (EngineProfile::impala(), 9_000),
        (EngineProfile::presto(), 256),
        (EngineProfile::stinger(), 9_000),
    ];
    println!(
        "{}",
        row(&[("engine", 10), ("optimization", 14), ("execution", 10)])
    );
    for (profile, work_mem) in engines {
        let mut optimized = 0usize;
        let mut executed = 0usize;
        for q in suite() {
            if profile.name == "HAWQ" {
                let out = env.run_orca(&q, None);
                optimized += 1;
                if out.sim_seconds.is_some() {
                    executed += 1;
                }
                continue;
            }
            if !profile.supports_all(&q.features) {
                continue;
            }
            optimized += 1;
            if env
                .run_profile(&q, &profile, work_mem)
                .sim_seconds
                .is_some()
            {
                executed += 1;
            }
        }
        println!(
            "{}",
            row(&[
                (profile.name, 10),
                (&optimized.to_string(), 14),
                (&executed.to_string(), 10),
            ])
        );
    }
    println!("\npaper: HAWQ 111/111, Impala 31/20, Presto 12/0, Stinger 19/19");
}
