//! Figure 13: "HAWQ vs Impala (TPC-DS 256GB)" — speed-up of HAWQ (Orca
//! plans, spilling execution) over the Impala profile (literal join order,
//! broadcast-right joins, no spilling) on the queries Impala supports.
//! Queries that exhaust the no-spill memory budget are marked `*`, exactly
//! as in the paper ("the bars marked with '*' indicate the queries that
//! run out of memory").
//!
//! Usage: `fig13 [scale] [impala_work_mem_bytes]`.

use orca_bench::report::{ratio_label, row, speedup_bar};
use orca_bench::runner::geometric_mean;
use orca_bench::BenchEnv;
use orca_planner::EngineProfile;
use orca_tpcds::suite;

const CAP: f64 = 100.0;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let work_mem: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9_000);
    println!("Figure 13 — HAWQ vs Impala speed-up (scale {scale}, impala work_mem {work_mem}B)\n");
    let env = BenchEnv::new(scale, 8);
    let impala = EngineProfile::impala();

    let mut ratios = Vec::new();
    let mut oom = 0usize;
    let mut executed = 0usize;
    let mut supported = 0usize;
    for q in suite() {
        if !impala.supports_all(&q.features) {
            continue;
        }
        supported += 1;
        let hawq = env.run_orca(&q, None);
        let rival = env.run_profile(&q, &impala, work_mem);
        let Some(h) = hawq.sim_seconds else {
            println!("{}  HAWQ FAILED: {:?}", q.id, hawq.error);
            continue;
        };
        match rival.sim_seconds {
            Some(i) => {
                executed += 1;
                let ratio = (i / h).min(CAP);
                ratios.push(ratio);
                println!(
                    "{}",
                    row(&[
                        (&q.id, 6),
                        (q.template, 22),
                        (&ratio_label(ratio, CAP), 14),
                        (&speedup_bar(ratio, CAP), 50),
                    ])
                );
            }
            None => {
                oom += 1;
                println!(
                    "{}",
                    row(&[
                        (&q.id, 6),
                        (q.template, 22),
                        ("*", 14),
                        ("(out of memory)", 50)
                    ])
                );
            }
        }
    }
    println!("\n--- summary (paper: 31 supported, 20 executed, avg 6x speed-up) ---");
    println!("queries Impala optimizes : {supported}");
    println!("queries Impala executes  : {executed} ({oom} out of memory)");
    println!(
        "geometric-mean HAWQ speed-up on executed queries: {:.1}x",
        geometric_mean(&ratios)
    );
}
