//! `orca-bench` — the experiment harness for §7.
//!
//! One binary per figure (see DESIGN.md §3):
//!
//! | target                   | reproduces |
//! |--------------------------|------------|
//! | `fig12`                  | Figure 12 — Orca vs Planner speed-up per query (TPC-DS) |
//! | `fig13`                  | Figure 13 — HAWQ vs Impala speed-up |
//! | `fig14`                  | Figure 14 — HAWQ vs Stinger speed-up |
//! | `fig15`                  | Figure 15 — per-engine query support counts |
//! | `optstats`               | §7.2.2 — optimization time & memory footprint |
//! | `parallel_scaling`       | §4.2 ablation — multi-core optimization speed-up |
//! | `stages`                 | §4.1 ablation — multi-stage optimization |
//! | `taqo`                   | §6.2 — cost-model accuracy score |
//! | `service_bench`          | §3 serving layer — plan-cache economics & session sweep |
//!
//! All experiments run on the simulated cluster; reported times are
//! *simulated* seconds (deterministic), so shapes are reproducible on any
//! machine.

pub mod report;
pub mod runner;

pub use runner::{BenchEnv, QueryOutcome};
