//! Shared experiment plumbing: build the catalog once, compile / optimize /
//! execute queries under each engine's planner and execution profile.

use orca::engine::{OptStats, Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider;
use orca_catalog::{MdAccessor, MdCache, MemoryProvider};
use orca_common::{OrcaError, Result, SegmentConfig};
use orca_executor::{Database, ExecEngine};
use orca_expr::physical::PhysicalPlan;
use orca_expr::ColumnRegistry;
use orca_planner::{EngineProfile, LegacyPlanner};
use orca_sql::BoundQuery;
use orca_tpcds::{build_catalog, SuiteQuery};
use std::sync::Arc;
use std::time::Instant;

/// Result of running one query under one engine.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub id: String,
    /// Simulated cluster seconds; `None` = failed (e.g. OOM).
    pub sim_seconds: Option<f64>,
    pub error: Option<String>,
    pub rows: usize,
    pub opt_wall_ms: f64,
}

/// The shared environment: a generated catalog + database.
pub struct BenchEnv {
    pub provider: Arc<MemoryProvider>,
    pub db: Database,
    pub cluster: SegmentConfig,
}

impl BenchEnv {
    /// Default experiment scale (kept small enough that the full suite
    /// runs in seconds; the *shape* of results is scale-stable).
    pub fn new(scale: f64, segments: usize) -> BenchEnv {
        let cluster = SegmentConfig::default().with_segments(segments);
        let (provider, db) = build_catalog(scale, cluster.clone());
        BenchEnv {
            provider,
            db,
            cluster,
        }
    }

    pub fn compile(&self, q: &SuiteQuery) -> Result<(BoundQuery, Arc<ColumnRegistry>)> {
        let registry = Arc::new(ColumnRegistry::new());
        let bound = orca_sql::compile(&q.sql, self.provider.as_ref(), &registry)?;
        Ok((bound, registry))
    }

    fn reqs(bound: &BoundQuery) -> QueryReqs {
        QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        }
    }

    /// Optimize with Orca (optionally overriding the config) and execute.
    pub fn run_orca(&self, q: &SuiteQuery, config: Option<OptimizerConfig>) -> QueryOutcome {
        let config = config.unwrap_or_else(|| {
            OptimizerConfig::default()
                .with_workers(2)
                .with_cluster(self.cluster.clone())
        });
        let optimizer = Optimizer::new(self.provider.clone(), config);
        match self.compile(q) {
            Ok((bound, registry)) => {
                let t0 = Instant::now();
                match optimizer.optimize(&bound.expr, &registry, &Self::reqs(&bound)) {
                    Ok((plan, _stats)) => {
                        let opt_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                        self.execute(q, &plan, &bound, &self.db, opt_wall_ms)
                    }
                    Err(e) => fail(q, e),
                }
            }
            Err(e) => fail(q, e),
        }
    }

    /// Optimize with Orca and return the plan + optimizer stats (for the
    /// §7.2.2 / §4.2 experiments — no execution).
    pub fn optimize_only(
        &self,
        q: &SuiteQuery,
        config: OptimizerConfig,
    ) -> Result<(PhysicalPlan, OptStats)> {
        let (bound, registry) = self.compile(q)?;
        let optimizer = Optimizer::new(self.provider.clone(), config);
        optimizer.optimize(&bound.expr, &registry, &Self::reqs(&bound))
    }

    /// Plan with the legacy GPDB Planner and execute.
    pub fn run_legacy(&self, q: &SuiteQuery) -> QueryOutcome {
        match self.compile(q) {
            Ok((bound, registry)) => {
                let md =
                    MdAccessor::new(MdCache::new(), self.provider.clone() as Arc<dyn MdProvider>);
                let planner = LegacyPlanner::new(&md, &registry);
                let t0 = Instant::now();
                match planner.plan(&bound.expr, &bound.order) {
                    Ok((plan, _)) => {
                        let opt_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                        self.execute(q, &plan, &bound, &self.db, opt_wall_ms)
                    }
                    Err(e) => fail(q, e),
                }
            }
            Err(e) => fail(q, e),
        }
    }

    /// Plan with a rival engine profile and execute under its memory
    /// discipline (`can_spill`, `work_mem`). Stage-materialization
    /// penalties (Stinger) inflate the simulated time per motion.
    pub fn run_profile(
        &self,
        q: &SuiteQuery,
        profile: &EngineProfile,
        work_mem_bytes: u64,
    ) -> QueryOutcome {
        match self.compile(q) {
            Ok((bound, registry)) => {
                let t0 = Instant::now();
                match profile.plan(&bound.expr, &q.features, &bound.order, &registry) {
                    Ok((plan, _)) => {
                        let opt_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                        let mut db = self.db.clone();
                        db.cluster.can_spill = profile.can_spill;
                        db.cluster.work_mem_bytes = work_mem_bytes;
                        let mut out = self.execute(q, &plan, &bound, &db, opt_wall_ms);
                        if let Some(t) = out.sim_seconds.as_mut() {
                            *t *= 1.0 + profile.stage_penalty * plan.motion_count() as f64;
                        }
                        out
                    }
                    Err(e) => fail(q, e),
                }
            }
            Err(e) => fail(q, e),
        }
    }

    fn execute(
        &self,
        q: &SuiteQuery,
        plan: &PhysicalPlan,
        bound: &BoundQuery,
        db: &Database,
        opt_wall_ms: f64,
    ) -> QueryOutcome {
        let engine = ExecEngine::new(db);
        match engine.run(plan, &bound.output_cols) {
            Ok(res) => QueryOutcome {
                id: q.id.clone(),
                sim_seconds: Some(res.sim_seconds),
                error: None,
                rows: res.rows.len(),
                opt_wall_ms,
            },
            Err(e) => fail(q, e),
        }
    }
}

fn fail(q: &SuiteQuery, e: OrcaError) -> QueryOutcome {
    QueryOutcome {
        id: q.id.clone(),
        sim_seconds: None,
        error: Some(e.to_string()),
        rows: 0,
        opt_wall_ms: 0.0,
    }
}

/// Geometric mean of speed-up ratios (the paper reports suite-level
/// averages this way for ratio data).
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.max(1e-9).ln()).sum::<f64>() / ratios.len() as f64).exp()
}
