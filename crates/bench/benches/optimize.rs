//! Criterion micro-benchmarks: end-to-end optimization latency per query
//! class (the wall-clock counterpart of the §7.2.2 statistics).

use criterion::{criterion_group, criterion_main, Criterion};
use orca::engine::OptimizerConfig;
use orca_bench::BenchEnv;
use orca_tpcds::suite;

fn bench_optimize(c: &mut Criterion) {
    let env = BenchEnv::new(0.02, 16);
    let all = suite();
    let mut group = c.benchmark_group("optimize");
    for (bench_name, template) in [
        ("star_join", "star_explicit"),
        ("correlated_subquery", "corr_scalar_max"),
        ("shared_cte", "cte_shared"),
        ("setop", "channel_intersect"),
    ] {
        let q = all
            .iter()
            .find(|q| q.template == template)
            .expect("template exists")
            .clone();
        group.bench_function(bench_name, |b| {
            b.iter(|| {
                let config = OptimizerConfig::default().with_cluster(env.cluster.clone());
                env.optimize_only(&q, config).expect("optimizes")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimize
}
criterion_main!(benches);
