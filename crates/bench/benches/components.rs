//! Criterion micro-benchmarks of individual substrates: Memo copy-in +
//! duplicate detection, histogram equi-join math, DXL round-trips, and the
//! GPOS job scheduler's raw overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use orca::memo::Memo;
use orca_catalog::stats::Histogram;
use orca_catalog::{ColumnMeta, Distribution, TableDesc};
use orca_common::{ColId, DataType, MdId, SysId};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::scalar::ScalarExpr;
use orca_gpos::sched::{Job, JobHandle, Scheduler, StepResult};
use std::sync::Arc;

fn chain_join(n: usize) -> LogicalExpr {
    let get = |i: usize| {
        LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(Arc::new(TableDesc::new(
                MdId::new(SysId::Gpdb, i as u64 + 1, 1),
                &format!("t{i}"),
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                Distribution::Hashed(vec![0]),
            ))),
            cols: vec![ColId(2 * i as u32), ColId(2 * i as u32 + 1)],
            parts: None,
        })
    };
    let mut expr = get(0);
    for i in 1..n {
        expr = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(2 * (i - 1) as u32), ColId(2 * i as u32)),
            },
            vec![expr, get(i)],
        );
    }
    expr
}

fn bench_memo(c: &mut Criterion) {
    let expr = chain_join(8);
    c.bench_function("memo_copy_in_8way_join", |b| {
        b.iter(|| {
            let memo = Memo::new();
            memo.copy_in(&expr)
        })
    });
    // Duplicate detection: re-inserting an identical tree must be cheap.
    c.bench_function("memo_dedup_hit", |b| {
        let memo = Memo::new();
        memo.copy_in(&expr);
        b.iter(|| memo.copy_in(&expr))
    });
}

fn bench_histogram(c: &mut Criterion) {
    let fact = Histogram::from_values((0..100_000).map(|i| (i % 1000) as f64).collect(), 32);
    let dim = Histogram::from_values((0..1000).map(f64::from).collect(), 32);
    c.bench_function("histogram_equi_join", |b| b.iter(|| fact.equi_join(&dim)));
    c.bench_function("histogram_restrict_range", |b| {
        b.iter(|| fact.restrict_range(100.0, 500.0))
    });
}

fn bench_dxl(c: &mut Criterion) {
    let expr = chain_join(6);
    let node = orca_dxl::ser::logical_to_xml(&expr);
    let text = node.to_document();
    c.bench_function("dxl_serialize_6way_join", |b| {
        b.iter(|| orca_dxl::ser::logical_to_xml(&expr).to_document())
    });
    c.bench_function("dxl_parse_6way_join", |b| {
        b.iter(|| orca_dxl::xml::parse(&text).expect("parses"))
    });
}

struct CountJob(u32);
impl Job<(), u64> for CountJob {
    fn step(&mut self, h: &JobHandle<'_, (), u64>, _ctx: &()) -> StepResult {
        if self.0 > 0 {
            let next = self.0 - 1;
            self.0 = 0;
            h.spawn(Box::new(CountJob(next)));
            return StepResult::Suspended;
        }
        StepResult::Done
    }
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_1000_chained_jobs", |b| {
        b.iter(|| {
            let sched: Scheduler<(), u64> = Scheduler::new();
            sched.run(&(), vec![Box::new(CountJob(1000))], 1).unwrap();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_memo, bench_histogram, bench_dxl, bench_scheduler
}
criterion_main!(benches);
