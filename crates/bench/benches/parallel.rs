//! Criterion benchmark for §4.2: optimization wall time of a 7-way join
//! query at different scheduler worker counts. Parallelism must never
//! change the chosen plan (asserted), only how fast it is found.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orca::engine::OptimizerConfig;
use orca_bench::BenchEnv;
use orca_tpcds::SuiteQuery;

fn big_join() -> SuiteQuery {
    SuiteQuery {
        id: "bigjoin".into(),
        template: "parallel_bench",
        sql: "SELECT i.i_brand_id, count(*) AS n \
              FROM catalog_sales cs, item i, date_dim d, promotion p, call_center cc, \
                   customer c, customer_address ca \
              WHERE cs.cs_item_sk = i.i_item_sk \
                AND cs.cs_sold_date_sk = d.d_date_sk \
                AND cs.cs_promo_sk = p.p_promo_sk \
                AND cs.cs_call_center_sk = cc.cc_call_center_sk \
                AND cs.cs_bill_customer_sk = c.c_customer_sk \
                AND c.c_current_addr_sk = ca.ca_address_sk \
              GROUP BY i.i_brand_id LIMIT 5"
            .into(),
        features: vec![],
    }
}

fn bench_parallel(c: &mut Criterion) {
    let env = BenchEnv::new(0.02, 16);
    let q = big_join();
    let mut baseline_cost: Option<f64> = None;
    let mut group = c.benchmark_group("parallel_optimization");
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let config = OptimizerConfig::default()
                    .with_workers(w)
                    .with_cluster(env.cluster.clone());
                let (_, stats) = env.optimize_only(&q, config).expect("optimizes");
                match baseline_cost {
                    None => baseline_cost = Some(stats.plan_cost),
                    Some(c) => assert!((c - stats.plan_cost).abs() < 1e-9),
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_parallel
}
criterion_main!(benches);
