//! Offline shim for the `crossbeam` crate (the build environment has no
//! crates.io access). Only `crossbeam::deque` is provided — the surface
//! the GPOS scheduler uses for work distribution.
//!
//! The implementation favours simplicity over the lock-free Chase–Lev
//! algorithm of the real crate: each queue is a `Mutex<VecDeque>`. The
//! scheduler's jobs are coarse enough (rule binding, costing) that queue
//! transfer time is noise; fairness and the `Steal` protocol (including
//! `steal_batch_and_pop` moving half the injector backlog to the local
//! queue) are preserved so the scheduler code runs unchanged.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam::deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    type Shared<T> = Arc<Mutex<VecDeque<T>>>;

    fn locked<T, R>(q: &Shared<T>, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        f(&mut q.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// A worker-owned FIFO queue other threads can steal from.
    pub struct Worker<T> {
        q: Shared<T>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, item: T) {
            locked(&self.q, |q| q.push_back(item));
        }

        pub fn pop(&self) -> Option<T> {
            locked(&self.q, |q| q.pop_front())
        }

        pub fn is_empty(&self) -> bool {
            locked(&self.q, |q| q.is_empty())
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// A handle for stealing from another worker's queue.
    pub struct Stealer<T> {
        q: Shared<T>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.q, |q| q.pop_front()) {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// The global injection queue shared by all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Injector<T> {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, item: T) {
            self.q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(item);
        }

        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }

        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Move up to half the backlog into `dest`'s queue and pop one item.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
                if q.is_empty() {
                    return Steal::Empty;
                }
                let take = q.len().div_ceil(2).min(32);
                q.drain(..take).collect::<VecDeque<T>>()
            };
            let first = batch.pop_front().expect("non-empty batch");
            if !batch.is_empty() {
                locked(&dest.q, |q| q.extend(batch));
            }
            Steal::Success(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn fifo_and_steal_protocol() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_moves_work() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half the backlog (5 items) moved; first was popped, 4 remain local.
        assert_eq!(w.pop(), Some(1));
        assert!(!inj.is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w: Worker<u32> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let s = w.stealer();
        let total: u32 = std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                let mut n = 0;
                while let Steal::Success(_) = s.steal() {
                    n += 1;
                }
                n
            });
            let mut n = 0;
            while w.pop().is_some() {
                n += 1;
            }
            n + h.join().unwrap()
        });
        assert_eq!(total, 100);
    }
}
