//! Offline shim for the `crossbeam` crate (the build environment has no
//! crates.io access). Two surfaces are provided: `crossbeam::deque` (the
//! GPOS scheduler's work-distribution queues) and `crossbeam::channel`
//! (the bounded batch channels of the parallel executor's interconnect).
//!
//! The implementation favours simplicity over the lock-free Chase–Lev
//! algorithm of the real crate: each queue is a `Mutex<VecDeque>`. The
//! scheduler's jobs are coarse enough (rule binding, costing) that queue
//! transfer time is noise; fairness and the `Steal` protocol (including
//! `steal_batch_and_pop` moving half the injector backlog to the local
//! queue) are preserved so the scheduler code runs unchanged. Likewise
//! the channels move row *batches*, so a Mutex+Condvar ring is far from
//! the bottleneck; blocking, timeout, and disconnect semantics match
//! `crossbeam-channel` where callers depend on them.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam::deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    type Shared<T> = Arc<Mutex<VecDeque<T>>>;

    fn locked<T, R>(q: &Shared<T>, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        f(&mut q.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// A worker-owned FIFO queue other threads can steal from.
    pub struct Worker<T> {
        q: Shared<T>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, item: T) {
            locked(&self.q, |q| q.push_back(item));
        }

        pub fn pop(&self) -> Option<T> {
            locked(&self.q, |q| q.pop_front())
        }

        pub fn is_empty(&self) -> bool {
            locked(&self.q, |q| q.is_empty())
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// A handle for stealing from another worker's queue.
    pub struct Stealer<T> {
        q: Shared<T>,
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.q, |q| q.pop_front()) {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// The global injection queue shared by all workers.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Injector<T> {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, item: T) {
            self.q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(item);
        }

        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }

        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Move up to half the backlog into `dest`'s queue and pop one item.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = {
                let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
                if q.is_empty() {
                    return Steal::Empty;
                }
                let take = q.len().div_ceil(2).min(32);
                q.drain(..take).collect::<VecDeque<T>>()
            };
            let first = batch.pop_front().expect("non-empty batch");
            if !batch.is_empty() {
                locked(&dest.q, |q| q.extend(batch));
            }
            Steal::Success(first)
        }
    }
}

pub mod channel {
    //! Bounded MPMC channels, mirroring the `crossbeam-channel` API subset
    //! the interconnect uses: blocking `send`/`recv`, the `_timeout`
    //! variants, capacity introspection (`len`), and disconnection when
    //! the last peer on the other side drops. A zero-capacity request is
    //! rounded up to one slot (the shim has no rendezvous mode; the
    //! interconnect always wants at least one in-flight batch).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        cap: usize,
        state: Mutex<State<T>>,
        /// Signalled when a slot frees up or the receiving side vanishes.
        not_full: Condvar,
        /// Signalled when a message arrives or the sending side vanishes.
        not_empty: Condvar,
    }

    /// Create a bounded channel with room for `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            cap: cap.max(1),
            state: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    fn lock<T, R>(inner: &Inner<T>, f: impl FnOnce(&mut State<T>) -> R) -> R {
        f(&mut inner.state.lock().unwrap_or_else(|e| e.into_inner()))
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued or every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self.send_deadline(msg, None) {
                Ok(()) => Ok(()),
                Err(SendTimeoutError::Disconnected(m)) | Err(SendTimeoutError::Timeout(m)) => {
                    Err(SendError(m))
                }
            }
        }

        /// Block up to `timeout`; `Timeout(msg)` hands the message back so
        /// the caller can re-check its abort signal and retry.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_deadline(msg, Some(Instant::now() + timeout))
        }

        fn send_deadline(
            &self,
            msg: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if state.buf.len() < self.inner.cap {
                    state.buf.push_back(msg);
                    drop(state);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = match deadline {
                    None => self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        self.inner
                            .not_full
                            .wait_timeout(state, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                };
            }
        }

        /// Messages currently queued (racy; for observability only).
        pub fn len(&self) -> usize {
            lock(&self.inner, |s| s.buf.len())
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.inner, |s| s.senders += 1);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = lock(&self.inner, |s| {
                s.senders -= 1;
                s.senders == 0
            });
            if last {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match self.recv_deadline(None) {
                Ok(m) => Ok(m),
                Err(_) => Err(RecvError),
            }
        }

        /// Block up to `timeout`; `Timeout` lets the caller re-check its
        /// abort signal between waits.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Some(Instant::now() + timeout))
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            lock(&self.inner, |s| match s.buf.pop_front() {
                Some(m) => Ok(m),
                None if s.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            })
            .inspect(|_| self.inner.not_full.notify_one())
        }

        fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(m) = state.buf.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(m);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                state = match deadline {
                    None => self
                        .inner
                        .not_empty
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        self.inner
                            .not_empty
                            .wait_timeout(state, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                };
            }
        }

        /// Messages currently queued (racy; for observability only).
        pub fn len(&self) -> usize {
            lock(&self.inner, |s| s.buf.len())
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.inner, |s| s.receivers += 1);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let last = lock(&self.inner, |s| {
                s.receivers -= 1;
                s.receivers == 0
            });
            if last {
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{bounded, RecvTimeoutError, SendTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn backpressure_blocks_and_drains() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        // Full: send_timeout hands the message back.
        assert_eq!(
            tx.send_timeout(1, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(1))
        );
        let h = std::thread::spawn(move || {
            for i in 1..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drop_disconnects_both_ways() {
        let (tx, rx) = bounded(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7)); // buffered survives sender drop
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx2, rx2) = bounded(1);
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let h = std::thread::spawn(move || tx.send(1).is_err());
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        // The blocked send must observe the disconnect and error out.
        assert!(h.join().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn fifo_and_steal_protocol() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_moves_work() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half the backlog (5 items) moved; first was popped, 4 remain local.
        assert_eq!(w.pop(), Some(1));
        assert!(!inj.is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w: Worker<u32> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let s = w.stealer();
        let total: u32 = std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                let mut n = 0;
                while let Steal::Success(_) = s.steal() {
                    n += 1;
                }
                n
            });
            let mut n = 0;
            while w.pop().is_some() {
                n += 1;
            }
            n + h.join().unwrap()
        });
        assert_eq!(total, 100);
    }
}
