//! TPC-DS-style analytics: run a handful of representative suite queries
//! with Orca and with the legacy Planner, comparing plans and simulated
//! cluster times — a miniature Figure 12.
//!
//! Run: `cargo run --release --example tpcds_analytics`

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::{MdAccessor, MdCache};
use orca_common::SegmentConfig;
use orca_executor::ExecEngine;
use orca_planner::LegacyPlanner;
use orca_tpcds::{build_catalog, suite};
use std::sync::Arc;

fn main() {
    let cluster = SegmentConfig::default().with_segments(16);
    println!("Generating TPC-DS catalog (25 tables, scale 0.05)...");
    let (provider, db) = build_catalog(0.05, cluster.clone());
    let engine = ExecEngine::new(&db);
    let optimizer = Optimizer::new(
        provider.clone(),
        OptimizerConfig::default()
            .with_workers(4)
            .with_cluster(cluster),
    );

    // One representative query per paper feature.
    let picks = [
        ("star join + partition pruning", "narrow_date_window"),
        ("correlated EXISTS subquery", "exists_returns"),
        ("correlated scalar aggregate", "corr_scalar_max"),
        ("shared WITH clause", "cte_shared"),
    ];
    for (label, template) in picks {
        let q = suite()
            .into_iter()
            .find(|q| q.template == template)
            .expect("template exists");
        println!("\n=== {label} ({}) ===\n{}\n", q.id, q.sql);

        let registry = Arc::new(orca_expr::ColumnRegistry::new());
        let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry).expect("binds");
        let reqs = QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };

        let (orca_plan, stats) = optimizer
            .optimize(&bound.expr, &registry, &reqs)
            .expect("orca optimizes");
        let orca_run = engine
            .run(&orca_plan, &bound.output_cols)
            .expect("orca runs");
        println!(
            "Orca plan (cost {:.1}):\n{}",
            stats.plan_cost,
            orca_expr::pretty::explain_physical(&orca_plan)
        );

        let md = MdAccessor::new(
            MdCache::new(),
            provider.clone() as Arc<dyn orca_catalog::provider::MdProvider>,
        );
        let legacy = LegacyPlanner::new(&md, &registry);
        let (legacy_plan, _) = legacy
            .plan(&bound.expr, &bound.order)
            .expect("legacy plans");
        let legacy_run = engine
            .run(&legacy_plan, &bound.output_cols)
            .expect("legacy runs");

        assert_eq!(
            orca_executor::engine::sort_rows(orca_run.rows.clone()),
            orca_executor::engine::sort_rows(legacy_run.rows.clone()),
            "both planners must return identical results"
        );
        println!(
            "rows: {} | simulated time — Orca {:.5}s vs Planner {:.5}s → speed-up {:.1}x",
            orca_run.rows.len(),
            orca_run.sim_seconds,
            legacy_run.sim_seconds,
            legacy_run.sim_seconds / orca_run.sim_seconds
        );
    }
}
