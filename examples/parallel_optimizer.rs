//! Multi-core optimization (§4.2): optimize a 7-way join with 1, 2, 4 and
//! 8 scheduler workers. The job scheduler fans `Exp`/`Imp`/`Opt`/`Xform`
//! work units across threads; the chosen plan (and its cost) must be
//! identical at every worker count — only the wall-clock changes.
//!
//! Run: `cargo run --release --example parallel_optimizer`

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_common::SegmentConfig;
use orca_tpcds::build_catalog;
use std::sync::Arc;
use std::time::Instant;

const SQL: &str = "SELECT i.i_brand_id, d.d_moy, count(*) AS n \
                   FROM catalog_sales cs, item i, date_dim d, promotion p, call_center cc, \
                        customer c, customer_address ca \
                   WHERE cs.cs_item_sk = i.i_item_sk \
                     AND cs.cs_sold_date_sk = d.d_date_sk \
                     AND cs.cs_promo_sk = p.p_promo_sk \
                     AND cs.cs_call_center_sk = cc.cc_call_center_sk \
                     AND cs.cs_bill_customer_sk = c.c_customer_sk \
                     AND c.c_current_addr_sk = ca.ca_address_sk \
                   GROUP BY i.i_brand_id, d.d_moy ORDER BY n DESC LIMIT 20";

fn main() {
    let cluster = SegmentConfig::default().with_segments(16);
    let (provider, _db) = build_catalog(0.05, cluster.clone());
    println!("7-way join query:\n{SQL}\n");

    let mut reference_cost = None;
    for workers in [1usize, 2, 4, 8] {
        let registry = Arc::new(orca_expr::ColumnRegistry::new());
        let bound = orca_sql::compile(SQL, provider.as_ref(), &registry).expect("binds");
        let optimizer = Optimizer::new(
            provider.clone(),
            OptimizerConfig::default()
                .with_workers(workers)
                .with_cluster(cluster.clone()),
        );
        let reqs = QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };
        // Warm-up + best-of-3 to steady the wall clock.
        let mut best = f64::INFINITY;
        let mut stats = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (_, s) = optimizer
                .optimize(&bound.expr, &registry, &reqs)
                .expect("optimizes");
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            stats = Some(s);
        }
        let stats = stats.expect("ran");
        match reference_cost {
            None => reference_cost = Some(stats.plan_cost),
            Some(c) => assert!(
                (c - stats.plan_cost).abs() < 1e-9,
                "plan must not depend on worker count"
            ),
        }
        println!(
            "workers = {workers}: {best:.1} ms  ({} jobs over {} memo groups, plan cost {:.0})",
            stats.jobs_spawned, stats.groups, stats.plan_cost
        );
    }
    println!("\nidentical plan cost at every worker count ✓ (determinism)");
}
