//! Quickstart: the paper's §4.1 running example, end to end.
//!
//! ```sql
//! SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a;
//! ```
//! with `T1` hash-distributed on `a` and `T2` hash-distributed on `a` — so
//! the optimizer must redistribute `T2` on `b` to co-locate the join, then
//! sort and gather-merge (Figure 6's extracted plan).
//!
//! Run: `cargo run --release --example quickstart`

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider as _;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
use orca_common::{DataType, Datum, SegmentConfig};
use orca_dxl::{DxlPlan, DxlQuery};
use orca_executor::{Database, ExecEngine};
use orca_expr::ColumnRegistry;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. A backend: catalog (metadata provider) + segmented storage.
    // ------------------------------------------------------------------
    let cluster = SegmentConfig::default().with_segments(4);
    let provider = Arc::new(MemoryProvider::new());
    let mut db = Database::new(cluster.clone());
    for name in ["t1", "t2"] {
        let id = provider.register(
            name,
            vec![
                ColumnMeta::new("a", DataType::Int).not_null(),
                ColumnMeta::new("b", DataType::Int).not_null(),
            ],
            Distribution::Hashed(vec![0]), // hashed on column a
        );
        let rows: Vec<Vec<Datum>> = (0..1000)
            .map(|i| vec![Datum::Int(i % 100), Datum::Int(i % 40)])
            .collect();
        let mut stats = TableStats::new(rows.len() as f64, 2);
        for c in 0..2 {
            let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
            stats.columns[c] = Some(ColumnStats::from_column(&values, 16));
        }
        provider.set_stats(id, stats);
        db.load_table(provider.table(id).expect("registered"), rows)
            .expect("load");
    }

    // ------------------------------------------------------------------
    // 2. Compile SQL → bound logical tree (what a DXL query carries).
    // ------------------------------------------------------------------
    let sql = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY a";
    let registry = Arc::new(ColumnRegistry::new());
    let bound = orca_sql::compile(sql, provider.as_ref(), &registry).expect("compiles");
    println!("SQL: {sql}\n");
    println!(
        "Logical tree:\n{}",
        orca_expr::pretty::explain_logical(&bound.expr)
    );

    // The same query as a DXL document (Listing 1's shape).
    let dxl_query = DxlQuery {
        expr: bound.expr.clone(),
        output_cols: bound.output_cols.clone(),
        order: bound.order.clone(),
        dist: orca_expr::props::DistSpec::Singleton,
        columns: (0..registry.len())
            .map(|i| {
                let info = registry.info(orca_common::ColId(i as u32));
                (info.name, info.dtype)
            })
            .collect(),
    };
    println!(
        "DXL query document:\n{}",
        orca_dxl::query_to_dxl(&dxl_query)
    );

    // ------------------------------------------------------------------
    // 3. Optimize: exploration → stats → implementation → optimization.
    // ------------------------------------------------------------------
    let optimizer = Optimizer::new(
        provider.clone(),
        OptimizerConfig::default()
            .with_workers(4)
            .with_cluster(cluster),
    );
    let reqs = QueryReqs {
        output_cols: bound.output_cols.clone(),
        order: bound.order.clone(),
        dist: orca_expr::props::DistSpec::Singleton,
    };
    let (plan, stats) = optimizer
        .optimize(&bound.expr, &registry, &reqs)
        .expect("optimizes");
    println!(
        "Optimized in {:?}: {} memo groups, {} group expressions, {} jobs\n",
        stats.optimization_time, stats.groups, stats.group_exprs, stats.jobs_spawned
    );
    println!(
        "Physical plan (cost {:.2}):\n{}",
        stats.plan_cost,
        orca_expr::pretty::explain_physical(&plan)
    );
    println!(
        "DXL plan document:\n{}",
        orca_dxl::plan_to_dxl(&DxlPlan {
            plan: plan.clone(),
            cost: stats.plan_cost,
        })
    );

    // ------------------------------------------------------------------
    // 4. Execute on the simulated MPP cluster.
    // ------------------------------------------------------------------
    let engine = ExecEngine::new(&db);
    let result = engine.run(&plan, &bound.output_cols).expect("executes");
    println!(
        "Executed: {} rows, simulated cluster time {:.4}s, {} bytes moved",
        result.rows.len(),
        result.sim_seconds,
        result.stats.bytes_moved
    );
    println!(
        "First rows (ordered by a): {:?}",
        result.rows.iter().take(5).collect::<Vec<_>>()
    );
}
