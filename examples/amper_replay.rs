//! AMPERe (§6.1): trigger an optimizer fault, capture a minimal portable
//! repro dump, then replay it **without any live backend** — the dump's
//! embedded metadata acts as the file-based MD provider of Figure 10.
//! Finally, use a dump with an expected plan as a regression test case.
//!
//! Run: `cargo run --release --example amper_replay`

use orca::amper;
use orca::engine::{Optimizer, OptimizerConfig};
use orca_common::SegmentConfig;
use orca_dxl::{DxlPlan, DxlQuery};
use orca_tpcds::{build_catalog, suite};
use std::sync::Arc;

fn main() {
    let cluster = SegmentConfig::default().with_segments(8);
    let (provider, _db) = build_catalog(0.02, cluster.clone());
    let q = suite()
        .into_iter()
        .find(|q| q.template == "star_explicit")
        .expect("suite query");
    let registry = Arc::new(orca_expr::ColumnRegistry::new());
    let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry).expect("binds");
    let dxl_query = DxlQuery {
        expr: bound.expr.clone(),
        output_cols: bound.output_cols.clone(),
        order: bound.order.clone(),
        dist: orca_expr::props::DistSpec::Singleton,
        columns: (0..registry.len())
            .map(|i| {
                let info = registry.info(orca_common::ColId(i as u32));
                (info.name, info.dtype)
            })
            .collect(),
    };

    // ------------------------------------------------------------------
    // 1. A "customer issue": a fault fires inside the optimizer.
    // ------------------------------------------------------------------
    let faulty = Optimizer::new(
        provider.clone(),
        OptimizerConfig {
            inject_fault: Some("optimize"),
            ..OptimizerConfig::default().with_cluster(cluster.clone())
        },
    );
    let dump_path = std::env::temp_dir().join("orca_amper_example.dxl");
    let err =
        amper::optimize_with_capture(&faulty, &dxl_query, &dump_path).expect_err("fault fires");
    println!("optimizer failed: {err}");
    println!("AMPERe dump written to {}\n", dump_path.display());

    // ------------------------------------------------------------------
    // 2. Replay the dump on a machine with NO access to the backend.
    // ------------------------------------------------------------------
    let dump = amper::load(&dump_path).expect("dump loads");
    println!(
        "dump contents: {} tables, {} stats objects, stack trace:\n{}\n",
        dump.metadata.tables.len(),
        dump.metadata.stats.len(),
        dump.stack_trace.as_deref().unwrap_or("-")
    );
    let (plan, stats) = amper::replay(&dump).expect("replays cleanly without the fault");
    println!(
        "replayed optimization: cost {:.2}\n{}",
        stats.plan_cost,
        orca_expr::pretty::explain_physical(&plan)
    );

    // ------------------------------------------------------------------
    // 3. Turn the dump into a regression test case: record the plan as
    //    expected; future replays fail on any plan change.
    // ------------------------------------------------------------------
    let test_case = amper::capture(
        &dxl_query,
        &faulty.config,
        provider.as_ref(),
        None,
        Some(DxlPlan {
            plan: plan.clone(),
            cost: stats.plan_cost,
        }),
    )
    .expect("captures");
    let test_path = std::env::temp_dir().join("orca_amper_testcase.dxl");
    amper::save(&test_case, &test_path).expect("saves");
    let replayed = amper::replay_as_test(&amper::load(&test_path).expect("loads"))
        .expect("plan matches the recorded expectation");
    assert_eq!(replayed, plan);
    println!("regression test case replayed: plan matches ✓");
    std::fs::remove_file(&dump_path).ok();
    std::fs::remove_file(&test_path).ok();
}
